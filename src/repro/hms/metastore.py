"""A Hive Metastore look-alike.

Faithful to the properties the paper contrasts with UC (section 2):

* two-level namespace (database.table), tables only,
* thrift-style API surface (get_table / get_all_tables / add_partition),
* *no governance*: no privilege model, no credential vending — clients
  receive raw storage locations and are expected to have their own
  cloud-storage access (HMS "relies on cloud storage policies"),
* a relational backing store: every API call issues one or more logical
  DB queries, which the benchmarks charge simulated latency for. The
  per-call query counts follow the classic HMS schema (TBLS, SDS, COLUMNS,
  PARTITIONS), which is what makes HMS metadata calls chatty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AlreadyExistsError, InvalidRequestError, NotFoundError


@dataclass
class StorageDescriptor:
    """Where and how a table's data lives (HMS ``SDS`` row)."""

    location: str
    input_format: str = "org.apache.hadoop.mapred.TextInputFormat"
    serde: str = "org.apache.hadoop.hive.serde2.lazy.LazySimpleSerDe"


@dataclass
class HiveTable:
    database: str
    name: str
    columns: list[dict] = field(default_factory=list)
    partition_keys: list[str] = field(default_factory=list)
    storage: Optional[StorageDescriptor] = None
    table_type: str = "MANAGED_TABLE"  # MANAGED_TABLE | EXTERNAL_TABLE | VIRTUAL_VIEW
    view_text: Optional[str] = None
    parameters: dict[str, str] = field(default_factory=dict)


@dataclass
class HiveDatabase:
    name: str
    location: str
    description: str = ""


@dataclass
class HmsCallStats:
    """Logical DB queries issued, for latency accounting in benchmarks."""

    db_queries: int = 0
    api_calls: int = 0


class HiveMetastore:
    """The metastore service (or, in "local" mode, the DB-backed library
    that engines embed and query over JDBC)."""

    def __init__(self):
        self._databases: dict[str, HiveDatabase] = {}
        self._tables: dict[tuple[str, str], HiveTable] = {}
        self._partitions: dict[tuple[str, str], list[dict]] = {}
        self.stats = HmsCallStats()

    def _charge(self, queries: int) -> None:
        self.stats.api_calls += 1
        self.stats.db_queries += queries

    # -- databases ---------------------------------------------------------

    def create_database(self, name: str, location: str, description: str = "") -> HiveDatabase:
        self._charge(2)  # existence check + insert
        if name in self._databases:
            raise AlreadyExistsError(f"database exists: {name}")
        database = HiveDatabase(name=name, location=location, description=description)
        self._databases[name] = database
        return database

    def get_database(self, name: str) -> HiveDatabase:
        self._charge(1)
        try:
            return self._databases[name]
        except KeyError:
            raise NotFoundError(f"no such database: {name}")

    def get_all_databases(self) -> list[str]:
        self._charge(1)
        return sorted(self._databases)

    def drop_database(self, name: str, cascade: bool = False) -> None:
        self._charge(2)
        if name not in self._databases:
            raise NotFoundError(f"no such database: {name}")
        tables = [key for key in self._tables if key[0] == name]
        if tables and not cascade:
            raise InvalidRequestError(f"database {name} is not empty")
        for key in tables:
            del self._tables[key]
            self._partitions.pop(key, None)
        del self._databases[name]

    # -- tables --------------------------------------------------------------

    def create_table(self, table: HiveTable) -> HiveTable:
        # db lookup + uniqueness check + TBLS insert + SDS insert + COLUMNS
        self._charge(5)
        if table.database not in self._databases:
            raise NotFoundError(f"no such database: {table.database}")
        key = (table.database, table.name)
        if key in self._tables:
            raise AlreadyExistsError(f"table exists: {table.database}.{table.name}")
        self._tables[key] = table
        self._partitions[key] = []
        return table

    def get_table(self, database: str, name: str) -> HiveTable:
        # TBLS + SDS + COLUMNS joins: the classic 3-query metadata fetch
        self._charge(3)
        try:
            return self._tables[(database, name)]
        except KeyError:
            raise NotFoundError(f"no such table: {database}.{name}")

    def get_all_tables(self, database: str) -> list[str]:
        self._charge(1)
        if database not in self._databases:
            raise NotFoundError(f"no such database: {database}")
        return sorted(name for db, name in self._tables if db == database)

    def alter_table(self, database: str, name: str, table: HiveTable) -> None:
        self._charge(4)
        key = (database, name)
        if key not in self._tables:
            raise NotFoundError(f"no such table: {database}.{name}")
        del self._tables[key]
        self._tables[(table.database, table.name)] = table
        self._partitions.setdefault((table.database, table.name),
                                    self._partitions.pop(key, []))

    def drop_table(self, database: str, name: str) -> None:
        self._charge(3)
        key = (database, name)
        if key not in self._tables:
            raise NotFoundError(f"no such table: {database}.{name}")
        del self._tables[key]
        self._partitions.pop(key, None)

    # -- partitions -----------------------------------------------------------

    def add_partition(self, database: str, name: str, values: dict) -> None:
        self._charge(3)
        key = (database, name)
        if key not in self._tables:
            raise NotFoundError(f"no such table: {database}.{name}")
        self._partitions[key].append(dict(values))

    def get_partitions(self, database: str, name: str) -> list[dict]:
        self._charge(2)
        key = (database, name)
        if key not in self._tables:
            raise NotFoundError(f"no such table: {database}.{name}")
        return [dict(p) for p in self._partitions[key]]
