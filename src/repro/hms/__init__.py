"""Hive Metastore simulator.

Plays two roles from the paper:

* the **baseline catalog** for the Figure 10(a) comparison — a "local
  metastore" where engines issue SQL directly against the metastore DB,
  with no governance, credential vending, or asset types beyond tables;
* the **foreign catalog** behind Unity Catalog federation (section 4.2.4).
"""

from repro.hms.metastore import (
    HiveDatabase,
    HiveMetastore,
    HiveTable,
    StorageDescriptor,
)

__all__ = ["HiveDatabase", "HiveMetastore", "HiveTable", "StorageDescriptor"]
