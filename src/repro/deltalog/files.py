"""Data files: columnar JSON blobs with per-file statistics.

The catalog never reads these (it is format-agnostic); engines read and
write them through governed storage clients. The columnar layout is a
stand-in for Parquet that preserves what matters to the reproduction:
per-file row counts, sizes, and min/max statistics for data skipping.
"""

from __future__ import annotations

import json
import uuid

from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.deltalog.actions import AddFile, FileStats

_DATA_DIR = "data"


def new_data_path() -> str:
    return f"{_DATA_DIR}/part-{uuid.uuid4().hex}.jsonc"


def encode_rows(rows: list[dict]) -> bytes:
    """Columnar encoding: one array per column, plus the column order."""
    columns: list[str] = []
    seen = set()
    for row in rows:
        for name in row:
            if name not in seen:
                seen.add(name)
                columns.append(name)
    data = {name: [row.get(name) for row in rows] for name in columns}
    return json.dumps({"columns": columns, "data": data, "rows": len(rows)}).encode()


def decode_rows(blob: bytes) -> list[dict]:
    payload = json.loads(blob)
    columns = payload["columns"]
    count = payload["rows"]
    data = payload["data"]
    return [
        {name: data[name][i] for name in columns}
        for i in range(count)
    ]


def write_data_file(
    client: StorageClient,
    table_root: StoragePath,
    rows: list[dict],
    clustering_key: str | None = None,
) -> AddFile:
    """Write one data file and return its AddFile action (with stats)."""
    relative = new_data_path()
    blob = encode_rows(rows)
    client.put(table_root.child(*relative.split("/")), blob)
    return AddFile(
        path=relative,
        size=len(blob),
        stats=FileStats.compute(rows),
        clustering_key=clustering_key,
    )


def read_data_file(
    client: StorageClient, table_root: StoragePath, add: AddFile
) -> list[dict]:
    """Read a data file's rows (deletion vectors applied by the caller)."""
    blob = client.get(table_root.child(*add.path.split("/")))
    return decode_rows(blob)
