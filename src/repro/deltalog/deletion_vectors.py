"""Deletion vectors: row-level soft deletes without rewriting files.

A deletion vector is a persisted set of row ordinals of one data file
that are logically deleted. The paper cites deletion vectors as the kind
of engine-side layout optimization that catalog–engine separation leaves
the engine free to choose (section 4.1).
"""

from __future__ import annotations

import json
import uuid

from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath

_DV_DIR = "_deletion_vectors"


class DeletionVector:
    """An immutable set of deleted row ordinals for one data file."""

    def __init__(self, deleted_rows: set[int]):
        self._deleted = frozenset(deleted_rows)

    @property
    def deleted_rows(self) -> frozenset[int]:
        return self._deleted

    def __contains__(self, ordinal: int) -> bool:
        return ordinal in self._deleted

    def __len__(self) -> int:
        return len(self._deleted)

    def union(self, other: "DeletionVector") -> "DeletionVector":
        return DeletionVector(set(self._deleted) | set(other._deleted))

    def serialize(self) -> bytes:
        return json.dumps(sorted(self._deleted)).encode()

    @classmethod
    def deserialize(cls, data: bytes) -> "DeletionVector":
        return cls(set(json.loads(data)))


def new_dv_path() -> str:
    """Relative path for a fresh deletion-vector object."""
    return f"{_DV_DIR}/{uuid.uuid4().hex}.json"


def write_dv(
    client: StorageClient, table_root: StoragePath, dv: DeletionVector
) -> str:
    """Persist a deletion vector; returns its table-relative path."""
    relative = new_dv_path()
    client.put(table_root.child(*relative.split("/")), dv.serialize())
    return relative


def read_dv(
    client: StorageClient, table_root: StoragePath, relative: str
) -> DeletionVector:
    data = client.get(table_root.child(*relative.split("/")))
    return DeletionVector.deserialize(data)
