"""DeltaTable: the engine-facing API over one table's log and data files.

All storage I/O flows through a governed :class:`StorageClient`, so a
table handle is only as capable as the credential the catalog vended —
scoped to this table's path and access level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.clock import Clock, WallClock
from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.deltalog.actions import (
    Action,
    AddFile,
    CommitInfo,
    Metadata,
    Protocol,
    RemoveFile,
)
from repro.deltalog.deletion_vectors import DeletionVector, read_dv, write_dv
from repro.deltalog.files import read_data_file, write_data_file
from repro.deltalog.log import DeltaLog, LogSnapshot
from repro.errors import (
    ConcurrentModificationError,
    InvalidRequestError,
    NotFoundError,
)

#: (column, operator, value) predicates supported by the scan pushdown.
Filter = tuple[str, str, object]

_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class ScanMetrics:
    """Observability for one scan — the figures behind Figure 10(c)."""

    files_total: int = 0
    files_scanned: int = 0
    files_skipped: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    bytes_scanned: int = 0


def _row_matches(row: dict, filters: list[Filter]) -> bool:
    for column, op, value in filters:
        actual = row.get(column)
        if actual is None or not _OPS[op](actual, value):
            return False
    return True


def _file_may_match(add: AddFile, filters: list[Filter]) -> bool:
    """Data skipping: can this file possibly contain matching rows?"""
    for column, op, value in filters:
        lo = add.stats.min_values.get(column)
        hi = add.stats.max_values.get(column)
        if lo is None or hi is None:
            continue  # no stats for the column: cannot skip
        try:
            if op == "=" and (value < lo or value > hi):
                return False
            if op == "<" and lo >= value:
                return False
            if op == "<=" and lo > value:
                return False
            if op == ">" and hi <= value:
                return False
            if op == ">=" and hi < value:
                return False
        except TypeError:
            continue  # incomparable types: cannot skip
    return True


class DeltaTable:
    """Read/write handle for one Delta-style table."""

    def __init__(
        self,
        client: StorageClient,
        table_root: StoragePath,
        clock: Optional[Clock] = None,
        engine: str = "repro",
        metrics=None,
    ):
        self._client = client
        self._root = table_root
        self._log = DeltaLog(client, table_root, metrics=metrics)
        self._clock = clock or WallClock()
        self._engine = engine

    @property
    def log(self) -> DeltaLog:
        return self._log

    @property
    def root(self) -> StoragePath:
        return self._root

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        client: StorageClient,
        table_root: StoragePath,
        table_id: str,
        schema: list[dict],
        partition_columns: tuple[str, ...] = (),
        clock: Optional[Clock] = None,
        engine: str = "repro",
        metrics=None,
    ) -> "DeltaTable":
        """Initialize an empty table (log version 0)."""
        table = cls(client, table_root, clock=clock, engine=engine, metrics=metrics)
        actions: list[Action] = [
            Protocol(),
            Metadata(
                table_id=table_id,
                schema=schema,
                partition_columns=partition_columns,
            ),
            CommitInfo(
                operation="CREATE TABLE",
                timestamp=table._clock.now(),
                engine=engine,
            ),
        ]
        table._log.commit(0, actions)
        return table

    # -- commit plumbing --------------------------------------------------------

    def _commit_with_retry(
        self,
        build: Callable[[LogSnapshot], list[Action]],
        operation: str,
        *,
        retries: int = 8,
        details: Optional[dict] = None,
    ) -> int:
        """Optimistic commit: rebuild actions against the latest snapshot
        until the put-if-absent of the next log entry wins.

        Losers rebase **incrementally**: the snapshot is advanced with
        :meth:`DeltaLog.refresh` (reading only the entries that beat us),
        not rebuilt by replaying the whole log."""
        snapshot = self._log.snapshot()
        for _ in range(retries):
            actions = build(snapshot)
            actions.append(
                CommitInfo(
                    operation=operation,
                    timestamp=self._clock.now(),
                    engine=self._engine,
                    details=details or {},
                )
            )
            try:
                self._log.commit(snapshot.version + 1, actions)
                return snapshot.version + 1
            except ConcurrentModificationError:
                snapshot = self._log.refresh(snapshot)
                continue
        raise ConcurrentModificationError(
            f"{operation} kept losing commit races on {self._root.url()}"
        )

    # -- reads ------------------------------------------------------------------

    def snapshot(self, version: Optional[int] = None) -> LogSnapshot:
        return self._log.snapshot(version)

    def schema(self) -> list[dict]:
        metadata = self._log.snapshot().metadata
        return list(metadata.schema) if metadata else []

    def version(self) -> int:
        return self._log.latest_version()

    def version_at_timestamp(self, timestamp: float) -> int:
        """The latest version whose commit timestamp is at or before
        ``timestamp`` — the TIMESTAMP AS OF resolution rule."""
        best: Optional[int] = None
        earliest: Optional[float] = None
        for version, info in self._log.history():
            if earliest is None or info.timestamp < earliest:
                earliest = info.timestamp
            if info.timestamp <= timestamp and (best is None or version > best):
                best = version
        if best is None:
            detail = (
                f" (earliest commit at {earliest})"
                if earliest is not None else " (empty history)"
            )
            raise NotFoundError(
                f"no commit at or before timestamp {timestamp} on "
                f"{self._root.url()}{detail}"
            )
        return best

    def scan(
        self,
        filters: Optional[list[Filter]] = None,
        version: Optional[int] = None,
        metrics: Optional[ScanMetrics] = None,
    ) -> Iterator[dict]:
        """Scan rows, using file statistics to skip irrelevant files and
        deletion vectors to drop deleted rows."""
        filters = filters or []
        snapshot = self._log.snapshot(version)
        if metrics is not None:
            metrics.files_total += snapshot.num_files
        for add in snapshot.active_files.values():
            if filters and not _file_may_match(add, filters):
                if metrics is not None:
                    metrics.files_skipped += 1
                continue
            rows = read_data_file(self._client, self._root, add)
            dv: Optional[DeletionVector] = None
            if add.deletion_vector:
                dv = read_dv(self._client, self._root, add.deletion_vector)
            if metrics is not None:
                metrics.files_scanned += 1
                metrics.rows_scanned += len(rows)
                metrics.bytes_scanned += add.size
            for ordinal, row in enumerate(rows):
                if dv is not None and ordinal in dv:
                    continue
                if _row_matches(row, filters):
                    if metrics is not None:
                        metrics.rows_returned += 1
                    yield row

    def read_all(self, filters: Optional[list[Filter]] = None) -> list[dict]:
        return list(self.scan(filters))

    def row_count(self) -> int:
        """Live rows (file stats minus deletion-vector cardinality)."""
        snapshot = self._log.snapshot()
        total = 0
        for add in snapshot.active_files.values():
            total += add.stats.num_records
            if add.deletion_vector:
                total -= len(read_dv(self._client, self._root, add.deletion_vector))
        return total

    # -- writes -----------------------------------------------------------------

    def append(self, rows: list[dict], max_rows_per_file: Optional[int] = None) -> int:
        """Append rows, splitting into files of at most ``max_rows_per_file``."""
        if not rows:
            raise InvalidRequestError("nothing to append")
        batches = self._split(rows, max_rows_per_file)
        adds = [write_data_file(self._client, self._root, batch) for batch in batches]

        def build(snapshot: LogSnapshot) -> list[Action]:
            return list(adds)

        return self._commit_with_retry(build, "WRITE",
                                       details={"mode": "append", "rows": len(rows)})

    def overwrite(self, rows: list[dict], max_rows_per_file: Optional[int] = None) -> int:
        """Replace the table's contents atomically."""
        batches = self._split(rows, max_rows_per_file) if rows else []
        adds = [write_data_file(self._client, self._root, batch) for batch in batches]

        def build(snapshot: LogSnapshot) -> list[Action]:
            now = self._clock.now()
            removes: list[Action] = [
                RemoveFile(path=path, deletion_timestamp=now)
                for path in snapshot.active_files
            ]
            return removes + list(adds)

        return self._commit_with_retry(build, "WRITE",
                                       details={"mode": "overwrite", "rows": len(rows)})

    @staticmethod
    def _split(rows: list[dict], max_rows_per_file: Optional[int]) -> list[list[dict]]:
        if max_rows_per_file is None or max_rows_per_file >= len(rows):
            return [rows]
        if max_rows_per_file <= 0:
            raise InvalidRequestError("max_rows_per_file must be positive")
        return [
            rows[i:i + max_rows_per_file]
            for i in range(0, len(rows), max_rows_per_file)
        ]

    def delete_where(self, filters: list[Filter]) -> int:
        """Delete matching rows using deletion vectors; fully-dead files
        are removed outright. Returns the number of rows deleted."""
        deleted_total = 0

        def build(snapshot: LogSnapshot) -> list[Action]:
            nonlocal deleted_total
            deleted_total = 0
            actions: list[Action] = []
            now = self._clock.now()
            for add in snapshot.active_files.values():
                if filters and not _file_may_match(add, filters):
                    continue
                rows = read_data_file(self._client, self._root, add)
                existing_dv = (
                    read_dv(self._client, self._root, add.deletion_vector)
                    if add.deletion_vector
                    else DeletionVector(set())
                )
                newly_dead = {
                    ordinal
                    for ordinal, row in enumerate(rows)
                    if ordinal not in existing_dv and _row_matches(row, filters)
                }
                if not newly_dead:
                    continue
                deleted_total += len(newly_dead)
                merged = existing_dv.union(DeletionVector(newly_dead))
                if len(merged) >= len(rows):
                    actions.append(RemoveFile(path=add.path, deletion_timestamp=now))
                else:
                    dv_path = write_dv(self._client, self._root, merged)
                    actions.append(RemoveFile(path=add.path, deletion_timestamp=now))
                    actions.append(
                        AddFile(
                            path=add.path,
                            size=add.size,
                            stats=add.stats,
                            partition_values=add.partition_values,
                            deletion_vector=dv_path,
                            clustering_key=add.clustering_key,
                        )
                    )
            return actions

        self._commit_with_retry(build, "DELETE")
        return deleted_total

    # -- maintenance ---------------------------------------------------------------

    def optimize(
        self,
        target_rows_per_file: int,
        cluster_by: Optional[str] = None,
    ) -> int:
        """Compact files to ``target_rows_per_file``; with ``cluster_by``,
        rows are globally sorted by that column first, giving each output
        file a tight min/max range (the layout predictive optimization
        produces). Returns the new log version."""
        if target_rows_per_file <= 0:
            raise InvalidRequestError("target_rows_per_file must be positive")

        def build(snapshot: LogSnapshot) -> list[Action]:
            all_rows: list[dict] = []
            now = self._clock.now()
            removes: list[Action] = []
            for add in snapshot.active_files.values():
                rows = read_data_file(self._client, self._root, add)
                dv = (
                    read_dv(self._client, self._root, add.deletion_vector)
                    if add.deletion_vector
                    else None
                )
                for ordinal, row in enumerate(rows):
                    if dv is None or ordinal not in dv:
                        all_rows.append(row)
                removes.append(RemoveFile(path=add.path, deletion_timestamp=now))
            if cluster_by is not None:
                all_rows.sort(key=lambda r: (r.get(cluster_by) is None,
                                             r.get(cluster_by)))
            adds: list[Action] = []
            for i in range(0, len(all_rows), target_rows_per_file):
                batch = all_rows[i:i + target_rows_per_file]
                adds.append(
                    write_data_file(
                        self._client, self._root, batch, clustering_key=cluster_by
                    )
                )
            return removes + adds

        return self._commit_with_retry(
            build, "OPTIMIZE",
            details={"clusterBy": cluster_by, "targetRows": target_rows_per_file},
        )

    def vacuum(self, retention_seconds: float = 0.0) -> int:
        """Physically delete tombstoned files older than the retention
        window; returns bytes reclaimed."""
        snapshot = self._log.snapshot()
        cutoff = self._clock.now() - retention_seconds
        reclaimed = 0
        for tombstone in snapshot.tombstones:
            if tombstone.deletion_timestamp > cutoff:
                continue
            if tombstone.path in snapshot.active_files:
                continue  # re-added (e.g. DV rewrite)
            path = self._root.child(*tombstone.path.split("/"))
            if self._client.exists(path):
                reclaimed += self._client.head(path).size
                self._client.delete(path)
        return reclaimed

    def restore(self, version: int) -> int:
        """RESTORE TABLE: make the current state equal an earlier version
        (a new commit — history is preserved, nothing is rewritten)."""
        target = self._log.snapshot(version)

        def build(snapshot: LogSnapshot) -> list[Action]:
            now = self._clock.now()
            actions: list[Action] = []
            for path in snapshot.active_files:
                if path not in target.active_files:
                    actions.append(RemoveFile(path=path, deletion_timestamp=now))
            for path, add in target.active_files.items():
                if path not in snapshot.active_files or (
                    snapshot.active_files[path] != add
                ):
                    actions.append(add)
            return actions

        return self._commit_with_retry(build, "RESTORE",
                                       details={"toVersion": version})

    def checkpoint(self) -> int:
        return self._log.write_checkpoint()

    def storage_bytes(self) -> int:
        """All bytes currently stored under the table root (live + garbage)."""
        return sum(meta.size for meta in self._client.list(self._root))
