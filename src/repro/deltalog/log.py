"""The transaction log: ordered JSON entries under ``_delta_log/``.

Commit atomicity comes from the object store's put-if-absent: the writer
of log entry N wins; any concurrent writer gets an
:class:`~repro.errors.ConcurrentModificationError` and must rebase —
exactly Delta Lake's optimistic concurrency over cloud-storage atomic
operations (paper section 6.3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.deltalog.actions import (
    Action,
    AddFile,
    CommitInfo,
    Metadata,
    Protocol,
    RemoveFile,
    action_from_dict,
)
from repro.errors import AlreadyExistsError, ConcurrentModificationError, NotFoundError

_LOG_DIR = "_delta_log"
_ENTRY_WIDTH = 20


def _entry_name(version: int) -> str:
    return f"{version:0{_ENTRY_WIDTH}d}.json"


def _checkpoint_name(version: int) -> str:
    return f"{version:0{_ENTRY_WIDTH}d}.checkpoint.json"


@dataclass
class LogSnapshot:
    """Reconstructed table state as of one log version."""

    version: int
    metadata: Optional[Metadata]
    protocol: Protocol
    active_files: dict[str, AddFile]  # by relative path
    tombstones: list[RemoveFile]

    @property
    def num_files(self) -> int:
        return len(self.active_files)

    @property
    def total_rows(self) -> int:
        return sum(f.stats.num_records for f in self.active_files.values())

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.active_files.values())


class DeltaLog:
    """Reads and writes one table's transaction log through a governed
    storage client (all I/O presents the vended credential)."""

    def __init__(self, client: StorageClient, table_root: StoragePath, metrics=None):
        """``metrics`` is an optional
        :class:`~repro.obs.metrics.MetricsRegistry`; when present the log
        counts commits, lost commit races, and checkpoint reads."""
        self._client = client
        self._root = table_root
        self._commits = self._conflicts = self._checkpoint_reads = None
        self._rebase_reads = None
        if metrics is not None:
            self._commits = metrics.counter(
                "uc_delta_commits_total", "Delta log entries committed."
            ).labels()
            self._conflicts = metrics.counter(
                "uc_delta_commit_conflicts_total",
                "Delta commits that lost the put-if-absent race.",
            ).labels()
            self._checkpoint_reads = metrics.counter(
                "uc_delta_checkpoint_reads_total",
                "Snapshot reconstructions that started from a checkpoint.",
            ).labels()
            self._rebase_reads = metrics.counter(
                "uc_delta_rebase_reads_total",
                "Log entries read incrementally while rebasing a lost commit.",
            ).labels()

    @property
    def root(self) -> StoragePath:
        return self._root

    def _entry_path(self, version: int) -> StoragePath:
        return self._root.child(_LOG_DIR, _entry_name(version))

    def _checkpoint_path(self, version: int) -> StoragePath:
        return self._root.child(_LOG_DIR, _checkpoint_name(version))

    # -- version discovery ---------------------------------------------------

    def latest_version(self) -> int:
        """The highest committed version, or -1 for an empty log."""
        entries = self._client.list(self._root.child(_LOG_DIR))
        latest = -1
        for meta in entries:
            name = meta.path.key.rsplit("/", 1)[-1]
            if name.endswith(".json") and not name.endswith(".checkpoint.json"):
                latest = max(latest, int(name[:-5]))
        return latest

    def _latest_checkpoint(self, at_or_below: int) -> Optional[int]:
        entries = self._client.list(self._root.child(_LOG_DIR))
        best: Optional[int] = None
        for meta in entries:
            name = meta.path.key.rsplit("/", 1)[-1]
            if name.endswith(".checkpoint.json"):
                version = int(name.split(".")[0])
                if version <= at_or_below and (best is None or version > best):
                    best = version
        return best

    # -- commit --------------------------------------------------------------

    def commit(self, version: int, actions: list[Action]) -> None:
        """Atomically write log entry ``version``; lose the race, get a
        concurrency error to rebase on."""
        payload = "\n".join(json.dumps(action.to_dict()) for action in actions)
        try:
            self._client.put(
                self._entry_path(version), payload.encode(), if_absent=True
            )
        except AlreadyExistsError:
            if self._conflicts is not None:
                self._conflicts.inc()
            raise ConcurrentModificationError(
                f"log version {version} was committed concurrently"
            )
        if self._commits is not None:
            self._commits.inc()

    def read_entry(self, version: int) -> list[Action]:
        try:
            data = self._client.get(self._entry_path(version))
        except NotFoundError:
            raise NotFoundError(f"no log entry for version {version}")
        return [
            action_from_dict(json.loads(line))
            for line in data.decode().splitlines()
            if line.strip()
        ]

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, version: Optional[int] = None) -> LogSnapshot:
        """Reconstruct state at ``version`` (default: latest), starting
        from the newest checkpoint at or below it."""
        latest = self.latest_version()
        if latest < 0:
            raise NotFoundError(f"no delta log at {self._root.url()}")
        target = latest if version is None else version
        if target > latest:
            raise NotFoundError(f"version {target} not committed (latest {latest})")

        metadata: Optional[Metadata] = None
        protocol = Protocol()
        active: dict[str, AddFile] = {}
        tombstones: list[RemoveFile] = []

        start = 0
        checkpoint = self._latest_checkpoint(target)
        if checkpoint is not None:
            if self._checkpoint_reads is not None:
                self._checkpoint_reads.inc()
            state = json.loads(self._client.get(self._checkpoint_path(checkpoint)))
            metadata = Metadata.from_dict(state["metaData"]) if state.get("metaData") else None
            protocol = Protocol.from_dict(state.get("protocol", {}))
            active = {
                f["path"]: AddFile.from_dict(f) for f in state.get("addFiles", ())
            }
            tombstones = [RemoveFile.from_dict(r) for r in state.get("tombstones", ())]
            start = checkpoint + 1

        for v in range(start, target + 1):
            for action in self.read_entry(v):
                metadata, protocol = self._apply(
                    action, active, tombstones, metadata, protocol
                )
        return LogSnapshot(
            version=target,
            metadata=metadata,
            protocol=protocol,
            active_files=active,
            tombstones=tombstones,
        )

    @staticmethod
    def _apply(
        action: Action,
        active: dict[str, AddFile],
        tombstones: list[RemoveFile],
        metadata: Optional[Metadata],
        protocol: Protocol,
    ) -> tuple[Optional[Metadata], Protocol]:
        """Fold one action into reconstructed state (shared by the full
        replay in :meth:`snapshot` and the incremental :meth:`refresh`)."""
        if isinstance(action, AddFile):
            active[action.path] = action
        elif isinstance(action, RemoveFile):
            active.pop(action.path, None)
            tombstones.append(action)
        elif isinstance(action, Metadata):
            metadata = action
        elif isinstance(action, Protocol):
            protocol = action
        return metadata, protocol

    def refresh(self, snapshot: LogSnapshot) -> LogSnapshot:
        """Advance a snapshot to the latest version by reading **only**
        log entries newer than it — the rebase path for a writer that
        lost a commit race. Replaying the whole log on every lost race
        is O(versions) per retry; this is O(new entries)."""
        latest = self.latest_version()
        if latest <= snapshot.version:
            return snapshot
        metadata = snapshot.metadata
        protocol = snapshot.protocol
        active = dict(snapshot.active_files)
        tombstones = list(snapshot.tombstones)
        for v in range(snapshot.version + 1, latest + 1):
            for action in self.read_entry(v):
                metadata, protocol = self._apply(
                    action, active, tombstones, metadata, protocol
                )
            if self._rebase_reads is not None:
                self._rebase_reads.inc()
        return LogSnapshot(
            version=latest,
            metadata=metadata,
            protocol=protocol,
            active_files=active,
            tombstones=tombstones,
        )

    # -- checkpoints -----------------------------------------------------------

    def write_checkpoint(self, version: Optional[int] = None) -> int:
        """Materialize state at ``version`` into a checkpoint object."""
        snapshot = self.snapshot(version)
        state = {
            "metaData": snapshot.metadata.to_dict()["metaData"] if snapshot.metadata else None,
            "protocol": snapshot.protocol.to_dict()["protocol"],
            "addFiles": [f.to_dict()["add"] for f in snapshot.active_files.values()],
            "tombstones": [r.to_dict()["remove"] for r in snapshot.tombstones],
        }
        self._client.put(
            self._checkpoint_path(snapshot.version), json.dumps(state).encode()
        )
        return snapshot.version

    # -- history ---------------------------------------------------------------

    def history(self) -> list[tuple[int, CommitInfo]]:
        """(version, commit info) pairs for every committed version."""
        out = []
        for version in range(self.latest_version() + 1):
            for action in self.read_entry(version):
                if isinstance(action, CommitInfo):
                    out.append((version, action))
        return out
