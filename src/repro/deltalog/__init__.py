"""Delta-style ACID table format over the object store.

Reproduces the properties of Delta Lake that Unity Catalog's design
depends on (paper sections 1, 4.1, 6.3):

* an ordered transaction log of JSON actions in ``_delta_log/``, with
  single-table ACID commits via atomic put-if-absent of the next log
  entry (optimistic concurrency),
* add/remove file actions carrying per-file column statistics used for
  data skipping,
* deletion vectors (engine-side optimization the catalog stays out of),
* checkpoints and VACUUM,
* OPTIMIZE (compaction + clustering) and ANALYZE — the substrate that
  predictive optimization (Figure 10(c)) drives.
"""

from repro.deltalog.actions import (
    AddFile,
    CommitInfo,
    FileStats,
    Metadata,
    Protocol,
    RemoveFile,
)
from repro.deltalog.log import DeltaLog
from repro.deltalog.table import DeltaTable
from repro.deltalog.optimize import OptimizeReport, PredictiveOptimizer

__all__ = [
    "AddFile",
    "CommitInfo",
    "DeltaLog",
    "DeltaTable",
    "FileStats",
    "Metadata",
    "OptimizeReport",
    "PredictiveOptimizer",
    "Protocol",
    "RemoveFile",
]
