"""Predictive optimization (paper section 6.3, Figure 10(c)).

"Predictive optimization ... automates key maintenance tasks such as
optimizing data file layouts, removing unused files, performing
incremental clustering, and updating statistics. This ... is enabled by
UC's metadata management."

The optimizer inspects a table's layout metadata (file counts, sizes,
clustering state — exactly what the catalog's metadata gives it), decides
whether maintenance pays off, and runs OPTIMIZE/clustering plus VACUUM.
The Figure 10(c) benchmark measures the scan-latency and storage effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.deltalog.table import DeltaTable


@dataclass
class OptimizeReport:
    """What one predictive-optimization pass did."""

    ran_optimize: bool = False
    ran_vacuum: bool = False
    files_before: int = 0
    files_after: int = 0
    storage_bytes_before: int = 0
    storage_bytes_after: int = 0
    bytes_reclaimed: int = 0
    cluster_column: Optional[str] = None

    @property
    def storage_ratio(self) -> float:
        """before/after storage — the paper reports up to ~2x."""
        if self.storage_bytes_after == 0:
            return 1.0
        return self.storage_bytes_before / self.storage_bytes_after


class PredictiveOptimizer:
    """Decides and applies table maintenance from layout metadata alone."""

    def __init__(
        self,
        target_rows_per_file: int = 100_000,
        fragmentation_threshold: float = 4.0,
    ):
        """``fragmentation_threshold``: run OPTIMIZE when the table has at
        least this many times more files than the ideal layout would."""
        self._target_rows = target_rows_per_file
        self._threshold = fragmentation_threshold

    def should_optimize(self, table: DeltaTable) -> bool:
        snapshot = table.snapshot()
        if snapshot.num_files <= 1:
            return False
        ideal_files = max(1, -(-snapshot.total_rows // self._target_rows))
        return snapshot.num_files >= self._threshold * ideal_files

    def pick_cluster_column(self, table: DeltaTable) -> Optional[str]:
        """Cluster on the first column that per-file stats cover.

        A real system mines the predicate log; the stats-covered first
        schema column is the deterministic stand-in.
        """
        metadata = table.snapshot().metadata
        if metadata is None or not metadata.schema:
            return None
        for column in metadata.schema:
            name = column["name"]
            covered = all(
                name in add.stats.min_values
                for add in table.snapshot().active_files.values()
            )
            if covered:
                return name
        return None

    def run(
        self,
        table: DeltaTable,
        cluster_by: Optional[str] = None,
        vacuum_retention_seconds: float = 0.0,
    ) -> OptimizeReport:
        """One maintenance pass: OPTIMIZE if fragmented, then VACUUM."""
        before = table.snapshot()
        report = OptimizeReport(
            files_before=before.num_files,
            files_after=before.num_files,
            storage_bytes_before=table.storage_bytes(),
        )
        if self.should_optimize(table):
            column = cluster_by if cluster_by is not None else self.pick_cluster_column(table)
            table.optimize(self._target_rows, cluster_by=column)
            report.ran_optimize = True
            report.cluster_column = column
            report.files_after = table.snapshot().num_files
        report.bytes_reclaimed = table.vacuum(vacuum_retention_seconds)
        report.ran_vacuum = True
        report.storage_bytes_after = table.storage_bytes()
        return report
