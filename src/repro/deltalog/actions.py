"""Transaction-log actions, mirroring the Delta Lake action vocabulary."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class FileStats:
    """Per-file column statistics used for data skipping.

    ``min_values``/``max_values`` cover primitive columns; ``null_count``
    counts nulls per column.
    """

    num_records: int
    min_values: dict[str, Any] = field(default_factory=dict)
    max_values: dict[str, Any] = field(default_factory=dict)
    null_count: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "numRecords": self.num_records,
            "minValues": dict(self.min_values),
            "maxValues": dict(self.max_values),
            "nullCount": dict(self.null_count),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileStats":
        return cls(
            num_records=data["numRecords"],
            min_values=dict(data.get("minValues", {})),
            max_values=dict(data.get("maxValues", {})),
            null_count=dict(data.get("nullCount", {})),
        )

    @classmethod
    def compute(cls, rows: list[dict]) -> "FileStats":
        """Compute stats over a batch of rows."""
        min_values: dict[str, Any] = {}
        max_values: dict[str, Any] = {}
        null_count: dict[str, int] = {}
        for row in rows:
            for column, value in row.items():
                if value is None:
                    null_count[column] = null_count.get(column, 0) + 1
                    continue
                if not isinstance(value, (int, float, str, bool)):
                    continue
                if column not in min_values or value < min_values[column]:
                    min_values[column] = value
                if column not in max_values or value > max_values[column]:
                    max_values[column] = value
        return cls(
            num_records=len(rows),
            min_values=min_values,
            max_values=max_values,
            null_count=null_count,
        )


@dataclass(frozen=True)
class AddFile:
    """A data file added to the table at some version."""

    path: str  # relative to the table root
    size: int
    stats: FileStats
    partition_values: dict[str, str] = field(default_factory=dict)
    deletion_vector: Optional[str] = None  # relative path of the DV object
    clustering_key: Optional[str] = None  # column this file is clustered on

    def to_dict(self) -> dict:
        return {
            "add": {
                "path": self.path,
                "size": self.size,
                "stats": self.stats.to_dict(),
                "partitionValues": dict(self.partition_values),
                "deletionVector": self.deletion_vector,
                "clusteringKey": self.clustering_key,
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AddFile":
        return cls(
            path=data["path"],
            size=data["size"],
            stats=FileStats.from_dict(data["stats"]),
            partition_values=dict(data.get("partitionValues", {})),
            deletion_vector=data.get("deletionVector"),
            clustering_key=data.get("clusteringKey"),
        )


@dataclass(frozen=True)
class RemoveFile:
    """A data file logically removed at some version (kept for VACUUM)."""

    path: str
    deletion_timestamp: float

    def to_dict(self) -> dict:
        return {"remove": {"path": self.path,
                           "deletionTimestamp": self.deletion_timestamp}}

    @classmethod
    def from_dict(cls, data: dict) -> "RemoveFile":
        return cls(path=data["path"], deletion_timestamp=data["deletionTimestamp"])


@dataclass(frozen=True)
class Metadata:
    """Table-level metadata action (schema, format, configuration)."""

    table_id: str
    schema: list[dict]  # [{"name": ..., "type": ...}, ...]
    format: str = "json-columnar"
    partition_columns: tuple[str, ...] = ()
    configuration: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "metaData": {
                "id": self.table_id,
                "schema": list(self.schema),
                "format": self.format,
                "partitionColumns": list(self.partition_columns),
                "configuration": dict(self.configuration),
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Metadata":
        return cls(
            table_id=data["id"],
            schema=list(data["schema"]),
            format=data.get("format", "json-columnar"),
            partition_columns=tuple(data.get("partitionColumns", ())),
            configuration=dict(data.get("configuration", {})),
        )


@dataclass(frozen=True)
class Protocol:
    """Reader/writer protocol versions."""

    min_reader_version: int = 1
    min_writer_version: int = 2

    def to_dict(self) -> dict:
        return {
            "protocol": {
                "minReaderVersion": self.min_reader_version,
                "minWriterVersion": self.min_writer_version,
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Protocol":
        return cls(
            min_reader_version=data.get("minReaderVersion", 1),
            min_writer_version=data.get("minWriterVersion", 2),
        )


@dataclass(frozen=True)
class CommitInfo:
    """Provenance for a commit (operation name, timestamp, engine)."""

    operation: str
    timestamp: float
    engine: str = "repro"
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "commitInfo": {
                "operation": self.operation,
                "timestamp": self.timestamp,
                "engine": self.engine,
                "details": dict(self.details),
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CommitInfo":
        return cls(
            operation=data["operation"],
            timestamp=data["timestamp"],
            engine=data.get("engine", "repro"),
            details=dict(data.get("details", {})),
        )


Action = AddFile | RemoveFile | Metadata | Protocol | CommitInfo


def action_from_dict(data: dict) -> Action:
    if "add" in data:
        return AddFile.from_dict(data["add"])
    if "remove" in data:
        return RemoveFile.from_dict(data["remove"])
    if "metaData" in data:
        return Metadata.from_dict(data["metaData"])
    if "protocol" in data:
        return Protocol.from_dict(data["protocol"])
    if "commitInfo" in data:
        return CommitInfo.from_dict(data["commitInfo"])
    raise ValueError(f"unknown action: {list(data)}")
