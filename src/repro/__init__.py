"""Reproduction of *Unity Catalog: Open and Universal Governance for the
Lakehouse and Beyond* (SIGMOD-Companion 2025).

Public API map:

* :class:`repro.UnityCatalogService` — the catalog service (create
  metastores/securables, grants, tags, FGAC/ABAC policies, credential
  vending, batched query resolution, lineage, events, audit).
* :class:`repro.EngineSession` — a SQL engine that executes the paper's
  "life of a query" against the catalog.
* :mod:`repro.deltalog` — the Delta-style table format substrate.
* :mod:`repro.cloudstore` — the governed object-store substrate.
* :mod:`repro.hms` — the Hive Metastore baseline / federation source.
* :mod:`repro.mlflowlite` — the MLflow-style model-registry client.
* :class:`repro.core.sharing.DeltaSharingServer` /
  :class:`repro.core.iceberg_rest.IcebergRestCatalog` — external access.
* :mod:`repro.workloads` and :mod:`repro.bench` — synthetic workloads
  and the simulated-latency benchmark harness.
"""

from repro.clock import SimClock, WallClock
from repro.core.auth.privileges import Privilege
from repro.core.model.entity import Entity, SecurableKind
from repro.core.service.catalog_service import UnityCatalogService
from repro.cloudstore.sts import AccessLevel
from repro.engine.session import EngineSession
from repro.errors import UnityCatalogError
from repro.faults import FaultInjector
from repro.resilience import CircuitBreaker, Retrier, RetryPolicy

__version__ = "1.0.0"

__all__ = [
    "AccessLevel",
    "CircuitBreaker",
    "EngineSession",
    "Entity",
    "FaultInjector",
    "Privilege",
    "Retrier",
    "RetryPolicy",
    "SecurableKind",
    "SimClock",
    "UnityCatalogError",
    "UnityCatalogService",
    "WallClock",
    "__version__",
]
