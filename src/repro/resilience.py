"""Retry, backoff, and circuit breaking for the catalog's dependencies.

Every outbound dependency of the catalog — object storage, the STS
issuer, the backing metadata store, foreign catalogs — fails transiently
in production. This module gives each call site the same three tools:

* :class:`RetryPolicy` — exponential backoff with **seeded** jitter and
  an optional per-call deadline. Pure arithmetic, no state.
* :class:`Retrier` — executes a callable under a policy, retrying only
  the :class:`~repro.errors.TransientError` family by default, and
  *charging* backoff delays to the injected clock (``SimClock.advance``)
  instead of sleeping, so chaos tests are deterministic and fast.
* :class:`CircuitBreaker` — closed → open → half-open state machine that
  sheds load from a failing dependency instead of piling retries on it.

Observability: retries, exhaustions, breaker state, and breaker
transitions all land in the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``uc_retries_total``,
``uc_retry_exhausted_total``, ``uc_breaker_state``,
``uc_breaker_transitions_total``), and a :class:`Retrier` annotates the
active trace span with the attempt count.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Callable, Iterator, Optional, TypeVar

from repro.clock import Clock
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    TenantThrottledError,
    TransientError,
)

T = TypeVar("T")


_AMBIENT = threading.local()


def ambient_deadline() -> Optional[float]:
    """The absolute deadline of the request active on this thread.

    Armed by the request pipeline's deadline interceptor; every
    :class:`Retrier` (and the service's commit loop) consults it before
    charging a backoff delay, so one request's retries across *all* its
    dependencies share a single budget instead of overshooting it
    component by component.
    """
    return getattr(_AMBIENT, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[float]) -> Iterator[None]:
    """Arm ``deadline`` (absolute clock time) for the enclosed calls.

    Nested scopes keep the tighter deadline; ``None`` is a no-op scope.
    """
    previous = getattr(_AMBIENT, "deadline", None)
    if deadline is not None and previous is not None:
        deadline = min(deadline, previous)
    _AMBIENT.deadline = deadline if deadline is not None else previous
    try:
        yield
    finally:
        _AMBIENT.deadline = previous


def charge(clock: Clock, seconds: float) -> None:
    """Spend ``seconds`` on the clock: advance a SimClock, sleep a real one."""
    if seconds <= 0:
        return
    advance = getattr(clock, "advance", None)
    if advance is not None:
        advance(seconds)
    else:  # pragma: no cover - wall-clock path, unused in tests
        time.sleep(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and an optional deadline.

    ``backoff(n)`` for the n-th retry (0-based) is
    ``min(base_delay * multiplier**n, max_delay)``, scaled down by up to
    ``jitter`` (a fraction in [0, 1)) using the caller-supplied RNG — so
    a fleet of writers decorrelates, yet a seeded run reproduces
    byte-identical delays.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None  # retry budget, from the first failure

    def __post_init__(self):
        if self.max_attempts < 1:
            raise InvalidRequestError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise InvalidRequestError("jitter must be in [0, 1)")

    def backoff(self, retry_index: int, rng: Random) -> float:
        raw = min(self.base_delay * self.multiplier**retry_index, self.max_delay)
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw


class Retrier:
    """Runs callables under a :class:`RetryPolicy`, charging the clock.

    One retrier is bound per component (``storage``, ``sts``,
    ``metastore`` …); its RNG is seeded at construction, so the jitter
    stream — and therefore every latency a chaos run observes — is a
    deterministic function of (seed, call sequence).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        clock: Clock,
        metrics=None,
        tracer=None,
        component: str = "storage",
        seed: int = 0xB0FF,
    ):
        self.policy = policy
        self._clock = clock
        self._rng = Random(seed)
        #: guards the jitter rng and the retry counters — a retrier is
        #: shared per component and failures may race from many threads
        self._lock = threading.Lock()
        self._tracer = tracer
        self.component = component
        self.retries = 0
        self.exhausted = 0
        self._retries_metric = self._exhausted_metric = None
        if metrics is not None:
            self._retries_metric = metrics.counter(
                "uc_retries_total",
                "Transient-error retries by component.",
                ("component",),
            ).labels(component=component)
            self._exhausted_metric = metrics.counter(
                "uc_retry_exhausted_total",
                "Operations that failed after exhausting their retry budget.",
                ("component",),
            ).labels(component=component)

    def call(
        self,
        fn: Callable[[], T],
        *,
        retryable: Optional[Callable[[BaseException], bool]] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Invoke ``fn`` until it succeeds, its error is non-retryable,
        the attempt budget is spent, or the deadline would be blown.

        ``retryable`` defaults to "is a :class:`TransientError`"; note
        that rebasing errors (``ConcurrentModificationError``) are *not*
        transient — loops that can rebase handle those themselves.

        The first attempt is the fast path: no retry bookkeeping happens
        until something actually fails (keeps the faults-off overhead on
        hot storage calls negligible).
        """
        try:
            return fn()
        except BaseException as exc:
            predicate = retryable if retryable is not None else _is_transient
            if not predicate(exc):
                raise
            pending = exc
        policy = self.policy
        start = self._clock.now()
        attempt = 1
        while True:
            # `pending` is the retryable failure of attempt `attempt`
            if attempt >= policy.max_attempts:
                self._give_up(attempt)
                raise pending
            if isinstance(pending, TenantThrottledError) and \
                    pending.retry_after_seconds is not None:
                # the QoS scheduler computed exactly when the tenant's
                # bucket refills — honor the server hint verbatim rather
                # than guessing with exponential backoff
                delay = pending.retry_after_seconds
            else:
                with self._lock:
                    delay = policy.backoff(attempt - 1, self._rng)
            if policy.deadline is not None:
                elapsed = self._clock.now() - start
                if elapsed + delay > policy.deadline:
                    self._give_up(attempt)
                    raise DeadlineExceededError(
                        f"{self.component} deadline of {policy.deadline}s "
                        f"exhausted after {attempt} attempt(s): {pending}"
                    ) from pending
            request_deadline = ambient_deadline()
            if request_deadline is not None:
                if self._clock.now() + delay > request_deadline:
                    self._give_up(attempt)
                    raise DeadlineExceededError(
                        f"{self.component}: request deadline exhausted "
                        f"after {attempt} attempt(s): {pending}"
                    ) from pending
            with self._lock:
                self.retries += 1
            if self._retries_metric is not None:
                self._retries_metric.inc()
            if on_retry is not None:
                on_retry(attempt, pending)
            charge(self._clock, delay)
            attempt += 1
            try:
                result = fn()
            except BaseException as exc:
                if not predicate(exc):
                    raise
                pending = exc
                continue
            self._annotate(attempt)
            return result

    def _give_up(self, attempts: int) -> None:
        with self._lock:
            self.exhausted += 1
        if self._exhausted_metric is not None:
            self._exhausted_metric.inc()
        self._annotate(attempts)

    def _annotate(self, attempts: int) -> None:
        if attempts > 1 and self._tracer is not None:
            span = self._tracer.current_span
            if span is not None:
                span.attrs["uc.attempts"] = attempts


def _is_transient(exc: BaseException) -> bool:
    return isinstance(exc, TransientError)


class CircuitBreaker:
    """Closed → open → half-open breaker over one dependency.

    * **closed**: calls pass; ``failure_threshold`` consecutive failures
      open the circuit.
    * **open**: calls fail fast with :class:`CircuitOpenError` until
      ``reset_timeout`` elapses on the injected clock.
    * **half-open**: up to ``half_open_max_probes`` trial calls pass at
      a time; one success closes the circuit, one failure re-opens it.

    The probe budget matters under the parallel serving tier: when the
    reset timeout elapses, every waiter that raced into ``before_call``
    used to be admitted at once if the budget was set high — a thundering
    herd onto a dependency that may still be down. The budget is counted
    in *in-flight* probes, and a probe slot is always released, even when
    the probe dies with an exception outside ``failure_types`` (that leak
    used to wedge the breaker half-open forever).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    _STATE_VALUES = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        metrics=None,
        name: str = "default",
        failure_types: tuple[type[BaseException], ...] = (Exception,),
        half_open_max_probes: Optional[int] = None,
    ):
        if failure_threshold < 1:
            raise InvalidRequestError("failure_threshold must be >= 1")
        if half_open_max_probes is not None and half_open_max_probes < 1:
            raise InvalidRequestError("half_open_max_probes must be >= 1")
        self._clock = clock
        self._threshold = failure_threshold
        self._reset_timeout = reset_timeout
        # `half_open_max_probes` is the explicit knob; `half_open_probes`
        # is the legacy positional name kept for existing callers.
        self._half_open_probes = (
            half_open_max_probes if half_open_max_probes is not None else half_open_probes
        )
        self._failure_types = failure_types
        self.name = name
        #: one breaker fronts each shard; admissions and outcome
        #: recording race from every serving thread
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.transitions: list[str] = []
        self._state_metric = self._transitions_metric = None
        if metrics is not None:
            self._state_metric = metrics.gauge(
                "uc_breaker_state",
                "Circuit-breaker state (0=closed, 1=open, 2=half-open).",
                ("breaker",),
            ).labels(breaker=name)
            self._state_metric.set(0.0)
            self._transitions_metric = metrics.counter(
                "uc_breaker_transitions_total",
                "Circuit-breaker state transitions.",
                ("breaker", "to"),
            )

    # -- state machine ---------------------------------------------------

    def _transition(self, to: str) -> None:
        self.state = to
        self.transitions.append(to)
        if self._state_metric is not None:
            self._state_metric.set(self._STATE_VALUES[to])
        if self._transitions_metric is not None:
            self._transitions_metric.inc(breaker=self.name, to=to)

    def before_call(self) -> None:
        """Admit or reject one call; may move open → half-open."""
        with self._lock:
            if self.state == self.OPEN:
                remaining = (self._opened_at + self._reset_timeout
                             - self._clock.now())
                if remaining > 0:
                    raise CircuitOpenError(
                        f"circuit {self.name!r} is open for another "
                        f"{remaining:.3f}s",
                        retry_after_seconds=remaining,
                    )
                self._transition(self.HALF_OPEN)
                self._probes_in_flight = 0
            if self.state == self.HALF_OPEN:
                if self._probes_in_flight >= self._half_open_probes:
                    raise CircuitOpenError(
                        f"circuit {self.name!r} is half-open and probe "
                        f"slots are taken",
                        retry_after_seconds=self._reset_timeout,
                    )
                self._probes_in_flight += 1

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self.state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self.state == self.HALF_OPEN:
                self._open()
                return
            self._failures += 1
            if self._failures >= self._threshold:
                self._open()

    def _open(self) -> None:
        self._opened_at = self._clock.now()
        self._failures = 0
        self._transition(self.OPEN)

    def _release_probe(self) -> None:
        """Give back a half-open probe slot without recording an outcome.

        Needed when a probe dies with an exception the breaker does not
        count as a dependency failure (e.g. a validation error raised by
        the caller's own code): without this, the slot stays occupied
        forever — ``before_call`` only resets the count on the
        open → half-open transition, which never happens again.
        """
        with self._lock:
            if self.state == self.HALF_OPEN and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker, recording the outcome."""
        self.before_call()
        try:
            result = fn()
        except self._failure_types:
            self.record_failure()
            raise
        except BaseException:
            self._release_probe()
            raise
        self.record_success()
        return result


__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "Retrier",
    "ambient_deadline",
    "charge",
    "deadline_scope",
]
