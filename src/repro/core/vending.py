"""Temporary credential vending (paper section 4.3.1).

Administrators grant storage access *exclusively to the catalog* (via
storage-credential and external-location securables); clients never hold
raw cloud credentials. After the service authorizes a request, the vendor
mints a short-lived token downscoped to exactly the asset's storage path
and the requested access level. Unexpired tokens are cached per
(asset, level) and reused, as the paper notes UC may do.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

from repro.clock import Clock
from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel, StsTokenIssuer, TemporaryCredential
from repro.core.cache.ttl import TtlCache
from repro.core.model.entity import Entity, SecurableKind
from repro.core.view import MetastoreView
from repro.errors import CredentialError, InvalidRequestError


@dataclass
class VendingStats:
    minted: int = 0
    cache_hits: int = 0


class CredentialVendor:
    """Mints downscoped temporary credentials for governed assets."""

    #: Vended tokens are valid for "tens of minutes".
    TOKEN_TTL_SECONDS = 15 * 60
    #: Cached tokens are reused only while they have comfortable validity
    #: left, so callers never receive an about-to-expire token.
    CACHE_TTL_SECONDS = 10 * 60

    def __init__(
        self,
        issuer: StsTokenIssuer,
        clock: Clock,
        managed_root_secret: str,
        rink_cache: Optional[TtlCache] = None,
        obs=None,
    ):
        """``rink_cache`` is an externally-owned token cache shared across
        service instances — the paper's RINK caching service, which lets
        vended tokens "survive restarts" of the catalog service.
        ``obs`` is the owning service's observability bundle."""
        self._issuer = issuer
        self._clock = clock
        self._managed_root_secret = managed_root_secret
        self._cache: TtlCache[tuple[str, str], TemporaryCredential] = TtlCache(
            ttl_seconds=self.CACHE_TTL_SECONDS, clock=clock
        )
        self._rink = rink_cache
        self.stats = VendingStats()
        self._tracer = obs.tracer if obs is not None else None
        self._scope_segments = None
        if obs is not None:
            self._scope_segments = obs.metrics.histogram(
                "uc_credential_scope_segments",
                "Path depth of vended credential scopes.",
                buckets=(1, 2, 3, 4, 6, 8, 12, 16),
            ).labels()
            obs.metrics.register_collector(self._collect)

    def _collect(self):
        yield ("uc_credential_cache_entries", {"tier": "vendor"}, len(self._cache))
        yield ("uc_credential_cache_lookups_total", {"tier": "vendor"},
               self._cache.hits + self._cache.misses)

    def vend(
        self,
        view: MetastoreView,
        entity: Entity,
        level: AccessLevel,
    ) -> TemporaryCredential:
        """Mint (or reuse) a token scoped to ``entity``'s storage path.

        Authorization has already happened in the service; this method
        only locates the right root authority and downscopes.
        """
        if not entity.storage_path:
            raise InvalidRequestError(
                f"securable {entity.name!r} has no backing storage"
            )
        span = (
            self._tracer.span("uc.vend", asset=entity.name, level=level.value)
            if self._tracer is not None
            else nullcontext()
        )
        with span:
            cache_key = (entity.id, level.value)
            cached = self._cache.get(cache_key)
            if cached is None and self._rink is not None:
                cached = self._rink.get(cache_key)  # survives service restarts
            if cached is not None and cached.expires_at > self._clock.now() + 60:
                self.stats.cache_hits += 1
                return cached

            scope = StoragePath.parse(entity.storage_path)
            root_secret = self._root_secret_for(view, entity, scope)
            credential = self._issuer.mint(
                root_secret, scope, level, ttl_seconds=self.TOKEN_TTL_SECONDS
            )
            self._cache.put(cache_key, credential)
            if self._rink is not None:
                self._rink.put(cache_key, credential)
            self.stats.minted += 1
            if self._scope_segments is not None:
                depth = len(scope.key.split("/")) if scope.key else 0
                self._scope_segments.observe(depth)
            return credential

    # -- root authority resolution -----------------------------------------

    def _root_secret_for(
        self, view: MetastoreView, entity: Entity, scope: StoragePath
    ) -> str:
        """Managed assets use the catalog's own root credential; external
        assets use the storage credential of the covering external
        location."""
        if self._is_managed(entity):
            return self._managed_root_secret
        location = self._covering_location(view, scope)
        if location is None:
            # fall back to the catalog root (external asset registered
            # before locations existed — still catalog-governed storage)
            return self._managed_root_secret
        credential_name = location.spec.get("credential_name")
        credential_entity = view.entity_by_name(
            location.parent_id, "storage_credential", credential_name
        )
        if credential_entity is None:
            raise CredentialError(
                f"external location {location.name!r} references missing "
                f"storage credential {credential_name!r}"
            )
        return credential_entity.spec["root_secret"]

    @staticmethod
    def _is_managed(entity: Entity) -> bool:
        if entity.kind is SecurableKind.TABLE:
            return entity.spec.get("table_type") == "MANAGED"
        if entity.kind is SecurableKind.VOLUME:
            return entity.spec.get("volume_type") == "MANAGED"
        # models and model versions always use catalog-managed artifact dirs
        return True

    @staticmethod
    def _covering_location(
        view: MetastoreView, scope: StoragePath
    ) -> Optional[Entity]:
        for location in view.entities(SecurableKind.EXTERNAL_LOCATION):
            if location.storage_path:
                location_path = StoragePath.parse(location.storage_path)
                if location_path.contains(scope):
                    return location
        return None
