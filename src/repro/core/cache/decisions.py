"""Version-pinned hot-path caches for the life-of-a-query loop.

The paper's performance story (section 4.5, Figure 10(b)) is that the
catalog serves metadata at interactive latency because the hot path —
resolve names, authorize, vend — almost never recomputes anything: the
node cache absorbs the database, and this module absorbs the *CPU* work
layered on top of it. Two caches, both stamped with the metastore
version they were computed at:

* :class:`AuthDecisionCache` — authorization outcomes keyed by
  ``(principal, securable_id, operation)``. A cached decision is the
  exact :class:`~repro.core.auth.authorizer.AccessDecision` the
  authorizer would recompute at the same metastore version and
  principal-directory generation, so serving it changes nothing
  observable (audit records still carry the same reason strings).
* :class:`ResolutionCache` — fully-qualified-name resolution keyed by
  ``(kind, full_name)``. Only successful resolutions are cached; a
  ``NotFoundError`` always re-walks, so creations are visible
  immediately.

Entries are invalidated by version bump with *selective retention*,
driven by the persistence layer's existing change log (the same feed the
node cache's ``SELECTIVE`` reconcile mode uses):

* a grant/revoke invalidates only decisions whose identity set contains
  the grant's principal **and** whose securable chain contains the
  granted securable (the touched principal × subtree);
* an entity change (rename, delete, ownership transfer, spec update)
  invalidates decisions and resolutions whose chain contains the changed
  entity — chain membership is exactly "the changed entity is the asset
  itself or an ancestor", which is the name-prefix rule expressed in ids;
* policy or tag changes wipe all decisions (ABAC can reach anything in
  scope), but retain resolutions;
* ``commits`` / ``share_bindings`` changes invalidate nothing — they can
  never alter an authorization outcome or a name binding.

Visibility-class decisions (``read_metadata`` / ``visible``) additionally
drop on *any* entity or matching grant change, because grants anywhere in
an asset's subtree can make its containers browsable.

A bundle also memoizes the ancestor chain per entity at the pinned
version, so one batched ``QueryResolver.resolve`` call walks each chain
at most once. Correctness never depends on any of this: with the fast
path disabled the service recomputes everything and must produce
byte-identical results (``python -m repro.bench.hotpath`` proves it).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Optional

from repro.core.model.entity import Entity, SecurableKind
from repro.core.persistence.store import ChangeRecord, Tables

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.auth.authorizer import AccessDecision
    from repro.core.view import MetastoreView

#: Caches are bounded; crossing the cap clears the cache (the warm
#: working set refills in one pass, and wholesale clears keep the
#: invalidation state trivially correct).
_MAX_ENTRIES = 65_536


@dataclass
class HotPathStats:
    """Counters exported as ``uc_authz_cache_*`` / ``uc_resolution_cache_*``."""

    authz_hits: int = 0
    authz_misses: int = 0
    resolution_hits: int = 0
    resolution_misses: int = 0
    invalidations: int = 0
    syncs: int = 0

    @property
    def authz_hit_rate(self) -> float:
        total = self.authz_hits + self.authz_misses
        return self.authz_hits / total if total else 0.0

    @property
    def resolution_hit_rate(self) -> float:
        total = self.resolution_hits + self.resolution_misses
        return self.resolution_hits / total if total else 0.0


class _DecisionEntry:
    """One cached decision plus the facts needed to invalidate it."""

    __slots__ = ("value", "identities", "chain_ids", "visibility")

    def __init__(
        self,
        value: "AccessDecision",
        identities: frozenset[str],
        chain_ids: frozenset[str],
        visibility: bool,
    ):
        self.value = value
        self.identities = identities
        self.chain_ids = chain_ids
        self.visibility = visibility


class AuthDecisionCache:
    """Authorization outcomes keyed ``(principal, securable_id, operation)``.

    The principal component may be a principal name (``authorize``) or an
    expanded identity frozenset (``has_privilege`` / ``visible``); either
    way the entry records the identity set the decision was computed
    with, which is what grant invalidation matches against.
    """

    def __init__(self):
        self._entries: dict[tuple[Hashable, str, str], _DecisionEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[Hashable, str, str]) -> Optional["AccessDecision"]:
        entry = self._entries.get(key)
        return entry.value if entry is not None else None

    def put(
        self,
        key: tuple[Hashable, str, str],
        value: "AccessDecision",
        identities: frozenset[str],
        chain_ids: frozenset[str],
        visibility: bool,
    ) -> None:
        if len(self._entries) >= _MAX_ENTRIES:
            self._entries.clear()
        self._entries[key] = _DecisionEntry(value, identities, chain_ids, visibility)

    def clear(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def invalidate(
        self,
        entity_ids: frozenset[str],
        grant_changes: list[tuple[str, str]],
    ) -> int:
        """Selective retention: drop only entries the changes can affect."""
        if not entity_ids and not grant_changes:
            return 0
        dead = []
        for key, entry in self._entries.items():
            securable_id = key[1]
            if entity_ids and (
                securable_id in entity_ids
                or not entity_ids.isdisjoint(entry.chain_ids)
                or entry.visibility
            ):
                # visibility can hinge on grants held anywhere in the
                # subtree, whose members we do not track — drop coarsely.
                dead.append(key)
                continue
            for grant_securable, grant_principal in grant_changes:
                if grant_principal in entry.identities and (
                    entry.visibility or grant_securable in entry.chain_ids
                ):
                    dead.append(key)
                    break
        for key in dead:
            del self._entries[key]
        return len(dead)


class _ResolutionEntry:
    __slots__ = ("entity", "chain_ids")

    def __init__(self, entity: Entity, chain_ids: frozenset[str]):
        self.entity = entity
        self.chain_ids = chain_ids


class ResolutionCache:
    """Name → entity bindings keyed ``(kind, full_name)``.

    ``chain_ids`` holds every entity id the resolving walk visited (the
    containers plus the asset itself), so renaming or deleting any
    segment of ``a.b.c`` drops every cached name under it — the
    name-prefix invalidation rule, expressed in ids.
    """

    def __init__(self):
        self._entries: dict[tuple[SecurableKind, str], _ResolutionEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, kind: SecurableKind, full_name: str) -> Optional[Entity]:
        entry = self._entries.get((kind, full_name))
        return entry.entity if entry is not None else None

    def put(self, kind: SecurableKind, full_name: str, entity: Entity,
            chain_ids: frozenset[str]) -> None:
        if len(self._entries) >= _MAX_ENTRIES:
            self._entries.clear()
        self._entries[(kind, full_name)] = _ResolutionEntry(entity, chain_ids)

    def clear(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def invalidate(self, entity_ids: frozenset[str]) -> int:
        if not entity_ids:
            return 0
        dead = [
            key for key, entry in self._entries.items()
            if not entity_ids.isdisjoint(entry.chain_ids)
        ]
        for key in dead:
            del self._entries[key]
        return len(dead)


class HotPathCaches:
    """The per-metastore fast-path bundle: decisions, resolutions, chains.

    ``sync`` pins the bundle to a view's metastore version before any
    lookup: equal versions serve directly, a newer view replays the
    change log through selective invalidation, an *older* (pinned
    snapshot) view opts out of the cache entirely. Decisions additionally
    depend on the principal directory, whose ``generation`` bump clears
    them (group membership changes are not metastore writes).
    """

    def __init__(
        self,
        metastore_id: str,
        version: int,
        changes_since: Callable[[int], list[ChangeRecord]],
        directory_generation: Callable[[], int],
    ):
        self.metastore_id = metastore_id
        self.version = version
        self._changes_since = changes_since
        self._directory_generation = directory_generation
        self._generation = directory_generation()
        self.decisions = AuthDecisionCache()
        self.resolutions = ResolutionCache()
        self._chains: dict[str, tuple[Entity, ...]] = {}
        self.stats = HotPathStats()
        self._lock = threading.RLock()

    # -- version pinning ---------------------------------------------------

    def sync(self, view_version: int) -> bool:
        """Catch up to ``view_version``; False means "do not use me"."""
        with self._lock:
            generation = self._directory_generation()
            if generation != self._generation:
                self.stats.invalidations += self.decisions.clear()
                self._generation = generation
            if view_version == self.version:
                return True
            if view_version < self.version:
                return False  # a pinned older snapshot; recompute instead
            self.stats.syncs += 1
            self._apply_changes(self._changes_since(self.version))
            self.version = view_version
            return True

    def note_commit(self, ops, new_version: int) -> None:
        """Fold a locally-committed write batch in without re-reading the
        change log (the write-through analogue of the node cache)."""
        with self._lock:
            if new_version != self.version + 1:
                return  # fell behind; the next sync() replays the log
            self._apply_changes(
                [
                    ChangeRecord(
                        version=new_version, table=op.table, key=op.key,
                        deleted=op.value is None,
                    )
                    for op in ops
                ]
            )
            self.version = new_version

    def _apply_changes(self, changes: list[ChangeRecord]) -> None:
        entity_ids: set[str] = set()
        grant_changes: list[tuple[str, str]] = []
        policies_changed = False
        for change in changes:
            if change.table == Tables.ENTITIES:
                entity_ids.add(change.key)
            elif change.table == Tables.GRANTS:
                # key layout: {securable_id}/{principal}/{privilege};
                # ids and privilege values never contain "/".
                parts = change.key.split("/")
                grant_changes.append((parts[0], "/".join(parts[1:-1])))
            elif change.table in (Tables.POLICIES, Tables.TAGS):
                policies_changed = True
            # COMMITS and SHARES rows cannot affect decisions/resolution.
        frozen_ids = frozenset(entity_ids)
        if policies_changed:
            self.stats.invalidations += self.decisions.clear()
        else:
            self.stats.invalidations += self.decisions.invalidate(
                frozen_ids, grant_changes
            )
        self.stats.invalidations += self.resolutions.invalidate(frozen_ids)
        if entity_ids:
            dead_chains = [
                key for key, chain in self._chains.items()
                if any(link.id in entity_ids for link in chain)
            ]
            for key in dead_chains:
                del self._chains[key]

    # -- decision cache front ----------------------------------------------

    def get_decision(
        self, key: tuple[Hashable, str, str]
    ) -> Optional["AccessDecision"]:
        with self._lock:
            value = self.decisions.get(key)
            if value is not None:
                self.stats.authz_hits += 1
            else:
                self.stats.authz_misses += 1
        return value

    def put_decision(
        self,
        key: tuple[Hashable, str, str],
        value: "AccessDecision",
        identities: frozenset[str],
        chain_ids: frozenset[str],
        visibility: bool = False,
    ) -> None:
        with self._lock:
            self.decisions.put(key, value, identities, chain_ids, visibility)

    # -- resolution cache front --------------------------------------------

    def get_resolution(self, kind: SecurableKind, full_name: str) -> Optional[Entity]:
        with self._lock:
            entity = self.resolutions.get(kind, full_name)
            if entity is not None:
                self.stats.resolution_hits += 1
            else:
                self.stats.resolution_misses += 1
        return entity

    def put_resolution(self, kind: SecurableKind, full_name: str, entity: Entity,
                       chain_ids: frozenset[str]) -> None:
        with self._lock:
            self.resolutions.put(kind, full_name, entity, chain_ids)

    # -- ancestor-chain memo -----------------------------------------------

    def chain(self, view: "MetastoreView", entity: Entity) -> tuple[Entity, ...]:
        """Entity followed by its ancestors, walked at most once per
        version (the memo is dropped when any chain member changes)."""
        with self._lock:
            memo = self._chains.get(entity.id)
            if memo is not None:
                return memo
        chain = (entity, *view.ancestors(entity))
        with self._lock:
            if len(self._chains) >= _MAX_ENTRIES:
                self._chains.clear()
            self._chains[entity.id] = chain
        return chain
