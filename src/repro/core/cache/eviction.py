"""Eviction policies for unpopular cached assets (paper section 4.5).

"To limit memory consumption of unpopular assets, we use standard
eviction algorithms, such as LRU and LFU, to evict an unpopular cached
asset and all its versions."

Policies track accesses and, when asked, nominate victims. They are
deliberately decoupled from the cache node so the ablation benchmark can
swap them.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import OrderedDict
from typing import Hashable, Optional


class EvictionPolicy(abc.ABC):
    """Tracks key popularity and nominates eviction victims."""

    @abc.abstractmethod
    def record_access(self, key: Hashable) -> None:
        """Note that ``key`` was read or written."""

    @abc.abstractmethod
    def forget(self, key: Hashable) -> None:
        """Remove a key from tracking (it was evicted or deleted)."""

    @abc.abstractmethod
    def victim(self) -> Optional[Hashable]:
        """The key to evict next, or None if nothing is tracked."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """How many keys are tracked."""


class LruPolicy(EvictionPolicy):
    """Least-recently-used."""

    def __init__(self):
        self._order: OrderedDict[Hashable, None] = OrderedDict()

    def record_access(self, key: Hashable) -> None:
        self._order.pop(key, None)
        self._order[key] = None

    def forget(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        if not self._order:
            return None
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class LfuPolicy(EvictionPolicy):
    """Least-frequently-used, with insertion order breaking ties.

    Uses a lazy heap: stale heap entries are skipped at pop time.
    """

    def __init__(self):
        self._counts: dict[Hashable, int] = {}
        self._heap: list[tuple[int, int, Hashable]] = []
        self._tiebreak = itertools.count()

    def record_access(self, key: Hashable) -> None:
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        heapq.heappush(self._heap, (count, next(self._tiebreak), key))

    def forget(self, key: Hashable) -> None:
        self._counts.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        while self._heap:
            count, _, key = self._heap[0]
            current = self._counts.get(key)
            if current is None or current != count:
                heapq.heappop(self._heap)  # stale entry
                continue
            return key
        return None

    def __len__(self) -> int:
        return len(self._counts)
