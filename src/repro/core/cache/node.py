"""The write-through, multi-version metadata cache (paper section 4.5).

One :class:`MetastoreCacheNode` *owns* one metastore (assignments come
from the sharding service, section 5; ownership is best-effort and not
exclusive). The node maintains the invariant that a cached asset's
versions are the latest as of the metastore version known to the node:

* **Reads** check the DB's metastore version (a cheap point read); if the
  node has fallen behind, it *reconciles* — either evicting everything or
  selectively invalidating the keys named by the change log.
* **Writes** commit to the DB with a compare-and-swap on the metastore
  version. Success write-throughs the new row versions into the cache; a
  failed CAS means another node owns (or wrote to) the metastore, and the
  node reconciles before the caller retries.
* The cache is multi-versioned so in-flight snapshot reads pinned at an
  older version are not blocked by concurrent writes; superseded versions
  are pruned lazily after the API-request timeout has passed, since no
  in-flight request can still need them.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.clock import Clock, WallClock
from repro.cloudstore.object_store import StoragePath
from repro.core.auth.privileges import PrivilegeGrant
from repro.core.cache.eviction import EvictionPolicy, LruPolicy
from repro.core.model.entity import Entity, SecurableKind
from repro.core.model.registry import AssetTypeRegistry
from repro.core.paths import PATH_GOVERNED_KINDS, PathTrie
from repro.core.persistence.branching import is_branch_table
from repro.core.persistence.store import MetadataStore, Tables, WriteOp
from repro.core.view import MetastoreView
from repro.errors import ConcurrentModificationError, PathConflictError

#: Tables the node caches and keeps completeness flags for.
_CACHED_TABLES = (
    Tables.ENTITIES,
    Tables.GRANTS,
    Tables.TAGS,
    Tables.POLICIES,
    Tables.COMMITS,
    Tables.SHARES,
)


class ReconcileMode(enum.Enum):
    """How a stale node catches up with the DB (paper section 4.5).

    ``EVICT_ALL`` is the naive strategy; ``SELECTIVE`` consults the
    change log to invalidate only modified entries. The ablation benchmark
    compares the two.
    """

    EVICT_ALL = "EVICT_ALL"
    SELECTIVE = "SELECTIVE"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    version_checks: int = 0
    reconciles: int = 0
    selective_invalidations: int = 0
    evictions: int = 0
    version_prunes: int = 0
    commit_conflicts: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _VersionedRow:
    """Versions of one row: ascending ``(version, value, inserted_at)``."""

    versions: list[tuple[int, Optional[dict], float]] = field(default_factory=list)

    def visible(self, at: int) -> Optional[dict]:
        for version, value, _ in reversed(self.versions):
            if version <= at:
                return value
        return None

    def latest(self) -> tuple[int, Optional[dict]]:
        version, value, _ = self.versions[-1]
        return version, value

    def append(self, version: int, value: Optional[dict], now: float) -> None:
        if self.versions and self.versions[-1][0] == version:
            self.versions[-1] = (version, value, now)
        else:
            self.versions.append((version, value, now))

    def prune_superseded(self, cutoff: float) -> int:
        """Drop versions superseded before ``cutoff``; keep the newest.

        A version can be dropped once its *successor* has been cached for
        longer than the request timeout — no in-flight request can still
        be pinned before the successor.
        """
        if len(self.versions) <= 1:
            return 0
        keep_from = 0
        for i in range(1, len(self.versions)):
            if self.versions[i][2] <= cutoff:
                keep_from = i
        if keep_from == 0:
            return 0
        self.versions = self.versions[keep_from:]
        return keep_from

    def version_count(self) -> int:
        return len(self.versions)


class MetastoreCacheNode:
    """Write-through multi-version cache for one metastore."""

    def __init__(
        self,
        store: MetadataStore,
        metastore_id: str,
        registry: AssetTypeRegistry,
        clock: Optional[Clock] = None,
        reconcile_mode: ReconcileMode = ReconcileMode.SELECTIVE,
        eviction_policy: Optional[EvictionPolicy] = None,
        max_cached_entities: Optional[int] = None,
        request_timeout_seconds: float = 60.0,
    ):
        self._store = store
        self.metastore_id = metastore_id
        self._registry = registry
        self._clock = clock or WallClock()
        self.reconcile_mode = reconcile_mode
        # explicit None check: an empty policy is falsy (it has __len__)
        self._policy = eviction_policy if eviction_policy is not None else LruPolicy()
        self._max_entities = max_cached_entities
        self._timeout = request_timeout_seconds
        self._lock = threading.RLock()

        self.known_version = store.current_version(metastore_id)
        self._rows: dict[str, dict[str, _VersionedRow]] = {
            table: {} for table in _CACHED_TABLES
        }
        self._complete: dict[str, bool] = {table: False for table in _CACHED_TABLES}

        # derived indexes over the *latest* versions
        self._name_index: dict[tuple, str] = {}
        self._children: dict[str, set[str]] = {}
        self._trie = PathTrie()
        self._grants_index: dict[str, dict[str, PrivilegeGrant]] = {}

        self.stats = CacheStats()

    # -- public API ------------------------------------------------------------

    def view(self, check_version: bool = True) -> "CachedView":
        """A snapshot-consistent read view at the node's known version.

        ``check_version`` performs the paper's per-read freshness check
        against the DB's metastore version (one cheap point read).
        """
        with self._lock:
            if check_version:
                self.stats.version_checks += 1
                current = self._store.current_version(self.metastore_id)
                if current != self.known_version:
                    self._reconcile(current)
            return CachedView(self, self.known_version)

    def commit(self, ops: list[WriteOp]) -> int:
        """Serializable write: CAS on the metastore version, then
        write-through the new row versions into the cache."""
        with self._lock:
            try:
                new_version = self._store.commit(
                    self.metastore_id, self.known_version, ops
                )
            except ConcurrentModificationError:
                self.stats.commit_conflicts += 1
                self._reconcile(self._store.current_version(self.metastore_id))
                raise
            now = self._clock.now()
            for op in ops:
                self._apply(op.table, op.key, op.value, new_version, now)
            self.known_version = new_version
            return new_version

    def warm(self) -> None:
        """Load the metastore's full working set into memory."""
        with self._lock:
            snapshot = self._store.snapshot(self.metastore_id)
            now = self._clock.now()
            for table in _CACHED_TABLES:
                # set the flag first: evictions fired while loading must be
                # able to clear it, or evicted keys would read as absent
                self._complete[table] = True
                for key, value in snapshot.scan(table):
                    self._apply(table, key, value, snapshot.version, now)
            self.known_version = snapshot.version

    def reconcile(self) -> None:
        """Force a catch-up with the DB (normally triggered automatically)."""
        with self._lock:
            self._reconcile(self._store.current_version(self.metastore_id))

    # -- reconciliation ----------------------------------------------------------

    def _reconcile(self, target_version: int) -> None:
        self.stats.reconciles += 1
        if self.reconcile_mode is ReconcileMode.EVICT_ALL:
            self._evict_all()
            self.known_version = target_version
            return
        changes = self._store.changes_since(self.metastore_id, self.known_version)
        snapshot = self._store.snapshot(self.metastore_id)
        # branch overlay / ref rows are invisible on the trunk: skip them
        # so branch churn never populates (or evicts from) the node cache
        changed_keys = {
            (c.table, c.key) for c in changes if not is_branch_table(c.table)
        }
        # one batched read per touched table instead of one get per key
        keys_by_table: dict[str, list[str]] = {}
        for table, key in sorted(changed_keys):
            keys_by_table.setdefault(table, []).append(key)
        fetched = {
            table: snapshot.multi_get(table, keys)
            for table, keys in keys_by_table.items()
        }
        now = self._clock.now()
        for table, key in sorted(changed_keys):
            value = fetched[table].get(key)
            try:
                self._apply(table, key, value, snapshot.version, now)
            except PathConflictError:
                # transient overlap from out-of-order index maintenance;
                # rebuild the trie from the reconciled state
                self._rebuild_trie()
            self.stats.selective_invalidations += 1
        self.known_version = snapshot.version

    def _evict_all(self) -> None:
        for table in _CACHED_TABLES:
            self._rows[table].clear()
            self._complete[table] = False
        self._name_index.clear()
        self._children.clear()
        self._trie = PathTrie()
        self._grants_index.clear()
        self._policy = type(self._policy)()

    def _rebuild_trie(self) -> None:
        self._trie = PathTrie()
        for key, row in self._rows[Tables.ENTITIES].items():
            _, value = row.latest() if row.versions else (0, None)
            if value is None:
                continue
            entity = Entity.from_dict(value)
            if (
                entity.is_active
                and entity.storage_path
                and entity.kind in PATH_GOVERNED_KINDS
            ):
                self._trie.register(StoragePath.parse(entity.storage_path), entity.id)

    # -- row application and derived-index maintenance ------------------------------

    def _apply(
        self, table: str, key: str, value: Optional[dict], version: int, now: float
    ) -> None:
        if table not in self._rows:
            self._rows[table] = {}
            self._complete[table] = False
        rows = self._rows[table]
        row = rows.get(key)
        previous = None
        if row is not None and row.versions:
            _, previous = row.latest()
        if row is None:
            row = rows[key] = _VersionedRow()
        row.append(version, value, now)

        if table == Tables.ENTITIES:
            self._reindex_entity(previous, value)
            self._policy.record_access(key)
            self._maybe_evict()
        elif table == Tables.GRANTS:
            self._reindex_grant(key, previous, value)

        if value is None and row.version_count() == 1:
            # a sole tombstone carries no information; drop it
            del rows[key]
            if table == Tables.ENTITIES:
                self._policy.forget(key)

    def _reindex_entity(self, previous: Optional[dict], value: Optional[dict]) -> None:
        if previous is not None:
            old = Entity.from_dict(previous)
            if old.is_active:
                self._name_index.pop(self._name_key(old), None)
                children = self._children.get(old.parent_id or "")
                if children is not None:
                    children.discard(old.id)
                if old.storage_path and self._trie.path_of(old.id) is not None:
                    self._trie.unregister(old.id)
        if value is not None:
            new = Entity.from_dict(value)
            if new.is_active:
                self._name_index[self._name_key(new)] = new.id
                self._children.setdefault(new.parent_id or "", set()).add(new.id)
                if new.storage_path and new.kind in PATH_GOVERNED_KINDS:
                    self._trie.register(StoragePath.parse(new.storage_path), new.id)

    def _name_key(self, entity: Entity) -> tuple:
        manifest = self._registry.maybe_get(entity.kind)
        group = manifest.namespace_group if manifest else entity.kind.value
        return (entity.parent_id, group, entity.name)

    def _reindex_grant(
        self, key: str, previous: Optional[dict], value: Optional[dict]
    ) -> None:
        if previous is not None:
            securable_id = previous["securable_id"]
            grants = self._grants_index.get(securable_id)
            if grants is not None:
                grants.pop(key, None)
                if not grants:
                    del self._grants_index[securable_id]
        if value is not None:
            grant = PrivilegeGrant.from_dict(value)
            self._grants_index.setdefault(grant.securable_id, {})[key] = grant

    # -- eviction -----------------------------------------------------------------

    def _maybe_evict(self) -> None:
        if self._max_entities is None:
            return
        rows = self._rows[Tables.ENTITIES]
        while len(rows) > self._max_entities:
            victim = self._policy.victim()
            if victim is None or victim not in rows:
                if victim is not None:
                    self._policy.forget(victim)
                    continue
                break
            row = rows.pop(victim)
            self._policy.forget(victim)
            _, value = row.latest() if row.versions else (0, None)
            self._reindex_entity(value, None)
            self._complete[Tables.ENTITIES] = False
            self.stats.evictions += 1

    # -- read internals (used by CachedView) -----------------------------------------

    def _get_row(self, table: str, key: str, at: int) -> Optional[dict]:
        with self._lock:
            rows = self._rows.get(table, {})
            row = rows.get(key)
            if row is not None and row.versions:
                cutoff = self._clock.now() - self._timeout
                self.stats.version_prunes += row.prune_superseded(cutoff)
                value = row.visible(at)
                self.stats.hits += 1
                if table == Tables.ENTITIES:
                    self._policy.record_access(key)
                return value
            if self._complete.get(table, False):
                self.stats.hits += 1
                return None  # authoritative absence
            # read-through on miss
            self.stats.misses += 1
            snapshot = self._store.snapshot(self.metastore_id, at_version=self.known_version)
            value = snapshot.get(table, key)
            if value is not None:
                self._apply(table, key, value, self.known_version, self._clock.now())
            return value

    def _prefetch_rows(self, table: str, keys: list[str]) -> None:
        """Batch read-through: pull the named keys into the cache with one
        ``multi_get`` so subsequent ``_get_row`` calls all hit."""
        with self._lock:
            if self._complete.get(table, False):
                return
            rows = self._rows.get(table, {})
            missing = [key for key in keys if key not in rows]
            if not missing:
                return
            self.stats.misses += 1
            snapshot = self._store.snapshot(
                self.metastore_id, at_version=self.known_version
            )
            fetched = snapshot.multi_get(table, missing)
            now = self._clock.now()
            for key, value in fetched.items():
                self._apply(table, key, value, self.known_version, now)

    def _ensure_complete(self, table: str) -> None:
        with self._lock:
            if self._complete.get(table, False):
                return
            self.stats.misses += 1
            snapshot = self._store.snapshot(
                self.metastore_id, at_version=self.known_version
            )
            now = self._clock.now()
            for key, value in snapshot.scan(table):
                self._apply(table, key, value, self.known_version, now)
            self._complete[table] = True

    def _scan_latest(self, table: str, at: int) -> list[tuple[str, dict]]:
        self._ensure_complete(table)
        with self._lock:
            out = []
            for key, row in self._rows.get(table, {}).items():
                value = row.visible(at)
                if value is not None:
                    out.append((key, value))
            return out

    # locked reads of the derived indexes — CachedView must never walk
    # an index while a committing thread is re-indexing it

    def _name_lookup(self, key: tuple) -> Optional[str]:
        with self._lock:
            return self._name_index.get(key)

    def _children_of(self, parent_id: str) -> set[str]:
        with self._lock:
            return set(self._children.get(parent_id, ()))

    def _trie_resolve(self, path: StoragePath) -> Optional[str]:
        with self._lock:
            return self._trie.resolve(path)

    def _trie_overlapping(self, path: StoragePath) -> list[str]:
        with self._lock:
            return self._trie.find_overlapping(path)

    def _grants_for(self, securable_id: str) -> list[PrivilegeGrant]:
        with self._lock:
            return list(self._grants_index.get(securable_id, {}).values())

    def cached_version_count(self) -> int:
        """Total cached row versions across all tables (pruning tests)."""
        with self._lock:
            return sum(
                row.version_count()
                for rows in self._rows.values()
                for row in rows.values()
            )


class CachedView(MetastoreView):
    """A read view over a cache node, pinned at one metastore version."""

    def __init__(self, node: MetastoreCacheNode, version: int):
        self._node = node
        self._version = version

    @property
    def version(self) -> int:
        return self._version

    def entity_by_id(self, entity_id: str) -> Optional[Entity]:
        value = self._node._get_row(Tables.ENTITIES, entity_id, self._version)
        if value is None:
            return None
        entity = Entity.from_dict(value)
        return entity if entity.is_active else None

    def entity_by_name(
        self, parent_id: Optional[str], namespace_group: str, name: str
    ) -> Optional[Entity]:
        self._node._ensure_complete(Tables.ENTITIES)
        entity_id = self._node._name_lookup((parent_id, namespace_group, name))
        if entity_id is not None:
            entity = self.entity_by_id(entity_id)
            if (
                entity is not None
                and entity.name == name
                and entity.parent_id == parent_id
            ):
                return entity
        # the latest-version index missed (pinned older version); fall back
        if entity_id is None and self._version == self._node.known_version:
            return None
        for key, value in self._node._scan_latest(Tables.ENTITIES, self._version):
            entity = Entity.from_dict(value)
            if (
                entity.is_active
                and entity.parent_id == parent_id
                and entity.name == name
                and self._group_of(entity) == namespace_group
            ):
                return entity
        return None

    def _group_of(self, entity: Entity) -> str:
        manifest = self._node._registry.maybe_get(entity.kind)
        return manifest.namespace_group if manifest else entity.kind.value

    def children(
        self, parent_id: str, kind: Optional[SecurableKind] = None
    ) -> list[Entity]:
        self._node._ensure_complete(Tables.ENTITIES)
        child_ids = self._node._children_of(parent_id)
        out = []
        for child_id in child_ids:
            entity = self.entity_by_id(child_id)
            if entity is not None and entity.parent_id == parent_id:
                if kind is None or entity.kind is kind:
                    out.append(entity)
        return sorted(out, key=lambda e: e.name)

    def entities(self, kind: Optional[SecurableKind] = None) -> Iterator[Entity]:
        for key, value in self._node._scan_latest(Tables.ENTITIES, self._version):
            entity = Entity.from_dict(value)
            if entity.is_active and (kind is None or entity.kind is kind):
                yield entity

    def resolve_path(self, path: StoragePath) -> Optional[Entity]:
        self._node._ensure_complete(Tables.ENTITIES)
        asset_id = self._node._trie_resolve(path)
        return self.entity_by_id(asset_id) if asset_id else None

    def overlapping_assets(self, path: StoragePath) -> list[str]:
        self._node._ensure_complete(Tables.ENTITIES)
        return self._node._trie_overlapping(path)

    def grants_on(self, securable_id: str) -> list[PrivilegeGrant]:
        self._node._ensure_complete(Tables.GRANTS)
        return self._node._grants_for(securable_id)

    def prefetch_rows(self, table: str, keys: list[str]) -> None:
        self._node._prefetch_rows(table, keys)

    def row(self, table: str, key: str) -> Optional[dict]:
        return self._node._get_row(table, key, self._version)

    def rows(self, table: str) -> Iterator[tuple[str, dict]]:
        return iter(self._node._scan_latest(table, self._version))
