"""TTL caches for immutable / weakly-consistent metadata.

"For immutable metadata or metadata where weak consistency is acceptable
(e.g., cloud credentials or user/group information), UC uses simple
TTL-based caches to bound staleness." (section 1)

The same class is used at the service (credential cache) and pushed to
clients (engines caching vended credentials for their validity period).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Optional, TypeVar

from repro.clock import Clock, WallClock
from repro.errors import UnityCatalogError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class _TtlEntry(Generic[V]):
    value: V
    expires_at: float


class TtlCache(Generic[K, V]):
    """A thread-safe cache whose entries expire after a fixed TTL.

    ``max_entries`` bounds memory: when full, the entry expiring soonest
    is dropped first (expired entries are reaped opportunistically).

    ``stale_grace`` enables serve-stale-on-backend-error: expired entries
    are kept for that many extra seconds, and :meth:`get_or_load` falls
    back to them when the loader raises a *retryable* error — so metadata
    reads survive a flapping backend at the cost of bounded extra
    staleness. The default (0) preserves strict TTL semantics.
    """

    def __init__(
        self,
        ttl_seconds: float,
        clock: Optional[Clock] = None,
        max_entries: int = 100_000,
        stale_grace: float = 0.0,
    ):
        if ttl_seconds <= 0:
            raise ValueError("ttl must be positive")
        if stale_grace < 0:
            raise ValueError("stale_grace cannot be negative")
        self._ttl = ttl_seconds
        self._clock = clock or WallClock()
        self._max_entries = max_entries
        self._stale_grace = stale_grace
        self._entries: dict[K, _TtlEntry[V]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.stale_serves = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: K) -> Optional[V]:
        with self._lock:
            entry = self._entries.get(key)
            now = self._clock.now()
            if entry is None or entry.expires_at <= now:
                # expired entries are kept through the stale-grace window
                # so get_or_load can fall back to them on backend errors
                if entry is not None and entry.expires_at + self._stale_grace <= now:
                    del self._entries[key]
                self.misses += 1
                return None
            self.hits += 1
            return entry.value

    def _stale_value(self, key: K) -> Optional[V]:
        """An expired-but-within-grace value, or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.expires_at + self._stale_grace <= self._clock.now():
                return None
            return entry.value

    def put(self, key: K, value: V, ttl_seconds: Optional[float] = None) -> None:
        """Insert; a per-entry TTL (e.g. a credential's remaining validity)
        overrides the cache default."""
        ttl = self._ttl if ttl_seconds is None else ttl_seconds
        with self._lock:
            if len(self._entries) >= self._max_entries and key not in self._entries:
                self._reap()
                if len(self._entries) >= self._max_entries:
                    soonest = min(self._entries, key=lambda k: self._entries[k].expires_at)
                    del self._entries[soonest]
            self._entries[key] = _TtlEntry(value, self._clock.now() + ttl)

    def get_or_load(
        self, key: K, loader: Callable[[], V], ttl_seconds: Optional[float] = None
    ) -> V:
        """Return the cached value or load, cache, and return a fresh one.

        With ``stale_grace`` configured, a loader that fails with a
        *retryable* :class:`~repro.errors.UnityCatalogError` (throttling,
        storage unavailability, an open circuit) is papered over by the
        most recent expired value, if one is still within the grace
        window. Non-retryable loader errors always propagate.
        """
        value = self.get(key)
        if value is not None:
            return value
        try:
            value = loader()
        except UnityCatalogError as exc:
            if not exc.retryable or self._stale_grace <= 0:
                raise
            stale = self._stale_value(key)
            if stale is None:
                raise
            with self._lock:
                self.stale_serves += 1
            return stale
        self.put(key, value, ttl_seconds)
        return value

    def invalidate(self, key: K) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def _reap(self) -> None:
        now = self._clock.now()
        expired = [
            k for k, e in self._entries.items()
            if e.expires_at + self._stale_grace <= now
        ]
        for key in expired:
            del self._entries[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
