"""Caching (paper section 4.5).

* :class:`~repro.core.cache.ttl.TtlCache` — bounded-staleness cache for
  immutable or weakly-consistent metadata (temporary credentials,
  user/group info). Used both inside the service and pushed to clients.
* :class:`~repro.core.cache.node.MetastoreCacheNode` — the write-through,
  multi-version cache for mutable metadata, keyed by metastore version,
  guaranteeing snapshot reads and serializable writes.
* :mod:`~repro.core.cache.eviction` — LRU/LFU eviction for unpopular
  assets plus timeout-based pruning of superseded versions.
"""

from repro.core.cache.ttl import TtlCache
from repro.core.cache.eviction import EvictionPolicy, LfuPolicy, LruPolicy
from repro.core.cache.node import CacheStats, MetastoreCacheNode, ReconcileMode

__all__ = [
    "CacheStats",
    "EvictionPolicy",
    "LfuPolicy",
    "LruPolicy",
    "MetastoreCacheNode",
    "ReconcileMode",
    "TtlCache",
]
