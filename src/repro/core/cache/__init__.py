"""Caching (paper section 4.5).

* :class:`~repro.core.cache.ttl.TtlCache` — bounded-staleness cache for
  immutable or weakly-consistent metadata (temporary credentials,
  user/group info). Used both inside the service and pushed to clients.
* :class:`~repro.core.cache.node.MetastoreCacheNode` — the write-through,
  multi-version cache for mutable metadata, keyed by metastore version,
  guaranteeing snapshot reads and serializable writes.
* :mod:`~repro.core.cache.eviction` — LRU/LFU eviction for unpopular
  assets plus timeout-based pruning of superseded versions.
* :mod:`~repro.core.cache.decisions` — the version-pinned fast path for
  the life-of-a-query hot loop: authorization-decision and
  name-resolution caches invalidated selectively from the change log.
"""

from repro.core.cache.ttl import TtlCache
from repro.core.cache.decisions import (
    AuthDecisionCache,
    HotPathCaches,
    HotPathStats,
    ResolutionCache,
)
from repro.core.cache.eviction import EvictionPolicy, LfuPolicy, LruPolicy
from repro.core.cache.node import CacheStats, MetastoreCacheNode, ReconcileMode

__all__ = [
    "AuthDecisionCache",
    "CacheStats",
    "EvictionPolicy",
    "HotPathCaches",
    "HotPathStats",
    "LfuPolicy",
    "LruPolicy",
    "MetastoreCacheNode",
    "ReconcileMode",
    "ResolutionCache",
    "TtlCache",
]
