"""Delta UniForm (Universal Format) — paper section 1.

UniForm lets Iceberg (and Hudi) clients read Delta tables by translating
the Delta transaction log into the other format's metadata, asynchronously
and without rewriting data files. This module produces Iceberg-style
metadata (table metadata + a manifest of data files) from a Delta log
snapshot and writes it under ``metadata/`` in the table directory, where
an Iceberg client expects it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.deltalog.log import DeltaLog, LogSnapshot

_METADATA_DIR = "metadata"


def delta_snapshot_to_iceberg_metadata(
    snapshot: LogSnapshot, table_root: str
) -> dict:
    """Translate one Delta snapshot into Iceberg-style table metadata.

    The translation is metadata-only: data files are referenced in place.
    """
    metadata = snapshot.metadata
    schema_fields = [
        {
            "id": i + 1,
            "name": column["name"],
            "type": column.get("type", "string").lower(),
            "required": False,
        }
        for i, column in enumerate(metadata.schema if metadata else [])
    ]
    manifest_entries = [
        {
            "file_path": f"{table_root}/{add.path}",
            "file_format": "JSON_COLUMNAR",
            "record_count": add.stats.num_records,
            "file_size_in_bytes": add.size,
            "lower_bounds": dict(add.stats.min_values),
            "upper_bounds": dict(add.stats.max_values),
        }
        for add in snapshot.active_files.values()
    ]
    return {
        "format-version": 2,
        "table-uuid": metadata.table_id if metadata else "",
        "location": table_root,
        "current-snapshot-id": snapshot.version,
        "schemas": [{"schema-id": 0, "fields": schema_fields}],
        "current-schema-id": 0,
        "snapshots": [
            {
                "snapshot-id": snapshot.version,
                "manifest": manifest_entries,
                "summary": {
                    "total-records": snapshot.total_rows,
                    "total-data-files": snapshot.num_files,
                },
            }
        ],
    }


@dataclass
class UniformConverter:
    """Keeps a Delta table's Iceberg metadata in sync with its log."""

    client: StorageClient
    table_root: StoragePath

    def _metadata_path(self, version: int) -> StoragePath:
        return self.table_root.child(
            _METADATA_DIR, f"v{version}.metadata.json"
        )

    def _pointer_path(self) -> StoragePath:
        return self.table_root.child(_METADATA_DIR, "version-hint.text")

    def convert_latest(self) -> int:
        """Translate the current Delta snapshot; returns the version.

        Idempotent: re-converting the same version overwrites identical
        metadata. Production UniForm runs this asynchronously on commit.
        """
        log = DeltaLog(self.client, self.table_root)
        snapshot = log.snapshot()
        metadata = delta_snapshot_to_iceberg_metadata(
            snapshot, self.table_root.url()
        )
        self.client.put(
            self._metadata_path(snapshot.version),
            json.dumps(metadata).encode(),
        )
        self.client.put(self._pointer_path(), str(snapshot.version).encode())
        return snapshot.version

    def current_metadata(self) -> Optional[dict]:
        """Read the latest translated metadata (what an Iceberg client sees)."""
        if not self.client.exists(self._pointer_path()):
            return None
        version = int(self.client.get(self._pointer_path()).decode())
        blob = self.client.get(self._metadata_path(version))
        return json.loads(blob)


class IcebergReader:
    """A client that understands *only* Iceberg metadata.

    It never touches ``_delta_log`` — proving that UniForm translation is
    sufficient for a foreign-format reader to consume a Delta table.
    """

    def __init__(self, object_store, sts, credential):
        self._client = StorageClient(object_store, sts, credential)

    def read_metadata(self, metadata: dict) -> list[dict]:
        from repro.deltalog.files import decode_rows

        snapshot_id = metadata["current-snapshot-id"]
        snapshot = next(
            s for s in metadata["snapshots"] if s["snapshot-id"] == snapshot_id
        )
        rows: list[dict] = []
        for entry in snapshot["manifest"]:
            blob = self._client.get(StoragePath.parse(entry["file_path"]))
            rows.extend(decode_rows(blob))
        return rows

    def schema_names(self, metadata: dict) -> list[str]:
        schema_id = metadata["current-schema-id"]
        schema = next(
            s for s in metadata["schemas"] if s["schema-id"] == schema_id
        )
        return [f["name"] for f in schema["fields"]]
