"""Discovery search service (paper section 4.4).

A second-tier ("background") service: it consumes the core service's
metadata change events to keep an inverted index fresh — no polling of
the operational catalog — and filters every query's results through the
core service's authorization API so users only discover what they may
see.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.core.events import ChangeType
from repro.core.model.entity import Entity, SecurableKind

_TOKEN_RE = re.compile(r"[a-z0-9_]+")


def _tokens(text: str) -> set[str]:
    return set(_TOKEN_RE.findall(text.lower()))


@dataclass
class SearchHit:
    entity: Entity
    full_name: str
    score: int


@dataclass
class _Doc:
    entity: Entity
    full_name: str
    tokens: set[str] = field(default_factory=set)
    tags: dict[str, str] = field(default_factory=dict)
    column_tags: dict[str, dict[str, str]] = field(default_factory=dict)

    def tag_matches(self, key: str, value) -> bool:
        """Securable-level or any-column tag match."""
        if key in self.tags and (value is None or self.tags[key] == value):
            return True
        for tags in self.column_tags.values():
            if key in tags and (value is None or tags[key] == value):
                return True
        return False


class SearchService:
    """Event-driven index over one catalog service."""

    def __init__(self, service, consumer_name: str = "search-service"):
        self._service = service
        self._consumer = consumer_name
        self._docs: dict[tuple[str, str], _Doc] = {}  # (metastore, entity id)
        self._index: dict[tuple[str, str], set[str]] = {}  # (metastore, token)
        self.events_processed = 0

    # -- ingestion ---------------------------------------------------------

    def sync(self, metastore_id: str) -> int:
        """Drain pending change events into the index; returns how many
        events were processed."""
        events = self._service.events.poll(metastore_id, self._consumer)
        for event in events:
            self.events_processed += 1
            if event.change in (ChangeType.DELETED, ChangeType.PURGED):
                self._remove(metastore_id, event.securable_id)
            else:
                self._reindex(metastore_id, event.securable_id)
        return len(events)

    def lag(self, metastore_id: str) -> int:
        """Freshness: events not yet consumed."""
        return self._service.events.lag(metastore_id, self._consumer)

    def _reindex(self, metastore_id: str, entity_id: str) -> None:
        view = self._service.view(metastore_id)
        entity = view.entity_by_id(entity_id)
        if entity is None:
            self._remove(metastore_id, entity_id)
            return
        full_name = view.full_name(entity)
        tags = self._service.authorizer.tags_of(view, entity_id)
        column_tags = self._service.authorizer.column_tags_of(view, entity_id)
        tokens = _tokens(entity.name) | _tokens(entity.comment)
        tokens |= _tokens(entity.kind.value)
        for key, value in tags.items():
            tokens |= _tokens(key) | _tokens(value)
        for column, ctags in column_tags.items():
            tokens |= _tokens(column)
            for key, value in ctags.items():
                tokens |= _tokens(key) | _tokens(value)
        for column in entity.spec.get("columns") or ():
            tokens |= _tokens(column["name"])
        self._remove(metastore_id, entity_id)
        doc = _Doc(entity=entity, full_name=full_name, tokens=tokens,
                   tags=tags, column_tags=column_tags)
        self._docs[(metastore_id, entity_id)] = doc
        for token in tokens:
            self._index.setdefault((metastore_id, token), set()).add(entity_id)

    def _remove(self, metastore_id: str, entity_id: str) -> None:
        doc = self._docs.pop((metastore_id, entity_id), None)
        if doc is None:
            return
        for token in doc.tokens:
            bucket = self._index.get((metastore_id, token))
            if bucket is not None:
                bucket.discard(entity_id)
                if not bucket:
                    del self._index[(metastore_id, token)]

    # -- queries --------------------------------------------------------------

    def search(
        self,
        metastore_id: str,
        principal: str,
        query: str,
        *,
        kind: Optional[SecurableKind] = None,
        tag: Optional[tuple[str, Optional[str]]] = None,
        limit: int = 50,
    ) -> list[SearchHit]:
        """Token search with optional kind/tag filters, authorization
        enforced through the core service's API."""
        wanted = _tokens(query)
        candidate_ids: Optional[set[str]] = None
        for token in wanted:
            bucket = self._index.get((metastore_id, token), set())
            candidate_ids = bucket if candidate_ids is None else candidate_ids & bucket
        if candidate_ids is None:
            candidate_ids = {
                entity_id for (mid, entity_id) in self._docs if mid == metastore_id
            }
        hits: list[SearchHit] = []
        for entity_id in candidate_ids:
            doc = self._docs.get((metastore_id, entity_id))
            if doc is None:
                continue
            if kind is not None and doc.entity.kind is not kind:
                continue
            if tag is not None:
                key, value = tag
                if not doc.tag_matches(key, value):
                    continue
            score = len(wanted & doc.tokens)
            hits.append(SearchHit(entity=doc.entity, full_name=doc.full_name,
                                  score=score))
        # authorization API: only return what the caller may see
        visible_entities = self._service.filter_visible_entities(
            metastore_id, principal, [h.entity for h in hits]
        )
        visible_ids = {e.id for e in visible_entities}
        hits = [h for h in hits if h.entity.id in visible_ids]
        hits.sort(key=lambda h: (-h.score, h.full_name))
        return hits[:limit]

    def find_by_tag(
        self, metastore_id: str, principal: str, key: str,
        value: Optional[str] = None,
    ) -> list[SearchHit]:
        """The paper's motivating query: locate all assets tagged 'PII'."""
        hits = []
        for (mid, entity_id), doc in self._docs.items():
            if mid != metastore_id or not doc.tag_matches(key, value):
                continue
            hits.append(SearchHit(entity=doc.entity, full_name=doc.full_name,
                                  score=1))
        visible = self._service.filter_visible_entities(
            metastore_id, principal, [h.entity for h in hits]
        )
        visible_ids = {e.id for e in visible}
        return sorted(
            (h for h in hits if h.entity.id in visible_ids),
            key=lambda h: h.full_name,
        )

    def doc_count(self, metastore_id: str) -> int:
        return sum(1 for (mid, _) in self._docs if mid == metastore_id)
