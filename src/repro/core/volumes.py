"""Volume file operations (paper sections 3.2, 6.2).

Volumes are "a logical storage in a cloud object storage location for
organizing files and non-tabular data" — the most common non-tabular
asset type, used for unstructured AI/ML data, file exploration, tool
staging, and raw-ingest staging. This client provides the file API over a
volume: every operation is authorized by the catalog (READ VOLUME / WRITE
VOLUME) and performed with a vended credential scoped to the volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel
from repro.core.model.entity import SecurableKind
from repro.errors import InvalidRequestError


@dataclass(frozen=True)
class VolumeFileInfo:
    path: str  # volume-relative
    size: int


class VolumeClient:
    """File operations on one principal's behalf."""

    def __init__(self, service, metastore_id: str, principal: str):
        self._service = service
        self._metastore_id = metastore_id
        self._principal = principal

    def _storage(self, volume_name: str,
                 level: AccessLevel) -> tuple[StorageClient, StoragePath]:
        credential = self._service.vend_credentials(
            self._metastore_id, self._principal, SecurableKind.VOLUME,
            volume_name, level,
        )
        entity = self._service.get_securable(
            self._metastore_id, self._principal, SecurableKind.VOLUME,
            volume_name,
        )
        client = self._service.governed_client(credential)
        return client, StoragePath.parse(entity.storage_path)

    @staticmethod
    def _file_path(root: StoragePath, relative: str) -> StoragePath:
        relative = relative.strip("/")
        if not relative:
            raise InvalidRequestError("empty file path")
        return root.child(*relative.split("/"))

    # -- file API -----------------------------------------------------------

    def upload(self, volume_name: str, relative_path: str,
               data: bytes) -> VolumeFileInfo:
        client, root = self._storage(volume_name, AccessLevel.READ_WRITE)
        path = self._file_path(root, relative_path)
        client.put(path, data)
        return VolumeFileInfo(path=relative_path, size=len(data))

    def download(self, volume_name: str, relative_path: str) -> bytes:
        client, root = self._storage(volume_name, AccessLevel.READ)
        return client.get(self._file_path(root, relative_path))

    def delete(self, volume_name: str, relative_path: str) -> None:
        client, root = self._storage(volume_name, AccessLevel.READ_WRITE)
        client.delete(self._file_path(root, relative_path))

    def list_files(self, volume_name: str,
                   prefix: Optional[str] = None) -> list[VolumeFileInfo]:
        client, root = self._storage(volume_name, AccessLevel.READ)
        scope = self._file_path(root, prefix) if prefix else root
        offset = len(root.key) + 1
        return [
            VolumeFileInfo(path=meta.path.key[offset:], size=meta.size)
            for meta in client.list(scope)
        ]

    def exists(self, volume_name: str, relative_path: str) -> bool:
        client, root = self._storage(volume_name, AccessLevel.READ)
        return client.exists(self._file_path(root, relative_path))
