"""The asset-type registry (the paper's adapter-layer extension point)."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.model.entity import SecurableKind
from repro.core.model.manifest import AssetTypeManifest
from repro.errors import AlreadyExistsError, InvalidRequestError, NotFoundError


class AssetTypeRegistry:
    """Maps securable kinds to their declarative manifests.

    The catalog service consults the registry for every CRUD operation,
    so registering a manifest is sufficient to obtain namespace
    management, access control, lifecycle, path governance, credential
    vending, and auditing for a new asset type — the property the paper
    demonstrates with the MLflow model registry integration.
    """

    def __init__(self):
        self._manifests: dict[SecurableKind, AssetTypeManifest] = {}

    def register(self, manifest: AssetTypeManifest) -> None:
        if manifest.kind in self._manifests:
            raise AlreadyExistsError(
                f"asset type already registered: {manifest.kind.value}"
            )
        if manifest.parent_kind is not None:
            parent = self._manifests.get(manifest.parent_kind)
            if parent is None and manifest.parent_kind is not SecurableKind.METASTORE:
                raise InvalidRequestError(
                    f"parent kind {manifest.parent_kind.value} not registered"
                )
        self._manifests[manifest.kind] = manifest

    def get(self, kind: SecurableKind) -> AssetTypeManifest:
        try:
            return self._manifests[kind]
        except KeyError:
            raise NotFoundError(f"asset type not registered: {kind.value}")

    def maybe_get(self, kind: SecurableKind) -> Optional[AssetTypeManifest]:
        return self._manifests.get(kind)

    def __contains__(self, kind: SecurableKind) -> bool:
        return kind in self._manifests

    def __iter__(self) -> Iterator[AssetTypeManifest]:
        return iter(self._manifests.values())

    def kinds(self) -> list[SecurableKind]:
        return list(self._manifests)

    def children_of(self, kind: SecurableKind) -> list[AssetTypeManifest]:
        """Manifests whose instances live directly under ``kind``."""
        return [m for m in self._manifests.values() if m.parent_kind is kind]
