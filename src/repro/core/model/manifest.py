"""Declarative asset-type manifests (paper section 4.2.2).

"To add an asset type to UC, developers add a declarative manifest to
UC's asset types registry. The manifest is a specification of the asset
type, including its location in the hierarchy, the operations and
privileges supported on it, the authorization rules for each operation,
and how its lifecycle should be managed."

This module is that manifest. The built-in asset types under
``repro.core.assets`` are all defined through it, and tests demonstrate
registering a brand-new asset type without touching core code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.auth.privileges import Privilege
from repro.core.model.entity import SecurableKind
from repro.errors import InvalidRequestError


@dataclass(frozen=True)
class FieldSpec:
    """Validation annotation for one ``spec`` attribute of an asset type.

    Mirrors the paper's "annotations or custom logic for validating the
    asset type's input attributes in CRUD APIs" — e.g. whether a field is
    updatable and its valid input length.
    """

    name: str
    types: tuple[type, ...] = (str,)
    required: bool = False
    updatable: bool = True
    max_length: Optional[int] = None
    choices: Optional[frozenset] = None
    default: Any = None
    validator: Optional[Callable[[Any], None]] = None

    def validate(self, value: Any) -> None:
        """Raise :class:`InvalidRequestError` if ``value`` is unacceptable."""
        if value is None:
            if self.required:
                raise InvalidRequestError(f"field {self.name!r} is required")
            return
        if self.types and not isinstance(value, self.types):
            expected = "/".join(t.__name__ for t in self.types)
            raise InvalidRequestError(
                f"field {self.name!r} must be {expected}, got {type(value).__name__}"
            )
        if self.max_length is not None and isinstance(value, str) and len(value) > self.max_length:
            raise InvalidRequestError(
                f"field {self.name!r} longer than {self.max_length} characters"
            )
        if self.choices is not None and value not in self.choices:
            raise InvalidRequestError(
                f"field {self.name!r} must be one of {sorted(map(str, self.choices))}"
            )
        if self.validator is not None:
            self.validator(value)


@dataclass(frozen=True)
class AssetTypeManifest:
    """The full declarative specification of one asset type."""

    kind: SecurableKind
    #: Where the type sits in the hierarchy. ``SCHEMA`` for leaf assets,
    #: ``CATALOG`` for schemas, ``None`` for metastore-root securables.
    parent_kind: Optional[SecurableKind]
    #: Asset types sharing a namespace group must have unique names within
    #: a parent (e.g. tables and views share the "tabular" group).
    namespace_group: str
    #: Whether instances carry a backing storage path.
    has_storage: bool = False
    #: Whether UC may allocate managed storage for instances.
    allows_managed_storage: bool = False
    #: Privilege required to create an instance inside the parent.
    create_privilege: Optional[Privilege] = None
    #: All privileges that may be granted on instances.
    supported_privileges: frozenset[Privilege] = frozenset()
    #: Operation name -> privilege required on the securable itself.
    #: (Usage privileges on ancestors are enforced generically.)
    operation_rules: dict[str, Privilege] = field(default_factory=dict)
    #: Child kinds soft-deleted in cascade when an instance is deleted.
    child_kinds: tuple[SecurableKind, ...] = ()
    #: Validation specs for ``spec`` fields.
    fields: tuple[FieldSpec, ...] = ()
    #: Privileges that map to READ / READ_WRITE credential vending.
    read_privilege: Optional[Privilege] = None
    write_privilege: Optional[Privilege] = None

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.fields]
        if len(names) != len(set(names)):
            raise InvalidRequestError(
                f"duplicate field specs in manifest for {self.kind.value}"
            )

    def field_map(self) -> dict[str, FieldSpec]:
        return {spec.name: spec for spec in self.fields}

    def validate_create(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Validate and normalize a create-time ``spec`` payload.

        Unknown fields are rejected; defaults are filled in.
        """
        known = self.field_map()
        unknown = set(spec) - set(known)
        if unknown:
            raise InvalidRequestError(
                f"unknown fields for {self.kind.value}: {sorted(unknown)}"
            )
        normalized: dict[str, Any] = {}
        for name, field_spec in known.items():
            value = spec.get(name, field_spec.default)
            field_spec.validate(value)
            if value is not None:
                normalized[name] = value
        return normalized

    def validate_update(self, changes: dict[str, Any]) -> dict[str, Any]:
        """Validate an update payload: fields must exist and be updatable."""
        known = self.field_map()
        normalized: dict[str, Any] = {}
        for name, value in changes.items():
            field_spec = known.get(name)
            if field_spec is None:
                raise InvalidRequestError(
                    f"unknown field for {self.kind.value}: {name!r}"
                )
            if not field_spec.updatable:
                raise InvalidRequestError(
                    f"field {name!r} of {self.kind.value} is not updatable"
                )
            field_spec.validate(value)
            normalized[name] = value
        return normalized

    def privilege_for_operation(self, operation: str) -> Privilege:
        try:
            return self.operation_rules[operation]
        except KeyError:
            raise InvalidRequestError(
                f"{self.kind.value} does not support operation {operation!r}"
            )

    def supports_privilege(self, privilege: Privilege) -> bool:
        return privilege in self.supported_privileges or privilege is Privilege.MANAGE
