"""Naming rules for the three-level namespace.

Fully qualified names take the form ``catalog.schema.asset`` (paper
section 3.2); metastore-level securables (catalogs, credentials,
locations, connections) use a single-segment name.
"""

from __future__ import annotations

import re

from repro.errors import InvalidRequestError

# SQL-ish identifiers: letters, digits, underscore, hyphen; must not start
# with a digit. Case is preserved but comparisons are case-sensitive, like
# the open-source Unity Catalog server.
_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")

MAX_IDENTIFIER_LENGTH = 255


def validate_identifier(name: str, *, what: str = "identifier") -> str:
    """Validate one namespace segment, returning it unchanged."""
    if not isinstance(name, str) or not name:
        raise InvalidRequestError(f"{what} must be a non-empty string")
    if len(name) > MAX_IDENTIFIER_LENGTH:
        raise InvalidRequestError(
            f"{what} longer than {MAX_IDENTIFIER_LENGTH} characters"
        )
    if not _IDENTIFIER.match(name):
        raise InvalidRequestError(f"invalid {what}: {name!r}")
    return name


def full_name(*segments: str) -> str:
    """Join namespace segments into a fully qualified name."""
    if not segments:
        raise InvalidRequestError("empty name")
    for segment in segments:
        validate_identifier(segment, what="name segment")
    return ".".join(segments)


def split_full_name(name: str, *, levels: int | None = None) -> list[str]:
    """Split a fully qualified name, optionally checking the level count."""
    if not isinstance(name, str) or not name:
        raise InvalidRequestError("empty name")
    segments = name.split(".")
    for segment in segments:
        validate_identifier(segment, what="name segment")
    if levels is not None and len(segments) != levels:
        raise InvalidRequestError(
            f"expected a {levels}-level name, got {name!r}"
        )
    return segments
