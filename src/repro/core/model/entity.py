"""Entities: the single representation for every securable in the catalog.

The paper's entity-relationship model abstracts "common functionality
across asset types" (namespaces, lookup by name/id/path, parent-child
relationships, lifecycle state) into one generic structure; type-specific
attributes live in an open ``spec`` mapping validated by the asset type's
manifest.
"""

from __future__ import annotations

import enum
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Optional


class SecurableKind(enum.Enum):
    """Every kind of securable the catalog manages.

    Containers (metastore/catalog/schema) and configuration securables
    (credentials, locations, connections, shares, recipients) are
    securables just like data/AI assets — the privilege model treats them
    uniformly (paper section 3.3).
    """

    METASTORE = "METASTORE"
    CATALOG = "CATALOG"
    SCHEMA = "SCHEMA"
    TABLE = "TABLE"
    VOLUME = "VOLUME"
    FUNCTION = "FUNCTION"
    REGISTERED_MODEL = "REGISTERED_MODEL"
    MODEL_VERSION = "MODEL_VERSION"
    STORAGE_CREDENTIAL = "STORAGE_CREDENTIAL"
    EXTERNAL_LOCATION = "EXTERNAL_LOCATION"
    CONNECTION = "CONNECTION"
    SHARE = "SHARE"
    RECIPIENT = "RECIPIENT"

    @property
    def is_container(self) -> bool:
        return self in (SecurableKind.CATALOG, SecurableKind.SCHEMA)

    @property
    def is_metastore_root(self) -> bool:
        """Kinds that live directly under the metastore (not in a schema)."""
        return self in (
            SecurableKind.CATALOG,
            SecurableKind.STORAGE_CREDENTIAL,
            SecurableKind.EXTERNAL_LOCATION,
            SecurableKind.CONNECTION,
            SecurableKind.SHARE,
            SecurableKind.RECIPIENT,
        )


class EntityState(enum.Enum):
    """Lifecycle states (paper section 4.2.1: soft deletion + GC).

    ``ACTIVE`` entities are visible; ``DELETED`` entities are soft-deleted
    and invisible to reads but retained until the garbage collector purges
    them (releasing managed storage).
    """

    PROVISIONING = "PROVISIONING"
    ACTIVE = "ACTIVE"
    DELETED = "DELETED"


def new_entity_id() -> str:
    """Mint a globally unique entity id."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class Entity:
    """One securable. Immutable: updates produce new instances.

    Immutability is what makes the multi-version cache safe — a cached
    ``Entity`` can be handed to concurrent readers without copying.
    """

    id: str
    kind: SecurableKind
    name: str
    metastore_id: str
    parent_id: Optional[str]
    owner: str
    created_at: float
    updated_at: float
    state: EntityState = EntityState.ACTIVE
    comment: str = ""
    storage_path: Optional[str] = None
    properties: dict[str, Any] = field(default_factory=dict)
    spec: dict[str, Any] = field(default_factory=dict)
    deleted_at: Optional[float] = None

    def with_updates(self, *, updated_at: float, **changes: Any) -> "Entity":
        """Return a copy with ``changes`` applied and timestamp bumped."""
        return replace(self, updated_at=updated_at, **changes)

    def soft_deleted(self, at: float) -> "Entity":
        return replace(self, state=EntityState.DELETED, deleted_at=at, updated_at=at)

    @property
    def is_active(self) -> bool:
        return self.state is EntityState.ACTIVE

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly rendering used by the REST layer and persistence."""
        return {
            "id": self.id,
            "kind": self.kind.value,
            "name": self.name,
            "metastore_id": self.metastore_id,
            "parent_id": self.parent_id,
            "owner": self.owner,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "state": self.state.value,
            "comment": self.comment,
            "storage_path": self.storage_path,
            "properties": dict(self.properties),
            "spec": dict(self.spec),
            "deleted_at": self.deleted_at,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Entity":
        return cls(
            id=data["id"],
            kind=SecurableKind(data["kind"]),
            name=data["name"],
            metastore_id=data["metastore_id"],
            parent_id=data.get("parent_id"),
            owner=data["owner"],
            created_at=data["created_at"],
            updated_at=data["updated_at"],
            state=EntityState(data.get("state", "ACTIVE")),
            comment=data.get("comment", ""),
            storage_path=data.get("storage_path"),
            properties=dict(data.get("properties", {})),
            spec=dict(data.get("spec", {})),
            deleted_at=data.get("deleted_at"),
        )
