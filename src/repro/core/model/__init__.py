"""Generic entity-relationship data model (paper section 4.2.2)."""

from repro.core.model.entity import (
    Entity,
    EntityState,
    SecurableKind,
    new_entity_id,
)
from repro.core.model.manifest import AssetTypeManifest, FieldSpec
from repro.core.model.registry import AssetTypeRegistry
from repro.core.model.naming import (
    full_name,
    split_full_name,
    validate_identifier,
)

__all__ = [
    "AssetTypeManifest",
    "AssetTypeRegistry",
    "Entity",
    "EntityState",
    "FieldSpec",
    "SecurableKind",
    "full_name",
    "new_entity_id",
    "split_full_name",
    "validate_identifier",
]
