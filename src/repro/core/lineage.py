"""Lineage tracking (paper section 4.4).

Engines submit lineage edges during query processing ("fine-grained
lineage tracking ... requires catalog-engine collaboration", section
4.1); the catalog stores the graph and answers upstream/downstream
queries — e.g. "verify that an asset has no downstream dependencies prior
to deletion" (section 1).

Reads are filtered through the authorization API so a user only sees
lineage among assets whose metadata they may see.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

@dataclass(frozen=True)
class LineageEdge:
    """One data flow: ``source`` fed ``target`` during ``operation``."""

    metastore_id: str
    source: str  # fully qualified asset name
    target: str
    operation: str
    principal: str
    timestamp: float
    columns: tuple[str, ...] = ()  # column-level lineage when known

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "target": self.target,
            "operation": self.operation,
            "principal": self.principal,
            "timestamp": self.timestamp,
            "columns": list(self.columns),
        }


class LineageGraph:
    """Per-metastore lineage storage with reachability queries."""

    def __init__(self):
        self._lock = threading.RLock()
        self._edges: dict[str, list[LineageEdge]] = {}
        self._downstream: dict[tuple[str, str], set[str]] = {}
        self._upstream: dict[tuple[str, str], set[str]] = {}

    def record(
        self,
        metastore_id: str,
        principal: str,
        sources: list[str],
        target: str,
        operation: str,
        timestamp: float,
        columns: tuple[str, ...] = (),
    ) -> list[LineageEdge]:
        """Engine-submitted lineage for one operation."""
        edges = []
        with self._lock:
            for source in sources:
                edge = LineageEdge(
                    metastore_id=metastore_id,
                    source=source,
                    target=target,
                    operation=operation,
                    principal=principal,
                    timestamp=timestamp,
                    columns=columns,
                )
                self._edges.setdefault(metastore_id, []).append(edge)
                self._downstream.setdefault((metastore_id, source), set()).add(target)
                self._upstream.setdefault((metastore_id, target), set()).add(source)
                edges.append(edge)
        return edges

    def edges(self, metastore_id: str) -> list[LineageEdge]:
        with self._lock:
            return list(self._edges.get(metastore_id, ()))

    def direct_downstream(self, metastore_id: str, asset: str) -> set[str]:
        with self._lock:
            return set(self._downstream.get((metastore_id, asset), ()))

    def direct_upstream(self, metastore_id: str, asset: str) -> set[str]:
        with self._lock:
            return set(self._upstream.get((metastore_id, asset), ()))

    def _closure(
        self, metastore_id: str, asset: str, index: dict
    ) -> set[str]:
        seen: set[str] = set()
        frontier = [asset]
        with self._lock:
            while frontier:
                current = frontier.pop()
                for neighbor in index.get((metastore_id, current), ()):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
        return seen

    def downstream(self, metastore_id: str, asset: str) -> set[str]:
        """All assets transitively derived from ``asset``."""
        return self._closure(metastore_id, asset, self._downstream)

    def upstream(self, metastore_id: str, asset: str) -> set[str]:
        """All assets ``asset`` transitively derives from."""
        return self._closure(metastore_id, asset, self._upstream)

    def has_downstream(self, metastore_id: str, asset: str) -> bool:
        """The pre-deletion safety check from the paper's introduction."""
        return bool(self._downstream.get((metastore_id, asset)))
