"""Delta Sharing (paper sections 1, 6.2).

The open protocol for sharing tables with recipients outside the
provider's platform, without copying data. The provider side:

* a *share* securable groups tables,
* a *recipient* securable holds the bearer token an external client
  authenticates with,
* access is granted SQL-style: ``GRANT SELECT ON SHARE s TO recipient``.

The server endpoints mirror the protocol's REST shape: list shares /
schemas / tables, and ``query_table`` which returns table metadata plus
file "URLs" with a short-lived read credential (standing in for the
presigned URLs of the production protocol — same downscoped, expiring
read capability).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel, TemporaryCredential
from repro.core.auth.privileges import Privilege
from repro.core.model.entity import Entity, SecurableKind
from repro.core.persistence.store import Tables, WriteOp
from repro.core.events import ChangeType
from repro.deltalog.table import DeltaTable
from repro.errors import (
    NotFoundError,
    PermissionDeniedError,
)


@dataclass
class SharedTableQuery:
    """The ``query_table`` response: everything an external Delta Sharing
    client needs to read the table without UC-native access."""

    share: str
    table: str
    schema: list[dict]
    table_root: str
    files: list[dict]  # {"url", "size", "numRecords"}
    credential: TemporaryCredential
    version: int


class DeltaSharingServer:
    """Provider-side endpoints, layered on the catalog service."""

    def __init__(self, service, metastore_id: str):
        self._service = service
        self._metastore_id = metastore_id

    # -- provider administration -------------------------------------------

    def create_share(self, principal: str, name: str) -> Entity:
        return self._service.create_securable(
            self._metastore_id, principal, SecurableKind.SHARE, name
        )

    def create_recipient(self, principal: str, name: str, bearer_token: str) -> Entity:
        """Create the recipient securable and register its identity so
        grants can target it."""
        if not self._service.directory.exists(name):
            self._service.directory.add_service_principal(name)
        return self._service.create_securable(
            self._metastore_id, principal, SecurableKind.RECIPIENT, name,
            spec={"bearer_token": bearer_token},
        )

    def add_table_to_share(
        self, principal: str, share_name: str, table_name: str
    ) -> None:
        """Put a table into a share (requires admin on the share and SELECT
        on the table — the provider can only share what it can read)."""
        service = self._service

        def build(view):
            share = service._resolve(view, self._metastore_id,
                                     SecurableKind.SHARE, share_name)
            service._authorize(view, self._metastore_id, principal, share,
                               "update", share_name)
            table = service._resolve(view, self._metastore_id,
                                     SecurableKind.TABLE, table_name)
            service._authorize(view, self._metastore_id, principal, table,
                               "read_data", table_name)
            key = f"{share.id}/{table.id}"
            row = {"share_id": share.id, "asset_id": table.id,
                   "asset_name": table_name}
            ops = [WriteOp.put(Tables.SHARES, key, row)]
            events = [(ChangeType.UPDATED, share.id, "SHARE", share_name,
                       {"added_table": table_name})]
            return ops, None, events

        service._mutate(self._metastore_id, build)

    def remove_table_from_share(
        self, principal: str, share_name: str, table_name: str
    ) -> None:
        service = self._service

        def build(view):
            share = service._resolve(view, self._metastore_id,
                                     SecurableKind.SHARE, share_name)
            service._authorize(view, self._metastore_id, principal, share,
                               "update", share_name)
            table = service._resolve(view, self._metastore_id,
                                     SecurableKind.TABLE, table_name)
            key = f"{share.id}/{table.id}"
            if view.row(Tables.SHARES, key) is None:
                raise NotFoundError(f"{table_name} is not in share {share_name}")
            ops = [WriteOp.delete(Tables.SHARES, key)]
            events = [(ChangeType.UPDATED, share.id, "SHARE", share_name,
                       {"removed_table": table_name})]
            return ops, None, events

        service._mutate(self._metastore_id, build)

    def grant_share(self, principal: str, share_name: str, recipient_name: str) -> None:
        self._service.grant(
            self._metastore_id, principal, SecurableKind.SHARE, share_name,
            recipient_name, Privilege.SELECT,
        )

    # -- recipient authentication --------------------------------------------

    def _authenticate(self, bearer_token: str) -> Entity:
        view = self._service.view(self._metastore_id)
        for recipient in view.entities(SecurableKind.RECIPIENT):
            if recipient.spec.get("bearer_token") == bearer_token:
                return recipient
        raise PermissionDeniedError("invalid sharing token")

    def _accessible_shares(self, recipient: Entity) -> list[Entity]:
        view = self._service.view(self._metastore_id)
        identities = self._service.authorizer.identities(recipient.name)
        out = []
        for share in view.entities(SecurableKind.SHARE):
            for grant in view.grants_on(share.id):
                if grant.privilege is Privilege.SELECT and grant.principal in identities:
                    out.append(share)
                    break
        return out

    # -- protocol endpoints -------------------------------------------------------

    def list_shares(self, bearer_token: str) -> list[str]:
        recipient = self._authenticate(bearer_token)
        return sorted(s.name for s in self._accessible_shares(recipient))

    def list_tables(self, bearer_token: str, share_name: str) -> list[str]:
        recipient = self._authenticate(bearer_token)
        share = self._shared_share(recipient, share_name)
        view = self._service.view(self._metastore_id)
        names = []
        for key, row in view.rows(Tables.SHARES):
            if row["share_id"] == share.id:
                names.append(row["asset_name"])
        return sorted(names)

    def list_schemas(self, bearer_token: str, share_name: str) -> list[str]:
        """The protocol's share → schema level: the distinct
        ``catalog.schema`` prefixes of the shared tables."""
        tables = self.list_tables(bearer_token, share_name)
        return sorted({name.rsplit(".", 1)[0] for name in tables})

    def table_version(self, bearer_token: str, share_name: str,
                      table_name: str) -> int:
        """The protocol's version endpoint (clients poll it for changes)."""
        return self.query_table(bearer_token, share_name, table_name).version

    def _shared_share(self, recipient: Entity, share_name: str) -> Entity:
        for share in self._accessible_shares(recipient):
            if share.name == share_name:
                return share
        raise PermissionDeniedError(
            f"recipient {recipient.name!r} has no access to share {share_name!r}"
        )

    def query_table(self, bearer_token: str, share_name: str, table_name: str) -> SharedTableQuery:
        """The data endpoint: metadata + file list + read credential."""
        service = self._service
        recipient = self._authenticate(bearer_token)
        share = self._shared_share(recipient, share_name)
        view = service.view(self._metastore_id)
        membership = None
        for key, row in view.rows(Tables.SHARES):
            if row["share_id"] == share.id and row["asset_name"] == table_name:
                membership = row
                break
        if membership is None:
            raise NotFoundError(f"{table_name} is not in share {share_name}")
        table_entity = view.entity_by_id(membership["asset_id"])
        if table_entity is None or not table_entity.storage_path:
            raise NotFoundError(f"shared table {table_name} is gone")

        # the catalog reads the table under its own authority to build the
        # file list, then vends a read credential scoped to the table
        credential = service.vendor.vend(view, table_entity, AccessLevel.READ)
        client = service.governed_client(credential)
        root = StoragePath.parse(table_entity.storage_path)
        delta = DeltaTable(client, root, clock=service.clock)
        snapshot = delta.snapshot()
        files = [
            {
                "url": root.child(*add.path.split("/")).url(),
                "size": add.size,
                "numRecords": add.stats.num_records,
                "deletionVector": add.deletion_vector,
            }
            for add in snapshot.active_files.values()
        ]
        schema = list(snapshot.metadata.schema) if snapshot.metadata else []
        service._audit(
            self._metastore_id, recipient.name, "sharing_query_table",
            f"{share_name}.{table_name}", True, files=len(files),
        )
        return SharedTableQuery(
            share=share_name,
            table=table_name,
            schema=schema,
            table_root=table_entity.storage_path,
            files=files,
            credential=credential,
            version=snapshot.version,
        )


class DeltaSharingClient:
    """A recipient-side client: reads shared tables with only a bearer
    token and the provider endpoint — no UC account, no raw storage keys."""

    def __init__(self, server: DeltaSharingServer, bearer_token: str,
                 object_store, sts):
        self._server = server
        self._token = bearer_token
        self._object_store = object_store
        self._sts = sts

    def list_shares(self) -> list[str]:
        return self._server.list_shares(self._token)

    def list_tables(self, share: str) -> list[str]:
        return self._server.list_tables(self._token, share)

    def read_table(self, share: str, table: str) -> list[dict]:
        """Fetch the file list then read each file with the vended
        credential (simulated presigned URLs)."""
        from repro.deltalog.deletion_vectors import read_dv
        from repro.deltalog.files import decode_rows

        response = self._server.query_table(self._token, share, table)
        client = StorageClient(self._object_store, self._sts, response.credential)
        root = StoragePath.parse(response.table_root)
        rows: list[dict] = []
        for file_info in response.files:
            blob = client.get(StoragePath.parse(file_info["url"]))
            file_rows = decode_rows(blob)
            dv = None
            if file_info.get("deletionVector"):
                dv = read_dv(client, root, file_info["deletionVector"])
            for ordinal, row in enumerate(file_rows):
                if dv is not None and ordinal in dv:
                    continue
                rows.append(row)
        return rows
