"""SQLite-backed metadata store.

Demonstrates the paper's claim that the persistence contract maps onto a
standard relational database: rows are MVCC-versioned tuples in one
relation, metastore versions live in a second relation, and the commit
CAS runs inside a SQLite transaction.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Any, Iterator, Optional

from repro.core.persistence.store import (
    ChangeRecord,
    MetadataStore,
    Snapshot,
    WriteOp,
)
from repro.errors import (
    AlreadyExistsError,
    ConcurrentModificationError,
    NotFoundError,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS metastore_versions (
    metastore_id TEXT PRIMARY KEY,
    version      INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS rows (
    metastore_id TEXT NOT NULL,
    tbl          TEXT NOT NULL,
    key          TEXT NOT NULL,
    version      INTEGER NOT NULL,
    value        TEXT,
    PRIMARY KEY (metastore_id, tbl, key, version)
);
CREATE INDEX IF NOT EXISTS rows_by_table
    ON rows (metastore_id, tbl, version);
-- key-ordered range index: (metastore_id, tbl, key) prefixes of the PK
-- make scan_prefix/scan_range single index-range reads; version rides
-- along so MVCC max-version resolution stays inside the index.
CREATE INDEX IF NOT EXISTS rows_key_range
    ON rows (metastore_id, tbl, key, version DESC);
-- changelog floor: compaction rewrites history below this version, so
-- changes_since must not re-derive records from the surviving rows
-- (memory/treecat truncate their changelogs; this is the SQL analogue).
CREATE TABLE IF NOT EXISTS compactions (
    metastore_id TEXT PRIMARY KEY,
    floor        INTEGER NOT NULL
);
"""

#: upper bound sentinel for prefix ranges: every valid key char < ￿
_PREFIX_CEILING = "￿"


class _SqliteSnapshot(Snapshot):
    def __init__(self, store: "SqliteMetadataStore", metastore_id: str, version: int):
        super().__init__(metastore_id, version)
        self._store = store

    def get(self, table: str, key: str) -> Optional[dict[str, Any]]:
        row = self._store._query_one(
            "SELECT value FROM rows"
            " WHERE metastore_id=? AND tbl=? AND key=? AND version<=?"
            " ORDER BY version DESC LIMIT 1",
            (self.metastore_id, table, key, self.version),
        )
        if row is None or row[0] is None:
            return None
        return json.loads(row[0])

    def multi_get(self, table: str, keys: list[str]) -> dict[str, dict[str, Any]]:
        if not keys:
            return {}
        placeholders = ",".join("?" for _ in keys)
        rows = self._store._query_all(
            "SELECT key, value FROM rows r"
            f" WHERE metastore_id=? AND tbl=? AND key IN ({placeholders})"
            "   AND version = ("
            "   SELECT MAX(version) FROM rows"
            "   WHERE metastore_id=r.metastore_id AND tbl=r.tbl"
            "     AND key=r.key AND version<=?)",
            (self.metastore_id, table, *keys, self.version),
        )
        self._store.multi_get_count += 1
        return {
            key: json.loads(value) for key, value in rows if value is not None
        }

    def scan(self, table: str) -> Iterator[tuple[str, dict[str, Any]]]:
        rows = self._store._query_all(
            "SELECT key, value FROM rows r"
            " WHERE metastore_id=? AND tbl=? AND version = ("
            "   SELECT MAX(version) FROM rows"
            "   WHERE metastore_id=r.metastore_id AND tbl=r.tbl"
            "     AND key=r.key AND version<=?)",
            (self.metastore_id, table, self.version),
        )
        live = [(k, v) for k, v in rows if v is not None]
        self._store.scan_row_count += len(live)
        for key, value in live:
            yield key, json.loads(value)

    def scan_range(
        self, table: str, start: str, end: Optional[str]
    ) -> Iterator[tuple[str, dict[str, Any]]]:
        where_end = " AND key<?" if end is not None else ""
        params: tuple = (self.metastore_id, table, start)
        if end is not None:
            params += (end,)
        rows = self._store._query_all(
            "SELECT key, value FROM rows r"
            f" WHERE metastore_id=? AND tbl=? AND key>=?{where_end}"
            "   AND version = ("
            "   SELECT MAX(version) FROM rows"
            "   WHERE metastore_id=r.metastore_id AND tbl=r.tbl"
            "     AND key=r.key AND version<=?)"
            " ORDER BY key",
            params + (self.version,),
        )
        live = [(k, v) for k, v in rows if v is not None]
        self._store.range_scan_count += 1
        self._store.scan_row_count += len(live)
        for key, value in live:
            yield key, json.loads(value)

    def scan_prefix(
        self, table: str, prefix: str
    ) -> Iterator[tuple[str, dict[str, Any]]]:
        return self.scan_range(table, prefix, prefix + _PREFIX_CEILING)

    def count(self, table: str, prefix: str = "") -> int:
        where_end = " AND key<?" if prefix else ""
        params: tuple = (self.metastore_id, table, prefix)
        if prefix:
            params += (prefix + _PREFIX_CEILING,)
        row = self._store._query_one(
            "SELECT COUNT(*) FROM rows r"
            f" WHERE metastore_id=? AND tbl=? AND key>=?{where_end}"
            "   AND value IS NOT NULL AND version = ("
            "   SELECT MAX(version) FROM rows"
            "   WHERE metastore_id=r.metastore_id AND tbl=r.tbl"
            "     AND key=r.key AND version<=?)",
            params + (self.version,),
        )
        self._store.range_scan_count += 1
        return int(row[0])


class SqliteMetadataStore(MetadataStore):
    """A durable backend. Pass ``path=":memory:"`` for an ephemeral DB."""

    def __init__(self, path: str = ":memory:"):
        # one shared connection guarded by a lock: SQLite serializes writers
        # anyway and the catalog's writes are per-metastore serialized above.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        self.multi_get_count = 0
        self.scan_row_count = 0
        self.range_scan_count = 0
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # -- low-level helpers -------------------------------------------------

    def _query_one(self, sql: str, params: tuple) -> Optional[tuple]:
        with self._lock:
            cursor = self._conn.execute(sql, params)
            return cursor.fetchone()

    def _query_all(self, sql: str, params: tuple) -> list[tuple]:
        with self._lock:
            cursor = self._conn.execute(sql, params)
            return cursor.fetchall()

    # -- MetadataStore -------------------------------------------------------

    def create_metastore_slot(self, metastore_id: str) -> None:
        with self._lock:
            try:
                self._conn.execute(
                    "INSERT INTO metastore_versions (metastore_id, version) VALUES (?, 0)",
                    (metastore_id,),
                )
                self._conn.commit()
            except sqlite3.IntegrityError:
                self._conn.rollback()
                raise AlreadyExistsError(f"metastore slot exists: {metastore_id}")

    def metastore_ids(self) -> list[str]:
        rows = self._query_all("SELECT metastore_id FROM metastore_versions", ())
        return [row[0] for row in rows]

    def current_version(self, metastore_id: str) -> int:
        row = self._query_one(
            "SELECT version FROM metastore_versions WHERE metastore_id=?",
            (metastore_id,),
        )
        if row is None:
            raise NotFoundError(f"no such metastore slot: {metastore_id}")
        return int(row[0])

    def snapshot(self, metastore_id: str, at_version: Optional[int] = None) -> Snapshot:
        current = self.current_version(metastore_id)
        version = current if at_version is None else at_version
        if version > current:
            raise ConcurrentModificationError(
                f"snapshot version {version} is ahead of committed {current}"
            )
        return _SqliteSnapshot(self, metastore_id, version)

    def commit(self, metastore_id: str, expected_version: int, ops: list[WriteOp]) -> int:
        with self._lock:
            try:
                cursor = self._conn.execute(
                    "UPDATE metastore_versions SET version=version+1"
                    " WHERE metastore_id=? AND version=?",
                    (metastore_id, expected_version),
                )
                if cursor.rowcount == 0:
                    self._conn.rollback()
                    current = self.current_version(metastore_id)
                    raise ConcurrentModificationError(
                        f"metastore {metastore_id}: expected version "
                        f"{expected_version}, found {current}"
                    )
                new_version = expected_version + 1
                for op in ops:
                    value = json.dumps(op.value) if op.value is not None else None
                    self._conn.execute(
                        "INSERT OR REPLACE INTO rows"
                        " (metastore_id, tbl, key, version, value)"
                        " VALUES (?, ?, ?, ?, ?)",
                        (metastore_id, op.table, op.key, new_version, value),
                    )
                self._conn.commit()
                return new_version
            except sqlite3.Error:
                self._conn.rollback()
                raise

    def changes_since(self, metastore_id: str, from_version: int) -> list[ChangeRecord]:
        floor = self._query_one(
            "SELECT floor FROM compactions WHERE metastore_id=?",
            (metastore_id,),
        )
        since = max(from_version, int(floor[0]) if floor else 0)
        rows = self._query_all(
            "SELECT version, tbl, key, value IS NULL FROM rows"
            " WHERE metastore_id=? AND version>? ORDER BY version",
            (metastore_id, since),
        )
        return [
            ChangeRecord(version=int(v), table=t, key=k, deleted=bool(d))
            for v, t, k, d in rows
        ]

    def compact(self, metastore_id: str, min_version: int) -> int:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM rows WHERE metastore_id=? AND version < ("
                "  SELECT MAX(version) FROM rows r2"
                "  WHERE r2.metastore_id=rows.metastore_id AND r2.tbl=rows.tbl"
                "    AND r2.key=rows.key AND r2.version<=?)",
                (metastore_id, min_version),
            )
            removed = cursor.rowcount
            # a sole tombstone older than min_version can go entirely
            cursor = self._conn.execute(
                "DELETE FROM rows WHERE metastore_id=? AND value IS NULL"
                "  AND version<=? AND NOT EXISTS ("
                "  SELECT 1 FROM rows r2"
                "  WHERE r2.metastore_id=rows.metastore_id AND r2.tbl=rows.tbl"
                "    AND r2.key=rows.key AND r2.version>rows.version)",
                (metastore_id, min_version),
            )
            removed += cursor.rowcount
            self._conn.execute(
                "INSERT INTO compactions (metastore_id, floor) VALUES (?, ?)"
                " ON CONFLICT (metastore_id)"
                " DO UPDATE SET floor=MAX(floor, excluded.floor)",
                (metastore_id, min_version),
            )
            self._conn.commit()
            return removed

    def close(self) -> None:
        with self._lock:
            self._conn.close()
