"""TreeCat-style hierarchical metadata store.

The catalog namespace is a three-level tree, but the flat backends store
it as unordered key/value rows — so ``list schemas``, name resolution and
subtree operations scan the whole metastore. Following TreeCat
("a standalone catalog engine for large data systems", PAPERS.md), this
backend keeps every table's keys in a *prefix-ordered* sorted structure
and maintains a **tree index** — rows mapping

    ``parent_id ␟ kind ␟ name ␟ entity_id  →  {"id", "state"}``

— transactionally inside :meth:`commit`, derived from the entity ops in
the same batch. List/resolve/subtree reads then become single range
reads over the sorted key space:

* ``scan_prefix`` / ``scan_range`` — bisect into the sorted key list,
  touch only the keys inside the range (interval-based reads);
* ``child_id`` — point range over one ``(parent, kind, name)`` slot;
* ``children_ids`` / ``count_children`` — one range read per container,
  independent of metastore size;
* full ``scan`` — key-ordered walk (deterministic iteration order).

MVCC semantics are identical to the in-memory backend: every row —
including tree-index rows — is an append-ordered ``(version, value)``
list, and a snapshot pinned at V sees the newest pair ``<= V``. Index
rows therefore time-travel with the entities they index: a snapshot
taken before a rename still resolves the old name. Index maintenance is
invisible to the change log (the index is derived state; replicas
regenerate it by replaying the entity ops through their own commit).
"""

from __future__ import annotations

import copy
import threading
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core.persistence.store import (
    ChangeRecord,
    MetadataStore,
    Snapshot,
    Tables,
    WriteOp,
)
from repro.errors import (
    AlreadyExistsError,
    ConcurrentModificationError,
    NotFoundError,
)

#: key-segment separator: sorts below every printable character, so the
#: sorted key order groups a parent's slots before any longer sibling key
_SEP = "\x1f"

#: internal table holding the tree-index rows (never in ``Tables``, never
#: surfaced through the change log)
TREE_INDEX = "__tree_index__"


def _index_key(parent_id: Optional[str], kind: str, name: str,
               entity_id: str) -> str:
    """Tree-index row key. ``parent_id=None`` (the metastore root) maps
    to the empty segment. The entity id rides in the key so a
    soft-deleted entity and its recreated namesake coexist."""
    return _SEP.join((parent_id or "", kind, name, entity_id))


def _visible(versions: list[tuple[int, Optional[dict]]], at: int) -> Optional[dict]:
    """Newest value committed at or before ``at`` (None if deleted/absent)."""
    for version, value in reversed(versions):
        if version <= at:
            return value
    return None


@dataclass
class _Table:
    """One logical table: MVCC rows plus the prefix-ordered key list."""

    rows: dict[str, list[tuple[int, Optional[dict]]]] = field(default_factory=dict)
    #: every key ever written (tombstoned keys stay until compaction),
    #: kept ascending so range reads are bisect + short walk
    ordered: list[str] = field(default_factory=list)

    def append(self, key: str, version: int, value: Optional[dict]) -> None:
        versions = self.rows.get(key)
        if versions is None:
            versions = self.rows[key] = []
            insort(self.ordered, key)
        versions.append((version, value))

    def latest(self, key: str) -> Optional[dict]:
        versions = self.rows.get(key)
        return versions[-1][1] if versions else None

    def range_keys(self, start: str, end: Optional[str]) -> list[str]:
        lo = bisect_left(self.ordered, start)
        hi = bisect_left(self.ordered, end) if end is not None else len(self.ordered)
        return self.ordered[lo:hi]


@dataclass
class _TreeSlot:
    version: int = 0
    tables: dict[str, _Table] = field(default_factory=dict)
    changelog: list[ChangeRecord] = field(default_factory=list)
    lock: threading.RLock = field(default_factory=threading.RLock)

    def table(self, name: str) -> _Table:
        table = self.tables.get(name)
        if table is None:
            table = self.tables[name] = _Table()
        return table


class _TreeCatSnapshot(Snapshot):
    has_tree_index = True

    def __init__(self, slot: _TreeSlot, metastore_id: str, version: int,
                 store: "TreeCatMetadataStore"):
        super().__init__(metastore_id, version)
        self._slot = slot
        self._store = store

    # -- point reads -----------------------------------------------------

    def get(self, table: str, key: str) -> Optional[dict[str, Any]]:
        with self._slot.lock:
            versions = self._slot.table(table).rows.get(key)
            if not versions:
                return None
            value = _visible(versions, self.version)
            return copy.deepcopy(value) if value is not None else None

    def multi_get(self, table: str, keys: list[str]) -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        with self._slot.lock:
            rows = self._slot.table(table).rows
            for key in keys:
                versions = rows.get(key)
                if not versions:
                    continue
                value = _visible(versions, self.version)
                if value is not None:
                    out[key] = copy.deepcopy(value)
        self._store.multi_get_count += 1
        return out

    # -- scans (always key-ordered) --------------------------------------

    def scan(self, table: str) -> Iterator[tuple[str, dict[str, Any]]]:
        with self._slot.lock:
            t = self._slot.table(table)
            out = []
            for key in t.ordered:
                value = _visible(t.rows[key], self.version)
                if value is not None:
                    out.append((key, copy.deepcopy(value)))
        self._store.scan_row_count += len(out)
        return iter(out)

    def _range(self, table: str, start: str, end: Optional[str]):
        """Materialized live rows in ``[start, end)``; charges only the
        keys the range actually touches."""
        with self._slot.lock:
            t = self._slot.table(table)
            keys = t.range_keys(start, end)
            out = []
            for key in keys:
                value = _visible(t.rows[key], self.version)
                if value is not None:
                    out.append((key, copy.deepcopy(value)))
        self._store.range_scan_count += 1
        self._store.scan_row_count += len(keys)
        return out

    def scan_range(self, table: str, start: str, end: Optional[str]):
        return iter(self._range(table, start, end))

    def scan_prefix(self, table: str, prefix: str):
        return iter(self._range(table, prefix, prefix + "￿"))

    def count(self, table: str, prefix: str = "") -> int:
        with self._slot.lock:
            t = self._slot.table(table)
            if prefix:
                keys = t.range_keys(prefix, prefix + "￿")
            else:
                keys = t.ordered
            counted = sum(
                1 for key in keys
                if _visible(t.rows[key], self.version) is not None
            )
        self._store.range_scan_count += 1
        self._store.scan_row_count += len(keys)
        return counted

    # -- tree-index reads ------------------------------------------------

    def _index_entries(self, start: str, end: str) -> list[dict]:
        with self._slot.lock:
            t = self._slot.table(TREE_INDEX)
            keys = t.range_keys(start, end)
            out = []
            for key in keys:
                value = _visible(t.rows[key], self.version)
                if value is not None:
                    out.append(value)
        self._store.range_scan_count += 1
        self._store.scan_row_count += len(keys)
        return out

    def child_id(self, parent_id: str, kind: str, name: str) -> Optional[str]:
        prefix = _SEP.join((parent_id or "", kind, name)) + _SEP
        for entry in self._index_entries(prefix, prefix + "￿"):
            if entry["state"] == "ACTIVE":
                return entry["id"]
        return None

    def children_ids(
        self,
        parent_id: str,
        kind: Optional[str] = None,
        include_deleted: bool = False,
    ) -> Optional[list[str]]:
        prefix = (parent_id or "") + _SEP
        if kind is not None:
            prefix += kind + _SEP
        return [
            entry["id"]
            for entry in self._index_entries(prefix, prefix + "￿")
            if include_deleted or entry["state"] == "ACTIVE"
        ]

    def count_children(
        self, parent_id: str, kind: Optional[str] = None
    ) -> Optional[int]:
        prefix = (parent_id or "") + _SEP
        if kind is not None:
            prefix += kind + _SEP
        return sum(
            1 for entry in self._index_entries(prefix, prefix + "￿")
            if entry["state"] == "ACTIVE"
        )


class TreeCatMetadataStore(MetadataStore):
    """The hierarchical backend: same contract, range reads for free."""

    def __init__(self):
        self._slots: dict[str, _TreeSlot] = {}
        self._global_lock = threading.RLock()
        self.read_count = 0
        self.commit_count = 0
        self.scan_row_count = 0
        self.multi_get_count = 0
        self.range_scan_count = 0

    def _slot(self, metastore_id: str) -> _TreeSlot:
        try:
            return self._slots[metastore_id]
        except KeyError:
            raise NotFoundError(f"no such metastore slot: {metastore_id}")

    # -- MetadataStore ---------------------------------------------------

    def create_metastore_slot(self, metastore_id: str) -> None:
        with self._global_lock:
            if metastore_id in self._slots:
                raise AlreadyExistsError(f"metastore slot exists: {metastore_id}")
            self._slots[metastore_id] = _TreeSlot()

    def metastore_ids(self) -> list[str]:
        with self._global_lock:
            return list(self._slots)

    def current_version(self, metastore_id: str) -> int:
        slot = self._slot(metastore_id)
        with slot.lock:
            return slot.version

    def snapshot(self, metastore_id: str, at_version: Optional[int] = None) -> Snapshot:
        slot = self._slot(metastore_id)
        with slot.lock:
            version = slot.version if at_version is None else at_version
            if version > slot.version:
                raise ConcurrentModificationError(
                    f"snapshot version {version} is ahead of committed {slot.version}"
                )
            self.read_count += 1
            return _TreeCatSnapshot(slot, metastore_id, version, store=self)

    def commit(self, metastore_id: str, expected_version: int, ops: list[WriteOp]) -> int:
        slot = self._slot(metastore_id)
        with slot.lock:
            if slot.version != expected_version:
                raise ConcurrentModificationError(
                    f"metastore {metastore_id}: expected version {expected_version}, "
                    f"found {slot.version}"
                )
            new_version = expected_version + 1
            index_ops = self._index_maintenance(slot, ops)
            for op in ops:
                value = copy.deepcopy(op.value) if op.value is not None else None
                slot.table(op.table).append(op.key, new_version, value)
                slot.changelog.append(
                    ChangeRecord(
                        version=new_version,
                        table=op.table,
                        key=op.key,
                        deleted=op.value is None,
                    )
                )
            # derived rows: versioned like everything else, but invisible
            # to the change log — replicas rebuild them from the entity
            # ops they replay through their own commit()
            index = slot.table(TREE_INDEX)
            for key, value in index_ops:
                index.append(key, new_version, value)
            slot.version = new_version
            self.commit_count += 1
            return new_version

    def _index_maintenance(
        self, slot: _TreeSlot, ops: list[WriteOp]
    ) -> list[tuple[str, Optional[dict]]]:
        """Tree-index rows implied by this batch's entity writes.

        For every entity op: tombstone the index slot the entity's
        previous version occupied (if the slot moved — rename, reparent,
        hard delete) and write the slot its new version occupies. Runs
        before the ops are applied so "previous" means pre-commit state,
        with earlier ops in the same batch taken into account.
        """
        def slot_key(value: Optional[dict]) -> Optional[str]:
            # rows without the entity shape (raw contract tests, foreign
            # payloads) simply don't participate in the index
            if value is None or not {"id", "kind", "name"} <= value.keys():
                return None
            return _index_key(
                value.get("parent_id"), value["kind"], value["name"], value["id"]
            )

        index_ops: list[tuple[str, Optional[dict]]] = []
        entities = slot.table(Tables.ENTITIES)
        pending: dict[str, Optional[dict]] = {}
        for op in ops:
            if op.table != Tables.ENTITIES:
                continue
            previous = (
                pending[op.key] if op.key in pending else entities.latest(op.key)
            )
            pending[op.key] = op.value
            old_key = slot_key(previous)
            new_key = slot_key(op.value)
            if old_key is not None and old_key != new_key:
                index_ops.append((old_key, None))
            if new_key is not None:
                index_ops.append((
                    new_key,
                    {"id": op.value["id"], "state": op.value.get("state", "ACTIVE")},
                ))
        return index_ops

    def changes_since(self, metastore_id: str, from_version: int) -> list[ChangeRecord]:
        slot = self._slot(metastore_id)
        with slot.lock:
            return [c for c in slot.changelog if c.version > from_version]

    def compact(self, metastore_id: str, min_version: int) -> int:
        slot = self._slot(metastore_id)
        removed = 0
        with slot.lock:
            for table in slot.tables.values():
                dropped_keys = False
                for key in list(table.rows):
                    versions = table.rows[key]
                    keep_from = 0
                    for i, (version, _) in enumerate(versions):
                        if version <= min_version:
                            keep_from = i
                    removed += keep_from
                    kept = versions[keep_from:]
                    # a sole tombstone older than min_version can go entirely
                    if len(kept) == 1 and kept[0][1] is None and kept[0][0] <= min_version:
                        removed += 1
                        del table.rows[key]
                        dropped_keys = True
                    else:
                        table.rows[key] = kept
                if dropped_keys:
                    table.ordered = sorted(table.rows)
            slot.changelog = [c for c in slot.changelog if c.version > min_version]
        return removed

    # -- diagnostics -----------------------------------------------------

    def row_version_count(self, metastore_id: str) -> int:
        """Total stored row versions, tree-index rows included."""
        slot = self._slot(metastore_id)
        with slot.lock:
            return sum(
                len(versions)
                for table in slot.tables.values()
                for versions in table.rows.values()
            )

    def approximate_size_bytes(self, metastore_id: str) -> int:
        """Rough serialized size of the live metadata (index excluded)."""
        import json

        slot = self._slot(metastore_id)
        total = 0
        with slot.lock:
            for name, table in slot.tables.items():
                if name == TREE_INDEX:
                    continue
                for versions in table.rows.values():
                    value = versions[-1][1]
                    if value is not None:
                        total += len(json.dumps(value))
        return total
