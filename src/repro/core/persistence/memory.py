"""In-memory MVCC metadata store.

Each metastore keeps, per (table, key), an append-ordered list of
``(commit_version, value-or-None)`` pairs. A snapshot pinned at version V
sees, for each key, the newest pair with ``commit_version <= V``. Commits
take a per-metastore lock, CAS the metastore version, apply all ops at the
new version, and append to the change log — giving snapshot-isolated reads
and serializable writes at metastore granularity, exactly the contract the
paper's cache design assumes of its backing database.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core.persistence.store import (
    ChangeRecord,
    MetadataStore,
    Snapshot,
    WriteOp,
)
from repro.errors import (
    AlreadyExistsError,
    ConcurrentModificationError,
    NotFoundError,
)


@dataclass
class _MetastoreSlot:
    version: int = 0
    #: table -> key -> [(version, value-or-None), ...] ascending by version
    tables: dict[str, dict[str, list[tuple[int, Optional[dict]]]]] = field(
        default_factory=dict
    )
    changelog: list[ChangeRecord] = field(default_factory=list)
    lock: threading.RLock = field(default_factory=threading.RLock)


class _MemorySnapshot(Snapshot):
    def __init__(self, slot: _MetastoreSlot, metastore_id: str, version: int,
                 store: "InMemoryMetadataStore" = None):
        super().__init__(metastore_id, version)
        self._slot = slot
        self._store = store

    def get(self, table: str, key: str) -> Optional[dict[str, Any]]:
        with self._slot.lock:
            versions = self._slot.tables.get(table, {}).get(key)
            if not versions:
                return None
            value = _visible(versions, self.version)
            return copy.deepcopy(value) if value is not None else None

    def multi_get(self, table: str, keys: list[str]) -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        with self._slot.lock:
            rows = self._slot.tables.get(table, {})
            for key in keys:
                versions = rows.get(key)
                if not versions:
                    continue
                value = _visible(versions, self.version)
                if value is not None:
                    out[key] = copy.deepcopy(value)
        if self._store is not None:
            self._store.multi_get_count += 1
        return out

    def scan(self, table: str) -> Iterator[tuple[str, dict[str, Any]]]:
        with self._slot.lock:
            rows = self._slot.tables.get(table, {})
            # materialize under the lock for a consistent iteration
            out = []
            for key, versions in rows.items():
                value = _visible(versions, self.version)
                if value is not None:
                    out.append((key, copy.deepcopy(value)))
        if self._store is not None:
            self._store.scan_row_count += len(out)
        return iter(out)

    def scan_prefix(self, table: str, prefix: str):
        # no key ordering to exploit: this is a filtered full scan that
        # examines every row of the table (and is charged as one)
        with self._slot.lock:
            rows = self._slot.tables.get(table, {})
            examined = len(rows)
            out = []
            for key in sorted(k for k in rows if k.startswith(prefix)):
                value = _visible(rows[key], self.version)
                if value is not None:
                    out.append((key, copy.deepcopy(value)))
        if self._store is not None:
            self._store.scan_row_count += examined
        return iter(out)

    def scan_range(self, table: str, start: str, end):
        with self._slot.lock:
            rows = self._slot.tables.get(table, {})
            examined = len(rows)
            out = []
            keys = sorted(
                k for k in rows if k >= start and (end is None or k < end)
            )
            for key in keys:
                value = _visible(rows[key], self.version)
                if value is not None:
                    out.append((key, copy.deepcopy(value)))
        if self._store is not None:
            self._store.scan_row_count += examined
        return iter(out)

    def count(self, table: str, prefix: str = "") -> int:
        # cheaper than scan (no deepcopy) but still O(table size)
        with self._slot.lock:
            rows = self._slot.tables.get(table, {})
            examined = len(rows)
            counted = sum(
                1 for key, versions in rows.items()
                if key.startswith(prefix)
                and _visible(versions, self.version) is not None
            )
        if self._store is not None:
            self._store.scan_row_count += examined
        return counted


def _visible(versions: list[tuple[int, Optional[dict]]], at: int) -> Optional[dict]:
    """Newest value committed at or before ``at`` (None if deleted/absent)."""
    for version, value in reversed(versions):
        if version <= at:
            return value
    return None


class InMemoryMetadataStore(MetadataStore):
    """The default metadata backend for tests and benchmarks.

    ``read_cost_tracker`` counts logical DB reads (snapshot gets/scans and
    commits) so the cache benchmarks can attribute simulated latency to
    database round-trips.
    """

    def __init__(self):
        self._slots: dict[str, _MetastoreSlot] = {}
        self._global_lock = threading.RLock()
        self.read_count = 0
        self.commit_count = 0
        self.scan_row_count = 0
        self.multi_get_count = 0
        #: flat backend: never issues true range reads (fallback scans
        #: are charged to scan_row_count above)
        self.range_scan_count = 0

    def _slot(self, metastore_id: str) -> _MetastoreSlot:
        try:
            return self._slots[metastore_id]
        except KeyError:
            raise NotFoundError(f"no such metastore slot: {metastore_id}")

    # -- MetadataStore ------------------------------------------------------

    def create_metastore_slot(self, metastore_id: str) -> None:
        with self._global_lock:
            if metastore_id in self._slots:
                raise AlreadyExistsError(f"metastore slot exists: {metastore_id}")
            self._slots[metastore_id] = _MetastoreSlot()

    def metastore_ids(self) -> list[str]:
        with self._global_lock:
            return list(self._slots)

    def current_version(self, metastore_id: str) -> int:
        slot = self._slot(metastore_id)
        with slot.lock:
            return slot.version

    def snapshot(self, metastore_id: str, at_version: Optional[int] = None) -> Snapshot:
        slot = self._slot(metastore_id)
        with slot.lock:
            version = slot.version if at_version is None else at_version
            if version > slot.version:
                raise ConcurrentModificationError(
                    f"snapshot version {version} is ahead of committed {slot.version}"
                )
            self.read_count += 1
            return _MemorySnapshot(slot, metastore_id, version, store=self)

    def commit(self, metastore_id: str, expected_version: int, ops: list[WriteOp]) -> int:
        slot = self._slot(metastore_id)
        with slot.lock:
            if slot.version != expected_version:
                raise ConcurrentModificationError(
                    f"metastore {metastore_id}: expected version {expected_version}, "
                    f"found {slot.version}"
                )
            new_version = expected_version + 1
            for op in ops:
                table = slot.tables.setdefault(op.table, {})
                versions = table.setdefault(op.key, [])
                value = copy.deepcopy(op.value) if op.value is not None else None
                versions.append((new_version, value))
                slot.changelog.append(
                    ChangeRecord(
                        version=new_version,
                        table=op.table,
                        key=op.key,
                        deleted=op.value is None,
                    )
                )
            slot.version = new_version
            self.commit_count += 1
            return new_version

    def changes_since(self, metastore_id: str, from_version: int) -> list[ChangeRecord]:
        slot = self._slot(metastore_id)
        with slot.lock:
            return [c for c in slot.changelog if c.version > from_version]

    def compact(self, metastore_id: str, min_version: int) -> int:
        slot = self._slot(metastore_id)
        removed = 0
        with slot.lock:
            for table in slot.tables.values():
                for key in list(table):
                    versions = table[key]
                    # keep the newest version visible at min_version, plus
                    # everything after it
                    keep_from = 0
                    for i, (version, _) in enumerate(versions):
                        if version <= min_version:
                            keep_from = i
                    removed += keep_from
                    kept = versions[keep_from:]
                    # a sole tombstone older than min_version can go entirely
                    if len(kept) == 1 and kept[0][1] is None and kept[0][0] <= min_version:
                        removed += 1
                        del table[key]
                    else:
                        table[key] = kept
            slot.changelog = [c for c in slot.changelog if c.version > min_version]
        return removed

    # -- diagnostics ----------------------------------------------------------

    def row_version_count(self, metastore_id: str) -> int:
        """Total stored row versions (used by compaction tests)."""
        slot = self._slot(metastore_id)
        with slot.lock:
            return sum(
                len(versions)
                for table in slot.tables.values()
                for versions in table.values()
            )

    def approximate_size_bytes(self, metastore_id: str) -> int:
        """Rough serialized size of a metastore's live metadata.

        Used by the Figure 4 (working-set size) benchmark.
        """
        import json

        slot = self._slot(metastore_id)
        total = 0
        with slot.lock:
            for table in slot.tables.values():
                for versions in table.values():
                    value = versions[-1][1]
                    if value is not None:
                        total += len(json.dumps(value))
        return total
