"""Commit-DAG branching over the MVCC metadata store.

The store's history was a single line: one integer head per metastore,
every commit CASing it forward. This module generalizes that into a
commit DAG with *named branch refs*, implemented once against the public
:class:`~repro.core.persistence.store.MetadataStore` contract so all
three backends (memory / SQLite / treecat) support branching without a
line of backend-specific code:

* **Branch refs** live in a reserved table (:data:`BRANCHES_TABLE`),
  keyed ``{catalog}@{branch}``. A ref records the *fork version* (the
  main-history version the branch sees as its base), the branch's own
  *head version* (the global store version of its latest commit), and
  its parent branch — the commit-DAG edges.
* **Zero-copy forks**: creating a branch writes exactly one ref row.
  No rows are copied; the branch overlays branch-local MVCC rows (in
  per-branch overlay tables, ``{table}@{catalog}@{branch}``) on the
  shared base prefix, pinned at the fork version.
* **Copy-on-write commits**: :func:`commit_to_branch` rewrites a write
  batch into the branch's overlay tables — stamping every write with
  its branch — and bumps the ref's head, all in one atomic CAS commit
  against the same global version counter. Branch and main commits
  therefore serialize through the identical mechanism (and, on a
  replica group, replicate and fence through the identical mechanism).
* **Fall-through reads**: :class:`BranchSnapshot` resolves a row at
  ``(branch, version)`` by checking the overlay first (a branch-local
  tombstone hides the base row) and falling through to the base
  snapshot pinned at the fork point.

``main`` is not a ref row — it is the store's plain linear history, and
single-branch operation takes exactly the legacy code paths (no overlay
tables, no ref reads: a strict no-op).

Deletes need care: ``Snapshot.get`` returns ``None`` for both "never
written" and "MVCC-deleted", which cannot express "deleted *on this
branch* but alive on the base". Branch deletes are therefore sentinel
puts (:data:`TOMBSTONE_MARKER`), so the overlay distinguishes "no
branch-local opinion" (fall through) from "deleted here" (hide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.persistence.store import (
    ChangeRecord,
    MetadataStore,
    Snapshot,
    Tables,
    WriteOp,
)
from repro.errors import AlreadyExistsError, InvalidRequestError, NotFoundError

#: The default branch: the store's plain linear history. Never a ref row.
MAIN_BRANCH = "main"

#: Reserved table holding branch refs; the leading underscores keep it
#: out of every legacy table namespace.
BRANCHES_TABLE = Tables.BRANCHES

#: Separator in branch keys (``catalog@branch``) and overlay table names
#: (``entities@catalog@branch``). Base table and catalog names never
#: contain ``@``.
BRANCH_SEP = "@"

#: Sentinel marking a branch-local delete (see module docstring).
TOMBSTONE_MARKER = "__branch_tombstone__"

#: The base tables a branch can overlay (everything the catalog persists).
BASE_TABLES = (
    Tables.ENTITIES,
    Tables.GRANTS,
    Tables.TAGS,
    Tables.POLICIES,
    Tables.COMMITS,
    Tables.SHARES,
)

_MAX_REF_CAS_RETRIES = 8


# ---------------------------------------------------------------------------
# naming helpers
# ---------------------------------------------------------------------------


def branch_key(catalog: str, branch: str) -> str:
    """The ref key of ``branch`` forked under ``catalog``."""
    return f"{catalog}{BRANCH_SEP}{branch}"


def split_branch_key(bkey: str) -> tuple[str, str]:
    """``catalog@branch`` -> ``(catalog, branch)``."""
    catalog, sep, branch = bkey.partition(BRANCH_SEP)
    if not sep or not catalog or not branch:
        raise InvalidRequestError(f"malformed branch key: {bkey!r}")
    return catalog, branch


def validate_branch_name(branch: str) -> None:
    """Branch names share the securable-name alphabet minus separators."""
    if not branch or any(c in branch for c in (BRANCH_SEP, ".", "/", " ")):
        raise InvalidRequestError(f"invalid branch name: {branch!r}")
    if branch == MAIN_BRANCH:
        raise InvalidRequestError(f"{MAIN_BRANCH!r} is the implicit trunk")


def overlay_table(table: str, bkey: str) -> str:
    """The branch-local overlay table shadowing ``table`` on ``bkey``."""
    return f"{table}{BRANCH_SEP}{bkey}"


def split_overlay_table(table: str) -> Optional[tuple[str, str]]:
    """``entities@cat@dev`` -> ``("entities", "cat@dev")``; None otherwise."""
    base, sep, rest = table.partition(BRANCH_SEP)
    if not sep or BRANCH_SEP not in rest:
        return None
    return base, rest


def is_branch_table(table: str) -> bool:
    """True for overlay tables and the ref table — everything the
    single-branch (main) read path must never observe."""
    return BRANCH_SEP in table or table == BRANCHES_TABLE


def is_tombstone(value: Optional[dict[str, Any]]) -> bool:
    return isinstance(value, dict) and value.get(TOMBSTONE_MARKER) is True


def tombstone() -> dict[str, Any]:
    return {TOMBSTONE_MARKER: True}


# ---------------------------------------------------------------------------
# branch refs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BranchRef:
    """One edge of the commit DAG: a named branch and where it forked."""

    catalog: str
    branch: str
    fork_version: int
    head_version: int
    parent: str = MAIN_BRANCH
    created_at: float = 0.0

    @property
    def key(self) -> str:
        return branch_key(self.catalog, self.branch)

    def to_dict(self) -> dict[str, Any]:
        return {
            "catalog": self.catalog,
            "branch": self.branch,
            "fork_version": self.fork_version,
            "head_version": self.head_version,
            "parent": self.parent,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, value: dict[str, Any]) -> "BranchRef":
        return cls(
            catalog=value["catalog"],
            branch=value["branch"],
            fork_version=value["fork_version"],
            head_version=value["head_version"],
            parent=value.get("parent", MAIN_BRANCH),
            created_at=value.get("created_at", 0.0),
        )


def read_ref(snapshot: Snapshot, bkey: str) -> Optional[BranchRef]:
    value = snapshot.get(BRANCHES_TABLE, bkey)
    return BranchRef.from_dict(value) if value is not None else None


def require_ref(snapshot: Snapshot, bkey: str) -> BranchRef:
    ref = read_ref(snapshot, bkey)
    if ref is None:
        raise NotFoundError(f"no such branch: {bkey}")
    return ref


def list_refs(snapshot: Snapshot, catalog: Optional[str] = None) -> list[BranchRef]:
    """All branch refs (optionally one catalog's), sorted by key."""
    refs = [BranchRef.from_dict(v) for _, v in snapshot.scan(BRANCHES_TABLE)]
    if catalog is not None:
        refs = [r for r in refs if r.catalog == catalog]
    return sorted(refs, key=lambda r: r.key)


# ---------------------------------------------------------------------------
# head resolution (THE gate for layers above persistence)
# ---------------------------------------------------------------------------


def resolve_head(
    store: MetadataStore, metastore_id: str, branch: Optional[str] = None
) -> int:
    """The head version of ``branch`` (``None``/``main`` = the trunk).

    Layers above persistence must reach a head version through this
    helper (or a kernel primitive built on it) rather than calling
    ``store.current_version`` directly — ``tools/arch_lint.py`` rule 5
    enforces it, because a raw head read silently assumes a single
    linear history.
    """
    if branch is None or branch == MAIN_BRANCH:
        return store.current_version(metastore_id)
    ref = require_ref(store.snapshot(metastore_id), branch)
    return ref.head_version


# ---------------------------------------------------------------------------
# fall-through snapshot
# ---------------------------------------------------------------------------


class BranchSnapshot(Snapshot):
    """A branch's consistent read view: overlay rows over the fork base.

    ``version`` is the *global* store version the overlay is pinned at,
    so the optimistic commit loop CASes against it exactly as on main.
    The base snapshot is pinned at the branch's fork version — main
    commits after the fork are invisible, per the commit-DAG model.
    """

    has_tree_index = False  # overlays shadow the base tree index

    def __init__(self, base: Snapshot, overlay: Snapshot, bkey: str,
                 fork_version: int):
        super().__init__(base.metastore_id, overlay.version)
        self._base = base
        self._overlay = overlay
        self.branch = bkey
        self.fork_version = fork_version

    def get(self, table: str, key: str) -> Optional[dict[str, Any]]:
        value = self._overlay.get(overlay_table(table, self.branch), key)
        if value is not None:
            return None if is_tombstone(value) else value
        return self._base.get(table, key)

    def scan(self, table: str) -> Iterator[tuple[str, dict[str, Any]]]:
        merged = dict(self._base.scan(table))
        for key, value in self._overlay.scan(overlay_table(table, self.branch)):
            if is_tombstone(value):
                merged.pop(key, None)
            else:
                merged[key] = value
        return iter(sorted(merged.items()))

    def multi_get(self, table: str, keys: list[str]) -> dict[str, dict[str, Any]]:
        hits = self._overlay.multi_get(overlay_table(table, self.branch), keys)
        out: dict[str, dict[str, Any]] = {}
        missing: list[str] = []
        for key in keys:
            if key in hits:
                if not is_tombstone(hits[key]):
                    out[key] = hits[key]
            else:
                missing.append(key)
        if missing:
            out.update(self._base.multi_get(table, missing))
        return out


def branch_snapshot(
    store: MetadataStore,
    metastore_id: str,
    bkey: str,
    at_version: Optional[int] = None,
) -> BranchSnapshot:
    """Open a branch's read view, optionally ``AS OF`` a past version."""
    overlay = store.snapshot(metastore_id, at_version)
    ref = require_ref(overlay, bkey)
    base = store.snapshot(metastore_id, ref.fork_version)
    return BranchSnapshot(base, overlay, bkey, ref.fork_version)


# ---------------------------------------------------------------------------
# fork / copy-on-write commit / change replay
# ---------------------------------------------------------------------------


def create_branch_ops(
    snapshot: Snapshot,
    catalog: str,
    branch: str,
    created_at: float = 0.0,
    parent: str = MAIN_BRANCH,
) -> tuple[BranchRef, list[WriteOp]]:
    """The zero-copy fork: one ref row, forked at ``snapshot.version``."""
    validate_branch_name(branch)
    if parent != MAIN_BRANCH:
        raise InvalidRequestError("branches fork from main only")
    bkey = branch_key(catalog, branch)
    if read_ref(snapshot, bkey) is not None:
        raise AlreadyExistsError(f"branch already exists: {bkey}")
    ref = BranchRef(
        catalog=catalog,
        branch=branch,
        fork_version=snapshot.version,
        head_version=snapshot.version,
        parent=parent,
        created_at=created_at,
    )
    return ref, [WriteOp.put(BRANCHES_TABLE, bkey, ref.to_dict())]


def create_branch(
    store: MetadataStore,
    metastore_id: str,
    catalog: str,
    branch: str,
    created_at: float = 0.0,
) -> BranchRef:
    """Standalone fork (CAS-retried) for callers below the service layer."""
    from repro.errors import ConcurrentModificationError

    last: Optional[Exception] = None
    for _ in range(_MAX_REF_CAS_RETRIES):
        snapshot = store.snapshot(metastore_id)
        ref, ops = create_branch_ops(snapshot, catalog, branch, created_at)
        try:
            store.commit(metastore_id, snapshot.version, ops)
        except ConcurrentModificationError as exc:
            last = exc
            continue
        return ref
    raise ConcurrentModificationError(f"fork of {branch!r} kept conflicting: {last}")


def commit_to_branch(
    store: MetadataStore,
    metastore_id: str,
    bkey: str,
    expected_version: int,
    ops: list[WriteOp],
) -> int:
    """Copy-on-write commit: stamp ``ops`` with their branch and land them.

    Base-table writes are rewritten into the branch's overlay tables
    (deletes become sentinel tombstones) and the ref's head is bumped —
    one atomic CAS commit, so a branch commit serializes against every
    other commit (main or branch) on the shared version counter.
    """
    snapshot = store.snapshot(metastore_id)
    ref = require_ref(snapshot, bkey)
    rewritten: list[WriteOp] = []
    for op in ops:
        if is_branch_table(op.table):
            rewritten.append(op)  # already branch-addressed
            continue
        target = overlay_table(op.table, bkey)
        if op.value is None:
            rewritten.append(WriteOp.put(target, op.key, tombstone()))
        else:
            rewritten.append(WriteOp.put(target, op.key, op.value))
    new_ref = BranchRef(
        catalog=ref.catalog,
        branch=ref.branch,
        fork_version=ref.fork_version,
        head_version=expected_version + 1,
        parent=ref.parent,
        created_at=ref.created_at,
    )
    rewritten.append(WriteOp.put(BRANCHES_TABLE, bkey, new_ref.to_dict()))
    return store.commit(metastore_id, expected_version, rewritten)


def branch_changes_since(
    store: MetadataStore, metastore_id: str, bkey: str, from_version: int
) -> list[ChangeRecord]:
    """The branch's change log: overlay records renamed to base tables.

    This is what gives the hot-path caches their branch dimension — a
    per-branch bundle replays exactly the branch's own writes (main
    commits after the fork are invisible to the branch view, so they
    must not invalidate its entries).
    """
    out: list[ChangeRecord] = []
    for record in store.changes_since(metastore_id, from_version):
        split = split_overlay_table(record.table)
        if split is None or split[1] != bkey:
            continue
        out.append(
            ChangeRecord(
                version=record.version,
                table=split[0],
                key=record.key,
                deleted=record.deleted,
            )
        )
    return out


# ---------------------------------------------------------------------------
# diff / merge / delete
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BranchDiff:
    """What a merge would do: the branch's writes, main's writes since
    the fork, and their securable-level intersection (the conflicts)."""

    ref: BranchRef
    #: branch-local changes: ``(base table, key, value-or-None)``
    overlay: tuple[tuple[str, str, Optional[dict[str, Any]]], ...]
    #: ``(table, key)`` pairs main touched since the fork
    main_touched: tuple[tuple[str, str], ...]
    #: ``(table, key)`` pairs both sides touched — merge blockers
    conflicts: tuple[tuple[str, str], ...]


def diff_branch(store: MetadataStore, metastore_id: str, bkey: str) -> BranchDiff:
    """Securable-level three-way diff between a branch and main."""
    snapshot = store.snapshot(metastore_id)
    ref = require_ref(snapshot, bkey)
    overlay: list[tuple[str, str, Optional[dict[str, Any]]]] = []
    for table in BASE_TABLES:
        for key, value in snapshot.scan(overlay_table(table, bkey)):
            overlay.append((table, key, None if is_tombstone(value) else value))
    overlay.sort(key=lambda change: (change[0], change[1]))
    main_touched = sorted(
        {
            (record.table, record.key)
            for record in store.changes_since(metastore_id, ref.fork_version)
            if not is_branch_table(record.table)
        }
    )
    touched_set = set(main_touched)
    conflicts = tuple(
        (table, key) for table, key, _ in overlay if (table, key) in touched_set
    )
    return BranchDiff(
        ref=ref,
        overlay=tuple(overlay),
        main_touched=tuple(main_touched),
        conflicts=conflicts,
    )


def merge_ops(diff: BranchDiff) -> list[WriteOp]:
    """The write batch landing a *clean* merge on main: replay the
    branch's overlay onto the base tables, then drop the overlay rows
    and the ref — one atomic commit, so main's history shows the merge
    as a single commit (single-history-equivalent audit)."""
    bkey = diff.ref.key
    ops: list[WriteOp] = []
    for table, key, value in diff.overlay:
        if value is None:
            ops.append(WriteOp.delete(table, key))
        else:
            ops.append(WriteOp.put(table, key, value))
    for table, key, _ in diff.overlay:
        ops.append(WriteOp.delete(overlay_table(table, bkey), key))
    ops.append(WriteOp.delete(BRANCHES_TABLE, bkey))
    return ops


def delete_branch_ops(
    store: MetadataStore, metastore_id: str, bkey: str
) -> list[WriteOp]:
    """Drop a branch: its overlay rows and its ref, atomically."""
    snapshot = store.snapshot(metastore_id)
    require_ref(snapshot, bkey)
    ops: list[WriteOp] = []
    for table in BASE_TABLES:
        for key, _ in snapshot.scan(overlay_table(table, bkey)):
            ops.append(WriteOp.delete(overlay_table(table, bkey), key))
    ops.append(WriteOp.delete(BRANCHES_TABLE, bkey))
    return ops


__all__ = [
    "BASE_TABLES",
    "BRANCHES_TABLE",
    "BRANCH_SEP",
    "BranchDiff",
    "BranchRef",
    "BranchSnapshot",
    "MAIN_BRANCH",
    "TOMBSTONE_MARKER",
    "branch_changes_since",
    "branch_key",
    "branch_snapshot",
    "commit_to_branch",
    "create_branch",
    "create_branch_ops",
    "delete_branch_ops",
    "diff_branch",
    "is_branch_table",
    "is_tombstone",
    "list_refs",
    "merge_ops",
    "overlay_table",
    "read_ref",
    "require_ref",
    "resolve_head",
    "split_branch_key",
    "split_overlay_table",
    "tombstone",
    "validate_branch_name",
]
