"""ACID metadata persistence (paper section 4.5).

The paper's backend contract is small but strict: per-metastore snapshot
reads, serializable writes via a persistent *metastore version* that every
write transaction bumps with compare-and-swap, and a change log the cache
uses for selective invalidation. Two implementations are provided:

* :class:`~repro.core.persistence.memory.InMemoryMetadataStore` — an MVCC
  store used by tests and benchmarks,
* :class:`~repro.core.persistence.sqlite.SqliteMetadataStore` — a durable
  SQLite-backed store demonstrating that the contract maps onto a
  standard relational database, as in the production system,
* :class:`~repro.core.persistence.treecat.TreeCatMetadataStore` — a
  TreeCat-style hierarchical store with prefix-ordered keys, range
  scans, and a transactional tree index for list/resolve fast paths.
"""

from repro.core.persistence.store import (
    ChangeRecord,
    MetadataStore,
    Snapshot,
    WriteOp,
    Tables,
)
from repro.core.persistence.memory import InMemoryMetadataStore
from repro.core.persistence.sqlite import SqliteMetadataStore
from repro.core.persistence.treecat import TreeCatMetadataStore

__all__ = [
    "ChangeRecord",
    "InMemoryMetadataStore",
    "MetadataStore",
    "Snapshot",
    "SqliteMetadataStore",
    "Tables",
    "TreeCatMetadataStore",
    "WriteOp",
]
