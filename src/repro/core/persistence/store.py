"""The metadata-store contract every backend implements."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterator, Optional


class Tables:
    """Logical tables in the metadata store.

    Everything the catalog persists is a row ``(table, key) -> dict`` with
    MVCC versions; the higher layers never see backend details (paper:
    "the data model is persisted in a standard relational database with
    the implementation detail hidden from the layers above").
    """

    ENTITIES = "entities"
    GRANTS = "grants"
    TAGS = "tags"
    POLICIES = "policies"          # FGAC row filters / column masks, ABAC rules
    COMMITS = "commits"            # catalog-owned table commit pointers
    SHARES = "share_bindings"      # share -> asset membership rows
    #: branch refs for the commit DAG (see ``persistence.branching``);
    #: reserved name so it never collides with a legacy table
    BRANCHES = "__branches__"


@dataclass(frozen=True)
class WriteOp:
    """One mutation inside a serializable commit. ``value=None`` deletes."""

    table: str
    key: str
    value: Optional[dict[str, Any]]

    @classmethod
    def put(cls, table: str, key: str, value: dict[str, Any]) -> "WriteOp":
        return cls(table=table, key=key, value=value)

    @classmethod
    def delete(cls, table: str, key: str) -> "WriteOp":
        return cls(table=table, key=key, value=None)


@dataclass(frozen=True)
class ChangeRecord:
    """A change-log entry: which row changed at which metastore version.

    This feeds both the metadata change-event stream (discovery catalogs,
    section 4.4) and the cache's selective invalidation (section 4.5).
    """

    version: int
    table: str
    key: str
    deleted: bool


class Snapshot(abc.ABC):
    """A consistent read view of one metastore, pinned at a version.

    All reads through a snapshot observe exactly the rows committed at or
    before ``version`` — the paper's metastore-granularity snapshot
    isolation.
    """

    #: True when the backend maintains the hierarchical
    #: ``(parent_id, kind, name) -> entity_id`` tree index, making
    #: :meth:`child_id` / :meth:`children_ids` / :meth:`count_children`
    #: single range reads (TreeCat-style backends). Flat backends leave
    #: this False and callers fall back to filtered scans.
    has_tree_index = False

    def __init__(self, metastore_id: str, version: int):
        self.metastore_id = metastore_id
        self.version = version

    @abc.abstractmethod
    def get(self, table: str, key: str) -> Optional[dict[str, Any]]:
        """Read one row, or None if absent/deleted as of this snapshot."""

    @abc.abstractmethod
    def scan(self, table: str) -> Iterator[tuple[str, dict[str, Any]]]:
        """Iterate all live rows of a table as of this snapshot."""

    def multi_get(self, table: str, keys: list[str]) -> dict[str, dict[str, Any]]:
        """Read many rows in one round trip; absent/deleted keys are omitted.

        The point of the batched contract is the hot path: the cache
        node's selective reconcile and the resolver's dependency closure
        issue one ``multi_get`` where they used to issue N ``get``s, and
        the latency model charges them one round trip. Backends override
        this with a genuinely batched implementation; the default
        preserves the semantics for simple backends.
        """
        out: dict[str, dict[str, Any]] = {}
        for key in keys:
            value = self.get(table, key)
            if value is not None:
                out[key] = value
        return out

    # -- range reads (TreeCat-style prefix-ordered access) -------------------

    def scan_prefix(
        self, table: str, prefix: str
    ) -> Iterator[tuple[str, dict[str, Any]]]:
        """Live rows whose key starts with ``prefix``, ascending key order.

        Prefix-ordered backends satisfy this with one range read over
        their sorted key space; the default falls back to a filtered full
        scan so flat backends stay correct (they just keep paying the
        O(table size) cost the range-read backends avoid).
        """
        matched = [kv for kv in self.scan(table) if kv[0].startswith(prefix)]
        matched.sort(key=lambda kv: kv[0])
        return iter(matched)

    def scan_range(
        self, table: str, start: str, end: Optional[str]
    ) -> Iterator[tuple[str, dict[str, Any]]]:
        """Live rows with ``start <= key < end``, ascending key order.

        ``end=None`` means unbounded. Default: filtered full scan.
        """
        matched = [
            kv for kv in self.scan(table)
            if kv[0] >= start and (end is None or kv[0] < end)
        ]
        matched.sort(key=lambda kv: kv[0])
        return iter(matched)

    def count(self, table: str, prefix: str = "") -> int:
        """Number of live rows (optionally under a key prefix).

        Backends override with a counting read that skips row
        materialization entirely; the default walks the scan.
        """
        if prefix:
            return sum(1 for _ in self.scan_prefix(table, prefix))
        return sum(1 for _ in self.scan(table))

    # -- tree-index reads (meaningful only when ``has_tree_index``) ----------

    def child_id(self, parent_id: str, kind: str, name: str) -> Optional[str]:
        """Id of the ACTIVE entity ``(parent_id, kind, name)``, or None.

        Flat backends return None (callers must fall back to a scan).
        """
        return None

    def children_ids(
        self,
        parent_id: str,
        kind: Optional[str] = None,
        include_deleted: bool = False,
    ) -> Optional[list[str]]:
        """Entity ids of ``parent_id``'s direct children via the tree
        index (one range read), or None when the backend has no index.

        ``include_deleted`` also returns soft-deleted/provisioning
        children — subtree exports need every row, not just the visible
        namespace.
        """
        return None

    def count_children(
        self, parent_id: str, kind: Optional[str] = None
    ) -> Optional[int]:
        """Range-count of ACTIVE children, or None without a tree index."""
        return None


class MetadataStore(abc.ABC):
    """Backend contract: versioned per-metastore row storage.

    Writes are serializable at metastore granularity: ``commit`` atomically
    applies a batch of ops and bumps the metastore version, conditioned on
    the caller's expected version (compare-and-swap). A failed CAS raises
    :class:`~repro.errors.ConcurrentModificationError` and the caller
    (typically a cache node) must reconcile and retry.
    """

    @abc.abstractmethod
    def create_metastore_slot(self, metastore_id: str) -> None:
        """Initialize version tracking for a new metastore (version 0)."""

    @abc.abstractmethod
    def metastore_ids(self) -> list[str]:
        """All metastores known to the store."""

    @abc.abstractmethod
    def current_version(self, metastore_id: str) -> int:
        """The latest committed metastore version."""

    @abc.abstractmethod
    def snapshot(self, metastore_id: str, at_version: Optional[int] = None) -> Snapshot:
        """Open a snapshot at the current (or a specific past) version."""

    @abc.abstractmethod
    def commit(
        self,
        metastore_id: str,
        expected_version: int,
        ops: list[WriteOp],
    ) -> int:
        """Atomically apply ``ops`` if the version CAS succeeds.

        Returns the new metastore version (``expected_version + 1``).
        """

    @abc.abstractmethod
    def changes_since(self, metastore_id: str, from_version: int) -> list[ChangeRecord]:
        """Change-log entries with version > ``from_version``, in order."""

    @abc.abstractmethod
    def compact(self, metastore_id: str, min_version: int) -> int:
        """Drop row versions not visible at or after ``min_version``.

        Returns the number of row versions removed. Backends keep at least
        the newest version of every live row.
        """
