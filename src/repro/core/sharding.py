"""Metastore-to-node sharding (paper section 5).

"Databricks UC servers are sharded using an internal sharding service
that, similar to Slicer, provides best-effort metastore-to-node
assignments with no hard guarantees."

Assignments use rendezvous (highest-random-weight) hashing, so node
membership changes move only the affected metastores. Crucially, the
assignment is *best effort*: two nodes may transiently both believe they
own a metastore. Correctness never depends on the sharding service —
the metastore-version CAS in the persistence layer detects dual
ownership and forces the stale node to reconcile (section 4.5).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cache.node import MetastoreCacheNode
from repro.core.model.registry import AssetTypeRegistry
from repro.core.persistence.store import MetadataStore
from repro.errors import InvalidRequestError, NotFoundError


def _score(node: str, metastore_id: str) -> int:
    digest = hashlib.sha256(f"{node}:{metastore_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ShardingService:
    """Best-effort rendezvous-hash assignment of metastores to nodes."""

    def __init__(self):
        self._nodes: set[str] = set()
        self.generation = 0
        #: metastore_id -> owner, valid for the current generation only
        #: (routing must not recompute a sha256 per node per request)
        self._owner_memo: dict[str, str] = {}
        #: explicit key -> node overrides (rebalancer cutovers, renames)
        self._pins: dict[str, str] = {}
        #: the membership set, memo and pin table are consulted on every
        #: routed request — keep them consistent under real threads
        self._lock = threading.Lock()

    def add_node(self, name: str) -> None:
        with self._lock:
            if name in self._nodes:
                raise InvalidRequestError(f"node already registered: {name}")
            self._nodes.add(name)
            self.generation += 1
            self._owner_memo.clear()

    def remove_node(self, name: str) -> None:
        with self._lock:
            if name not in self._nodes:
                raise NotFoundError(f"no such node: {name}")
            self._nodes.remove(name)
            self.generation += 1
            self._owner_memo.clear()
            self._pins = {
                key: node for key, node in self._pins.items() if node != name
            }

    def nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._nodes)

    def pin(self, key: str, node: str) -> None:
        """Override the hash assignment of one key (best-effort, like the
        rest of the directory): used by the rebalancer at cutover and by
        catalog renames whose new name hashes elsewhere."""
        with self._lock:
            if node not in self._nodes:
                raise NotFoundError(f"no such node: {node}")
            self._pins[key] = node

    def unpin(self, key: str) -> None:
        with self._lock:
            self._pins.pop(key, None)

    def pinned(self) -> dict[str, str]:
        with self._lock:
            return dict(self._pins)

    def owner_of(self, metastore_id: str) -> str:
        """The node currently assigned to a metastore."""
        with self._lock:
            pinned = self._pins.get(metastore_id)
            if pinned is not None:
                return pinned
            owner = self._owner_memo.get(metastore_id)
            if owner is not None:
                return owner
            if not self._nodes:
                raise NotFoundError("no nodes registered")
            owner = max(self._nodes, key=lambda n: _score(n, metastore_id))
            self._owner_memo[metastore_id] = owner
            return owner

    def assignment(self, metastore_ids: list[str]) -> dict[str, str]:
        return {mid: self.owner_of(mid) for mid in metastore_ids}

    def load(self, metastore_ids: list[str]) -> dict[str, int]:
        """How many metastores each node owns (balance diagnostics)."""
        counts = {node: 0 for node in self._nodes}
        for mid in metastore_ids:
            counts[self.owner_of(mid)] += 1
        return counts


@dataclass
class _ServerNode:
    name: str
    caches: dict[str, MetastoreCacheNode] = field(default_factory=dict)


class ShardedCatalogCluster:
    """A set of catalog server nodes sharing one backing store.

    Routes each metastore's traffic to its assigned node's cache. Because
    assignments are best-effort, a routing race can send writes for the
    same metastore through two nodes — the test suite demonstrates that
    the version CAS keeps the data correct and both caches converge.
    """

    def __init__(self, store: MetadataStore, registry: AssetTypeRegistry,
                 clock=None):
        self._store = store
        self._registry = registry
        self._clock = clock
        self._sharding = ShardingService()
        self._servers: dict[str, _ServerNode] = {}

    @property
    def sharding(self) -> ShardingService:
        return self._sharding

    def add_server(self, name: str) -> None:
        self._sharding.add_node(name)
        self._servers[name] = _ServerNode(name)

    def remove_server(self, name: str) -> None:
        self._sharding.remove_node(name)
        self._servers.pop(name, None)

    def cache_for(self, metastore_id: str,
                  node_name: Optional[str] = None) -> MetastoreCacheNode:
        """The cache node serving a metastore — normally on its assigned
        server; pass ``node_name`` to simulate a stale router."""
        name = node_name or self._sharding.owner_of(metastore_id)
        server = self._servers.get(name)
        if server is None:
            raise NotFoundError(f"no such server: {name}")
        cache = server.caches.get(metastore_id)
        if cache is None:
            cache = MetastoreCacheNode(
                self._store, metastore_id, self._registry, clock=self._clock
            )
            cache.warm()
            server.caches[metastore_id] = cache
        return cache

    def owners_holding(self, metastore_id: str) -> list[str]:
        """Servers that currently have a cache for the metastore (dual
        ownership shows up as more than one entry)."""
        return sorted(
            name for name, server in self._servers.items()
            if metastore_id in server.caches
        )
