"""Iceberg REST Catalog facade over Unity Catalog (paper sections 1, 2).

"the Iceberg REST Catalog interface [provides] access to the UC catalog
functionality to Iceberg clients."

Endpoints follow the REST-catalog resource shapes: namespaces are
``(catalog, schema)`` pairs, ``load_table`` returns table metadata plus
vended storage credentials in the response ``config`` — UC governance
(grants, auditing, credential scoping) applies unchanged because every
endpoint delegates to the same service entry points.

Tables are served if they are Iceberg-native or Delta with UniForm
enabled (translated metadata).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel, TemporaryCredential
from repro.core.model.entity import SecurableKind
from repro.core.uniform import UniformConverter, delta_snapshot_to_iceberg_metadata
from repro.deltalog.log import DeltaLog
from repro.errors import InvalidRequestError, NotFoundError


@dataclass
class LoadTableResult:
    """The ``LoadTableResponse`` of the REST spec."""

    metadata: dict
    config: dict
    credential: TemporaryCredential


class IcebergRestCatalog:
    """The /v1/namespaces/... surface, bound to one metastore."""

    def __init__(self, service, metastore_id: str):
        self._service = service
        self._metastore_id = metastore_id

    # -- namespaces ------------------------------------------------------------

    def list_namespaces(self, principal: str) -> list[tuple[str, str]]:
        """All (catalog, schema) namespaces visible to the caller."""
        out = []
        catalogs = self._service.list_securables(
            self._metastore_id, principal, SecurableKind.CATALOG
        )
        for catalog in catalogs:
            schemas = self._service.list_securables(
                self._metastore_id, principal, SecurableKind.SCHEMA, catalog.name
            )
            out.extend((catalog.name, schema.name) for schema in schemas)
        return out

    def namespace_exists(self, principal: str, namespace: tuple[str, str]) -> bool:
        try:
            self._service.get_securable(
                self._metastore_id, principal, SecurableKind.SCHEMA,
                ".".join(namespace),
            )
            return True
        except Exception:
            return False

    # -- tables -----------------------------------------------------------------

    def list_tables(self, principal: str, namespace: tuple[str, str]) -> list[str]:
        tables = self._service.list_securables(
            self._metastore_id, principal, SecurableKind.TABLE,
            ".".join(namespace),
        )
        return [t.name for t in tables]

    def table_exists(self, principal: str, namespace: tuple[str, str],
                     name: str) -> bool:
        try:
            self._service.get_securable(
                self._metastore_id, principal, SecurableKind.TABLE,
                ".".join(namespace) + f".{name}",
            )
            return True
        except Exception:
            return False

    def load_table(
        self, principal: str, namespace: tuple[str, str], name: str
    ) -> LoadTableResult:
        """Serve Iceberg metadata + a read credential for one table."""
        full_name = ".".join(namespace) + f".{name}"
        entity = self._service.get_securable(
            self._metastore_id, principal, SecurableKind.TABLE, full_name
        )
        fmt = entity.spec.get("format")
        uniform = bool(entity.spec.get("uniform_enabled"))
        if fmt != "ICEBERG" and not uniform:
            raise InvalidRequestError(
                f"{full_name} is {fmt} without UniForm; not Iceberg-readable"
            )
        if not entity.storage_path:
            raise NotFoundError(f"{full_name} has no storage")
        credential = self._service.vend_credentials(
            self._metastore_id, principal, SecurableKind.TABLE, full_name,
            AccessLevel.READ,
        )
        client = StorageClient(
            self._service.object_store, self._service.sts, credential
        )
        root = StoragePath.parse(entity.storage_path)
        converter = UniformConverter(client, root)
        metadata = converter.current_metadata()
        if metadata is None:
            # translate on demand (UniForm runs asynchronously; first
            # Iceberg read may trigger the initial conversion)
            snapshot = DeltaLog(client, root).snapshot()
            metadata = delta_snapshot_to_iceberg_metadata(snapshot, root.url())
        return LoadTableResult(
            metadata=metadata,
            config={"uc.table-id": entity.id, "uc.format": fmt or ""},
            credential=credential,
        )
