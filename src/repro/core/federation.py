"""Catalog federation (paper section 4.2.4).

An administrator creates a *connection* securable holding the foreign
catalog's coordinates/credentials, then a *foreign catalog* in UC that
mirrors one database of the foreign catalog. Mirroring is **on demand**:
when a query (or listing) touches a table in the federated catalog, its
metadata is fetched from the foreign catalog and written into UC as a
FOREIGN table, so UC-governed engines can access the data under UC
governance without copying it.

Mirroring is performed by the *engine* (as in the current production
implementation): the engine already has network access to the foreign
catalog, at the cost that thin clients may see stale metadata until some
engine mirrors it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.core.model.entity import Entity, SecurableKind
from repro.errors import FederationError, NotFoundError, TransientError
from repro.resilience import CircuitBreaker


@dataclass(frozen=True)
class ForeignTableInfo:
    """What a foreign catalog reports about one table."""

    database: str
    name: str
    columns: list[dict]
    location: Optional[str]
    source: str  # e.g. HIVE_METASTORE, SNOWFLAKE
    is_view: bool = False
    view_text: Optional[str] = None


class ForeignCatalogClient(Protocol):
    """The minimal client surface federation needs from a foreign catalog."""

    def list_databases(self) -> list[str]: ...

    def list_tables(self, database: str) -> list[str]: ...

    def get_table(self, database: str, name: str) -> ForeignTableInfo: ...

    def read_rows(self, database: str, name: str) -> list[dict]: ...


class HmsForeignClient:
    """Adapter presenting a :class:`~repro.hms.metastore.HiveMetastore`
    as a foreign catalog."""

    def __init__(self, hms, reader=None):
        """``reader(location) -> rows`` supplies data access for engine
        reads of foreign tables (the engine's own path to the data)."""
        self._hms = hms
        self._reader = reader

    def list_databases(self) -> list[str]:
        return self._hms.get_all_databases()

    def list_tables(self, database: str) -> list[str]:
        return self._hms.get_all_tables(database)

    def get_table(self, database: str, name: str) -> ForeignTableInfo:
        table = self._hms.get_table(database, name)
        return ForeignTableInfo(
            database=database,
            name=name,
            columns=list(table.columns),
            location=table.storage.location if table.storage else None,
            source="HIVE_METASTORE",
            is_view=table.table_type == "VIRTUAL_VIEW",
            view_text=table.view_text,
        )

    def read_rows(self, database: str, name: str) -> list[dict]:
        if self._reader is None:
            raise FederationError("no data reader configured for this connection")
        table = self._hms.get_table(database, name)
        if table.storage is None:
            raise FederationError(f"{database}.{name} has no storage location")
        return self._reader(table.storage.location)


@dataclass
class MirrorStats:
    tables_mirrored: int = 0
    tables_refreshed: int = 0
    foreign_fetches: int = 0
    foreign_failures: int = 0
    stale_mirrors_served: int = 0


class CatalogFederator:
    """Creates federated catalogs and performs on-demand mirroring.

    Foreign catalogs are the least reliable dependency the service has
    (somebody else's metastore over somebody else's network), so foreign
    fetches run behind an optional :class:`~repro.resilience.CircuitBreaker`
    and degrade gracefully: when the foreign side is down — or the breaker
    is open — a previously mirrored table is served stale rather than
    failing the query.
    """

    def __init__(self, service, breaker: Optional[CircuitBreaker] = None,
                 faults=None):
        """``breaker`` guards every foreign-catalog call; ``faults`` (a
        :class:`~repro.faults.FaultInjector`) injects on the
        ``federation.fetch`` operation."""
        self._service = service
        self._clients: dict[tuple[str, str], ForeignCatalogClient] = {}
        self._breaker = breaker
        self._faults = faults
        self.stats = MirrorStats()

    def _foreign_call(self, fn):
        """One guarded call to the foreign catalog."""
        def attempt():
            if self._faults is not None:
                self._faults.raise_for("federation.fetch")
            return fn()

        try:
            if self._breaker is not None:
                return self._breaker.call(attempt)
            return attempt()
        except (FederationError, TransientError):
            self.stats.foreign_failures += 1
            raise

    # -- setup ------------------------------------------------------------------

    def register_connection(
        self,
        metastore_id: str,
        principal: str,
        connection_name: str,
        connection_type: str,
        client: ForeignCatalogClient,
    ) -> Entity:
        """Create the connection securable and bind its live client.

        (In production the connection stores endpoint + credentials; the
        in-process client object stands in for that network identity.)
        """
        entity = self._service.create_securable(
            metastore_id,
            principal,
            SecurableKind.CONNECTION,
            connection_name,
            spec={"connection_type": connection_type},
        )
        self._clients[(metastore_id, connection_name)] = client
        return entity

    def create_foreign_catalog(
        self,
        metastore_id: str,
        principal: str,
        catalog_name: str,
        connection_name: str,
        foreign_database: str,
    ) -> Entity:
        """Mount one foreign database as a UC catalog."""
        client = self._client(metastore_id, connection_name)
        if foreign_database not in self._foreign_call(client.list_databases):
            raise FederationError(
                f"foreign database {foreign_database!r} not found"
            )
        catalog = self._service.create_securable(
            metastore_id,
            principal,
            SecurableKind.CATALOG,
            catalog_name,
            spec={
                "catalog_type": "FOREIGN",
                "connection_name": connection_name,
                "foreign_database": foreign_database,
            },
        )
        # a federated catalog mirrors into a single default schema named
        # after the foreign database
        self._service.create_securable(
            metastore_id, principal, SecurableKind.SCHEMA,
            f"{catalog_name}.{foreign_database}",
        )
        return catalog

    def _client(self, metastore_id: str, connection_name: str) -> ForeignCatalogClient:
        try:
            return self._clients[(metastore_id, connection_name)]
        except KeyError:
            raise FederationError(f"no client bound for connection {connection_name!r}")

    def _catalog_binding(self, metastore_id: str, catalog_name: str):
        catalog = self._service.resolve_name(
            metastore_id, SecurableKind.CATALOG, catalog_name
        )
        if catalog.spec.get("catalog_type") != "FOREIGN":
            raise FederationError(f"{catalog_name} is not a federated catalog")
        connection = catalog.spec["connection_name"]
        database = catalog.spec["foreign_database"]
        return self._client(metastore_id, connection), database

    # -- on-demand mirroring ---------------------------------------------------------

    def mirror_table(
        self,
        metastore_id: str,
        principal: str,
        catalog_name: str,
        table_name: str,
    ) -> Entity:
        """Fetch one table's metadata from the foreign catalog and mirror
        it into the federated catalog (create or refresh).

        Degrades gracefully: if the foreign catalog is unavailable (or
        the breaker is open) and the table was mirrored before, the stale
        mirror is returned — federation prefers bounded staleness over
        unavailability, matching the paper's on-demand mirroring
        semantics where thin clients may see stale metadata anyway."""
        client, database = self._catalog_binding(metastore_id, catalog_name)
        full_name = f"{catalog_name}.{database}.{table_name}"
        service = self._service
        try:
            existing = service.resolve_name(metastore_id, SecurableKind.TABLE, full_name)
        except NotFoundError:
            existing = None
        try:
            info = self._foreign_call(lambda: client.get_table(database, table_name))
        except (FederationError, TransientError):
            if existing is not None:
                self.stats.stale_mirrors_served += 1
                return existing
            raise
        self.stats.foreign_fetches += 1
        spec = {
            "table_type": "FOREIGN",
            "foreign_source": info.source,
            "columns": info.columns,
        }
        if existing is None:
            entity = service.create_securable(
                metastore_id, principal, SecurableKind.TABLE, full_name, spec=spec,
                properties={"foreign_location": info.location or ""},
            )
            self.stats.tables_mirrored += 1
            return entity
        entity = service.update_securable(
            metastore_id, principal, SecurableKind.TABLE, full_name,
            spec_changes={"columns": info.columns},
            properties={"foreign_location": info.location or ""},
        )
        self.stats.tables_refreshed += 1
        return entity

    def mirror_schema(
        self, metastore_id: str, principal: str, catalog_name: str
    ) -> list[Entity]:
        """Mirror all tables of the foreign database (triggered by listing)."""
        client, database = self._catalog_binding(metastore_id, catalog_name)
        tables = self._foreign_call(lambda: client.list_tables(database))
        return [
            self.mirror_table(metastore_id, principal, catalog_name, table)
            for table in tables
        ]

    # -- engine integration ------------------------------------------------------------

    def foreign_reader(self, metastore_id: str):
        """A reader callable for :class:`~repro.engine.session.EngineSession`
        that serves FOREIGN table scans from the foreign system."""

        def read(asset) -> list[dict]:
            catalog_name, database, table = asset.full_name.split(".", 2)
            client, bound_database = self._catalog_binding(metastore_id, catalog_name)
            return self._foreign_call(lambda: client.read_rows(bound_database, table))

        return read
