"""Metadata change events (paper section 4.4).

"Whenever metadata is modified, the core service propagates change
events, which are consumed by second-tier services to update their
indexes, graphs, or lineage models."

The bus keeps a per-metastore ordered log; consumers poll with a cursor
(offset) so each consumer independently tracks its own progress — the
push/pull hybrid that lets discovery catalogs stay fresh without polling
the operational catalog itself.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Optional


class ChangeType(enum.Enum):
    CREATED = "CREATED"
    UPDATED = "UPDATED"
    DELETED = "DELETED"
    PURGED = "PURGED"
    GRANT_CHANGED = "GRANT_CHANGED"
    TAG_CHANGED = "TAG_CHANGED"
    POLICY_CHANGED = "POLICY_CHANGED"
    COMMIT = "COMMIT"  # table-format commit on a catalog-owned table


@dataclass(frozen=True)
class ChangeEvent:
    """One metadata change, stamped with the metastore version it made."""

    sequence: int
    metastore_id: str
    metastore_version: int
    change: ChangeType
    securable_id: str
    securable_kind: str
    securable_name: str
    timestamp: float
    details: dict[str, Any] = field(default_factory=dict)


class ChangeEventBus:
    """Ordered, replayable per-metastore event logs with consumer cursors."""

    def __init__(self):
        self._lock = threading.RLock()
        self._logs: dict[str, list[ChangeEvent]] = {}
        self._cursors: dict[tuple[str, str], int] = {}

    def publish(
        self,
        metastore_id: str,
        metastore_version: int,
        change: ChangeType,
        securable_id: str,
        securable_kind: str,
        securable_name: str,
        timestamp: float,
        details: Optional[dict[str, Any]] = None,
    ) -> ChangeEvent:
        with self._lock:
            log = self._logs.setdefault(metastore_id, [])
            event = ChangeEvent(
                sequence=len(log),
                metastore_id=metastore_id,
                metastore_version=metastore_version,
                change=change,
                securable_id=securable_id,
                securable_kind=securable_kind,
                securable_name=securable_name,
                timestamp=timestamp,
                details=dict(details or {}),
            )
            log.append(event)
            return event

    def poll(
        self, metastore_id: str, consumer: str, max_events: int = 1000
    ) -> list[ChangeEvent]:
        """Return (and advance past) unseen events for ``consumer``."""
        with self._lock:
            log = self._logs.get(metastore_id, [])
            cursor_key = (metastore_id, consumer)
            cursor = self._cursors.get(cursor_key, 0)
            events = log[cursor:cursor + max_events]
            self._cursors[cursor_key] = cursor + len(events)
            return events

    def peek(self, metastore_id: str, since_sequence: int = 0) -> list[ChangeEvent]:
        """Read without advancing any cursor."""
        with self._lock:
            return list(self._logs.get(metastore_id, [])[since_sequence:])

    def lag(self, metastore_id: str, consumer: str) -> int:
        """How many events the consumer has not yet seen."""
        with self._lock:
            log = self._logs.get(metastore_id, [])
            cursor = self._cursors.get((metastore_id, consumer), 0)
            return len(log) - cursor
