"""REST API layer.

Unity Catalog's openness claim rests on a documented REST surface; this
module maps HTTP-shaped requests onto the service facade. It is transport
agnostic: :class:`RestApi.handle` takes ``(method, path, params, body,
principal)`` and returns ``(status, json-able dict)``, so the same router
serves the in-process client used by tests and the real HTTP server in
:mod:`repro.core.service.http_server`.

Authentication is the upstream gateway's job (paper section 3.4); the
caller principal arrives as a header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.cloudstore.sts import AccessLevel
from repro.core.auth.privileges import Privilege
from repro.core.model.entity import Entity, SecurableKind
from repro.errors import (
    InvalidRequestError,
    NotFoundError,
    UnityCatalogError,
)

_STATUS = {
    "RESOURCE_DOES_NOT_EXIST": 404,
    "RESOURCE_ALREADY_EXISTS": 409,
    "INVALID_PARAMETER_VALUE": 400,
    "PERMISSION_DENIED": 403,
    "UNTRUSTED_ENGINE": 403,
    "PATH_CONFLICT": 409,
    "CONCURRENT_MODIFICATION": 409,
    "TRANSACTION_CONFLICT": 409,
    "CREDENTIAL_DENIED": 403,
    "FEDERATION_ERROR": 502,
    "THROTTLED": 429,
    "STORAGE_UNAVAILABLE": 503,
    "TEMPORARILY_UNAVAILABLE": 503,
    "CIRCUIT_OPEN": 503,
    "DEADLINE_EXCEEDED": 504,
    "INTERNAL": 500,
}

_KIND_BY_RESOURCE = {
    "catalogs": SecurableKind.CATALOG,
    "schemas": SecurableKind.SCHEMA,
    "tables": SecurableKind.TABLE,
    "volumes": SecurableKind.VOLUME,
    "functions": SecurableKind.FUNCTION,
    "models": SecurableKind.REGISTERED_MODEL,
    "model-versions": SecurableKind.MODEL_VERSION,
    "storage-credentials": SecurableKind.STORAGE_CREDENTIAL,
    "external-locations": SecurableKind.EXTERNAL_LOCATION,
    "connections": SecurableKind.CONNECTION,
    "shares": SecurableKind.SHARE,
    "recipients": SecurableKind.RECIPIENT,
}


@dataclass
class TextResponse:
    """A non-JSON response body — used for the Prometheus text format."""

    body: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


def _entity_json(entity: Entity) -> dict:
    return entity.to_dict()


def _credential_json(credential) -> dict:
    return {
        "token": credential.token,
        "scope": credential.scope.url(),
        "access_level": credential.level.value,
        "expires_at": credential.expires_at,
    }


class RestApi:
    """Routes REST requests to the catalog service.

    ``search_service`` is optional: when a discovery search service is
    attached, the ``/search`` route is served (second-tier services are
    deployed separately from the core service, section 4.4).
    """

    def __init__(self, service, search_service=None):
        self._service = service
        self._search = search_service

    # -- public entry point ----------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        *,
        principal: str,
        params: Optional[dict[str, str]] = None,
        body: Optional[dict[str, Any]] = None,
    ) -> tuple[int, Any]:
        """Dispatch one request; returns (HTTP status, response body).

        The body is a JSON-able dict for every route except ``/metrics``,
        which returns a :class:`TextResponse`."""
        params = params or {}
        body = body or {}
        try:
            return self._route(method.upper(), path.strip("/"), principal,
                               params, body)
        except UnityCatalogError as exc:
            return _STATUS.get(exc.code, 500), exc.to_dict()

    # -- routing -----------------------------------------------------------------

    def _route(
        self, method: str, path: str, principal: str,
        params: dict, body: dict,
    ) -> tuple[int, Any]:
        segments = [s for s in path.split("/") if s]
        # observability endpoints live outside the /api tree, like the
        # operational endpoints of most services
        if segments == ["metrics"]:
            return self._metrics_route(method)
        if segments and segments[0] == "traces":
            return self._traces_route(method, segments[1:])
        if not segments or segments[0] != "api":
            raise NotFoundError(f"unknown route: /{path}")
        # /api/2.1/unity-catalog/<resource>[/<name>]
        if len(segments) < 4 or segments[2] != "unity-catalog":
            raise NotFoundError(f"unknown route: /{path}")
        resource = segments[3]
        rest = segments[4:]

        if resource == "metastores":
            return self._metastores(method, rest, principal, body)
        if resource == "temporary-credentials":
            return self._temporary_credentials(method, principal, params, body)
        if resource == "resolve":
            return self._resolve(method, principal, params, body)
        if resource == "grants":
            return self._grants(method, rest, principal, params, body)
        if resource == "information-schema":
            return self._information_schema(method, principal, params, body)
        if resource == "lineage":
            return self._lineage(method, principal, params)
        if resource == "search":
            return self._search_route(method, principal, params, body)
        if resource in _KIND_BY_RESOURCE:
            return self._securables(
                _KIND_BY_RESOURCE[resource], method, rest, principal, params, body
            )
        raise NotFoundError(f"unknown resource: {resource}")

    def _metastore_id(self, params: dict, body: dict) -> str:
        metastore = params.get("metastore") or body.get("metastore")
        if not metastore:
            raise InvalidRequestError("missing 'metastore' parameter")
        try:
            return self._service.metastore_id(metastore)
        except NotFoundError:
            # accept raw ids too
            if metastore in self._service.store.metastore_ids():
                return metastore
            raise

    # -- observability ---------------------------------------------------------------

    def _obs(self):
        obs = getattr(self._service, "obs", None)
        if obs is None:
            raise NotFoundError("service has no observability attached")
        return obs

    def _metrics_route(self, method: str) -> tuple[int, TextResponse]:
        if method != "GET":
            raise InvalidRequestError("metrics is GET-only")
        return 200, TextResponse(self._obs().metrics.render())

    def _traces_route(self, method: str, rest: list[str]) -> tuple[int, dict]:
        if method != "GET":
            raise InvalidRequestError("traces is GET-only")
        tracer = self._obs().tracer
        if not rest:
            return 200, {"trace_ids": tracer.trace_ids()}
        if len(rest) > 1:
            raise NotFoundError(f"unknown route: /traces/{'/'.join(rest)}")
        root = tracer.trace(rest[0])
        if root is None:
            raise NotFoundError(f"no such trace: {rest[0]}")
        return 200, root.to_dict()

    # -- handlers -------------------------------------------------------------------

    def _metastores(
        self, method: str, rest: list[str], principal: str, body: dict
    ) -> tuple[int, dict]:
        if method == "POST" and not rest:
            entity = self._service.create_metastore(
                body["name"], owner=body.get("owner", principal),
                region=body.get("region", "us-west"),
            )
            return 201, _entity_json(entity)
        if method == "GET" and not rest:
            return 200, {"metastores": self._service.metastore_ids()}
        raise NotFoundError("unknown metastores route")

    def _securables(
        self,
        kind: SecurableKind,
        method: str,
        rest: list[str],
        principal: str,
        params: dict,
        body: dict,
    ) -> tuple[int, dict]:
        metastore_id = self._metastore_id(params, body)
        service = self._service
        if method == "POST" and not rest:
            entity = service.create_securable(
                metastore_id, principal, kind, body["name"],
                comment=body.get("comment", ""),
                storage_path=body.get("storage_location"),
                spec=body.get("spec"),
                properties=body.get("properties"),
            )
            return 201, _entity_json(entity)
        if method == "GET" and not rest:
            entities = service.list_securables(
                metastore_id, principal, kind, params.get("parent")
            )
            return 200, {"items": [_entity_json(e) for e in entities]}
        if not rest:
            raise NotFoundError("missing securable name")
        name = rest[0]
        if method == "GET":
            entity = service.get_securable(metastore_id, principal, kind, name)
            return 200, _entity_json(entity)
        if method == "PATCH":
            entity = service.update_securable(
                metastore_id, principal, kind, name,
                comment=body.get("comment"),
                properties=body.get("properties"),
                spec_changes=body.get("spec"),
            )
            return 200, _entity_json(entity)
        if method == "DELETE":
            deleted = service.delete_securable(
                metastore_id, principal, kind, name,
                cascade=params.get("cascade", "false").lower() == "true",
            )
            return 200, {"deleted": len(deleted)}
        raise InvalidRequestError(f"unsupported method {method}")

    def _grants(
        self, method: str, rest: list[str], principal: str,
        params: dict, body: dict,
    ) -> tuple[int, dict]:
        metastore_id = self._metastore_id(params, body)
        kind = SecurableKind(body.get("securable_kind") or params["securable_kind"])
        name = body.get("securable_name") or params["securable_name"]
        if method == "GET":
            grants = self._service.grants_on(metastore_id, principal, kind, name)
            return 200, {"grants": [g.to_dict() for g in grants]}
        if method == "POST":
            grant = self._service.grant(
                metastore_id, principal, kind, name,
                body["principal"], Privilege(body["privilege"]),
            )
            return 201, grant.to_dict()
        if method == "DELETE":
            self._service.revoke(
                metastore_id, principal, kind, name,
                body["principal"], Privilege(body["privilege"]),
            )
            return 200, {}
        raise InvalidRequestError(f"unsupported method {method}")

    def _temporary_credentials(
        self, method: str, principal: str, params: dict, body: dict
    ) -> tuple[int, dict]:
        if method != "POST":
            raise InvalidRequestError("temporary-credentials is POST-only")
        metastore_id = self._metastore_id(params, body)
        level = AccessLevel(body.get("access_level", "READ"))
        if "path" in body:
            entity, credential = self._service.access_by_path(
                metastore_id, principal, body["path"], level
            )
            payload = _credential_json(credential)
            payload["resolved_asset"] = entity.name
            return 200, payload
        kind = SecurableKind(body["securable_kind"])
        credential = self._service.vend_credentials(
            metastore_id, principal, kind, body["securable_name"], level
        )
        return 200, _credential_json(credential)

    def _information_schema(
        self, method: str, principal: str, params: dict, body: dict
    ) -> tuple[int, dict]:
        if method not in ("GET", "POST"):
            raise InvalidRequestError("information-schema is GET/POST")
        metastore_id = self._metastore_id(params, body)
        kind = SecurableKind(params.get("kind") or body.get("kind", "TABLE"))
        where = tuple(
            (c["column"], c["op"], c["value"]) for c in body.get("where", ())
        )
        rows = self._service.query_information_schema(
            metastore_id, principal, kind,
            catalog=params.get("catalog") or body.get("catalog"),
            schema=params.get("schema") or body.get("schema"),
            where=where,
            limit=int(params["limit"]) if "limit" in params else body.get("limit"),
        )
        return 200, {"rows": rows}

    def _lineage(
        self, method: str, principal: str, params: dict
    ) -> tuple[int, dict]:
        if method != "GET":
            raise InvalidRequestError("lineage is GET-only")
        metastore_id = self._metastore_id(params, {})
        asset = params.get("asset")
        if not asset:
            raise InvalidRequestError("missing 'asset' parameter")
        direction = params.get("direction", "downstream")
        if direction == "downstream":
            names = self._service.lineage_downstream(metastore_id, principal,
                                                     asset)
        elif direction == "upstream":
            names = self._service.lineage_upstream(metastore_id, principal,
                                                   asset)
        else:
            raise InvalidRequestError("direction must be upstream/downstream")
        return 200, {"asset": asset, "direction": direction,
                     "assets": sorted(names)}

    def _search_route(
        self, method: str, principal: str, params: dict, body: dict
    ) -> tuple[int, dict]:
        if self._search is None:
            raise NotFoundError("no search service attached")
        if method != "POST":
            raise InvalidRequestError("search is POST-only")
        metastore_id = self._metastore_id(params, body)
        self._search.sync(metastore_id)
        kind = body.get("kind")
        hits = self._search.search(
            metastore_id, principal, body.get("query", ""),
            kind=SecurableKind(kind) if kind else None,
            limit=body.get("limit", 50),
        )
        return 200, {
            "hits": [
                {"full_name": h.full_name, "kind": h.entity.kind.value,
                 "score": h.score}
                for h in hits
            ]
        }

    def _resolve(
        self, method: str, principal: str, params: dict, body: dict
    ) -> tuple[int, dict]:
        if method != "POST":
            raise InvalidRequestError("resolve is POST-only")
        metastore_id = self._metastore_id(params, body)
        resolution = self._service.resolve_for_query(
            metastore_id, principal,
            list(body.get("tables", ())),
            write_tables=tuple(body.get("write_tables", ())),
            function_names=tuple(body.get("functions", ())),
            include_credentials=bool(body.get("include_credentials", True)),
            engine_trusted=body.get("engine_trusted"),
        )
        assets = {}
        for name, asset in resolution.assets.items():
            assets[name] = {
                "entity": _entity_json(asset.entity),
                "table_type": asset.table_type,
                "format": asset.format,
                "columns": asset.columns,
                "storage_url": asset.storage_url,
                "credential": (
                    _credential_json(asset.credential)
                    if asset.credential else None
                ),
                "fgac": asset.fgac.to_dict(),
                "view_definition": asset.view_definition,
                "dependencies": list(asset.dependencies),
            }
        return 200, {
            "metastore_version": resolution.metastore_version,
            "assets": assets,
        }
