"""REST API layer — a generic router generated from the API registry.

Unity Catalog's openness claim rests on a documented REST surface; this
module maps HTTP-shaped requests onto the same endpoint registry the
in-process facade dispatches through. There is **no per-endpoint logic
here**: each :class:`~repro.core.service.registry.EndpointDescriptor`
declares its REST bindings (route, marshalling, status, rendering) next
to the endpoint itself, and :class:`ServiceRouter` merely parses the
path, picks the matching binding, and runs the request through the
pipeline. The two surfaces therefore cannot drift — a new endpoint
registered by a domain module appears on both at once, with identical
authorization, audit, and deadline behaviour.

The router is transport agnostic: :meth:`ServiceRouter.handle` takes
``(method, path, params, body, principal)`` and returns ``(status,
json-able dict)``, so the same router serves the in-process client used
by tests and the real HTTP server in
:mod:`repro.core.service.http_server`.

Authentication is the upstream gateway's job (paper section 3.4); the
caller principal arrives as a header. A ``timeout`` query parameter
(relative seconds) arms the pipeline's request deadline; a request that
exhausts it maps to HTTP 504.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.model.entity import SecurableKind
from repro.core.service.registry import KIND_RESOURCES, RestRequest
from repro.errors import (
    InvalidRequestError,
    NotFoundError,
    UnityCatalogError,
)

_STATUS = {
    "RESOURCE_DOES_NOT_EXIST": 404,
    "RESOURCE_ALREADY_EXISTS": 409,
    "INVALID_PARAMETER_VALUE": 400,
    "PERMISSION_DENIED": 403,
    "UNTRUSTED_ENGINE": 403,
    "PATH_CONFLICT": 409,
    "CONCURRENT_MODIFICATION": 409,
    "TRANSACTION_CONFLICT": 409,
    "MERGE_CONFLICT": 409,
    "CREDENTIAL_DENIED": 403,
    "FEDERATION_ERROR": 502,
    "THROTTLED": 429,
    "TENANT_THROTTLED": 429,
    "STORAGE_UNAVAILABLE": 503,
    "TEMPORARILY_UNAVAILABLE": 503,
    "CIRCUIT_OPEN": 503,
    "DEADLINE_EXCEEDED": 504,
    "INTERNAL": 500,
}

_KIND_BY_RESOURCE = {
    "catalogs": SecurableKind.CATALOG,
    "schemas": SecurableKind.SCHEMA,
    "tables": SecurableKind.TABLE,
    "volumes": SecurableKind.VOLUME,
    "functions": SecurableKind.FUNCTION,
    "models": SecurableKind.REGISTERED_MODEL,
    "model-versions": SecurableKind.MODEL_VERSION,
    "storage-credentials": SecurableKind.STORAGE_CREDENTIAL,
    "external-locations": SecurableKind.EXTERNAL_LOCATION,
    "connections": SecurableKind.CONNECTION,
    "shares": SecurableKind.SHARE,
    "recipients": SecurableKind.RECIPIENT,
}


@dataclass
class TextResponse:
    """A non-JSON response body — used for the Prometheus text format."""

    body: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


class ServiceRouter:
    """Routes REST requests through the service's API registry.

    ``search_service`` is optional: when a discovery search service is
    attached, the ``/search`` route is served (second-tier services are
    deployed separately from the core service, section 4.4).
    """

    def __init__(self, service, search_service=None):
        self._service = service
        self._search = search_service
        self._routes = service.api_registry.rest_routes()
        self._resources = {key[1] for key in self._routes}

    # -- public entry point ----------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        *,
        principal: str,
        params: Optional[dict[str, str]] = None,
        body: Optional[dict[str, Any]] = None,
    ) -> tuple[int, Any]:
        """Dispatch one request; returns (HTTP status, response body).

        The body is a JSON-able dict for every route except ``/metrics``,
        which returns a :class:`TextResponse`."""
        params = params or {}
        body = body or {}
        try:
            return self._route(method.upper(), path.strip("/"), principal,
                               params, body)
        except UnityCatalogError as exc:
            return _STATUS.get(exc.code, 500), exc.to_dict()

    # -- routing -----------------------------------------------------------------

    def _route(
        self, method: str, path: str, principal: str,
        params: dict, body: dict,
    ) -> tuple[int, Any]:
        segments = [s for s in path.split("/") if s]
        # observability endpoints live outside the /api tree, like the
        # operational endpoints of most services
        if segments == ["metrics"]:
            return self._metrics_route(method)
        if segments and segments[0] == "traces":
            return self._traces_route(method, segments[1:])
        if not segments or segments[0] != "api":
            raise NotFoundError(f"unknown route: /{path}")
        # /api/2.1/unity-catalog/<resource>[/<name>]
        if len(segments) < 4 or segments[2] != "unity-catalog":
            raise NotFoundError(f"unknown route: /{path}")
        resource = segments[3]
        rest = segments[4:]

        if resource == "search":
            return self._search_route(method, principal, params, body)

        kind: Optional[SecurableKind] = None
        route_resource = resource
        if resource in _KIND_BY_RESOURCE:
            kind = _KIND_BY_RESOURCE[resource]
            route_resource = KIND_RESOURCES

        named = bool(rest)
        candidates = self._routes.get((method, route_resource, named))
        if candidates is None and named:
            # unnamed-only resources tolerate trailing segments (the
            # securable is addressed via params/body, not the path)
            candidates = self._routes.get((method, route_resource, False))
        if candidates is None:
            if route_resource not in self._resources:
                raise NotFoundError(f"unknown resource: {resource}")
            if not named and (
                any(key == (method, route_resource, True)
                    for key in self._routes)
            ):
                raise NotFoundError("missing securable name")
            raise InvalidRequestError(f"unsupported method {method}")

        request = RestRequest(
            method=method,
            principal=principal,
            params=params,
            body=body,
            name=rest[0] if rest else None,
            kind=kind,
            metastore_resolver=lambda: self._metastore_id(params, body),
        )
        for binding, descriptor in candidates:
            if binding.when is None or binding.when(request):
                kwargs = binding.bind(request)
                if "timeout" in params:
                    kwargs["_timeout"] = float(params["timeout"])
                # ?branch=catalog@branch pins the request to a branch;
                # ?at_version=N pins reads AS OF a past metastore version
                if "branch" in params:
                    kwargs["_branch"] = params["branch"]
                if "at_version" in params:
                    kwargs["_at_version"] = int(params["at_version"])
                # ?qos_class=batch requests an explicit priority class
                if "qos_class" in params:
                    kwargs["_qos_class"] = params["qos_class"]
                result = self._service.pipeline.dispatch(descriptor, kwargs)
                return binding.status, binding.render(result, kwargs)
        raise InvalidRequestError(
            f"no {resource} binding accepts this request shape"
        )

    def _metastore_id(self, params: dict, body: dict) -> str:
        metastore = params.get("metastore") or body.get("metastore")
        if not metastore:
            raise InvalidRequestError("missing 'metastore' parameter")
        try:
            return self._service.metastore_id(metastore)
        except NotFoundError:
            # accept raw ids too
            if metastore in self._service.store.metastore_ids():
                return metastore
            raise

    # -- observability ---------------------------------------------------------------

    def _obs(self):
        obs = getattr(self._service, "obs", None)
        if obs is None:
            raise NotFoundError("service has no observability attached")
        return obs

    def _metrics_route(self, method: str) -> tuple[int, TextResponse]:
        if method != "GET":
            raise InvalidRequestError("metrics is GET-only")
        return 200, TextResponse(self._obs().metrics.render())

    def _traces_route(self, method: str, rest: list[str]) -> tuple[int, dict]:
        if method != "GET":
            raise InvalidRequestError("traces is GET-only")
        tracer = self._obs().tracer
        if not rest:
            return 200, {"trace_ids": tracer.trace_ids()}
        if len(rest) > 1:
            raise NotFoundError(f"unknown route: /traces/{'/'.join(rest)}")
        root = tracer.trace(rest[0])
        if root is None:
            raise NotFoundError(f"no such trace: {rest[0]}")
        return 200, root.to_dict()

    # -- second-tier search service (not a registry endpoint) ------------------

    def _search_route(
        self, method: str, principal: str, params: dict, body: dict
    ) -> tuple[int, dict]:
        if self._search is None:
            raise NotFoundError("no search service attached")
        if method != "POST":
            raise InvalidRequestError("search is POST-only")
        metastore_id = self._metastore_id(params, body)
        self._search.sync(metastore_id)
        kind = body.get("kind")
        hits = self._search.search(
            metastore_id, principal, body.get("query", ""),
            kind=SecurableKind(kind) if kind else None,
            limit=body.get("limit", 50),
        )
        return 200, {
            "hits": [
                {"full_name": h.full_name, "kind": h.entity.kind.value,
                 "score": h.score}
                for h in hits
            ]
        }


#: Backwards-compatible name: the hand-written router this replaced.
RestApi = ServiceRouter

__all__ = ["RestApi", "ServiceRouter", "TextResponse"]
