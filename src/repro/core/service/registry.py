"""The single API registry (one table, every catalog endpoint).

The paper's "life of a query" protocol is a fixed sequence —
authenticate, resolve names, authorize, execute, audit — so every
catalog API is described *declaratively* here instead of hand-weaving
that sequence into each method. An :class:`EndpointDescriptor` names the
endpoint, the domain service that owns it, whether it mutates the
metastore, how the pipeline should resolve and authorize its target, and
(optionally) how the endpoint appears on the REST surface.

Both dispatch paths consume the same table:

* the in-process facade (:class:`~repro.core.service.catalog_service.
  UnityCatalogService`) looks descriptors up by name and runs them
  through the request pipeline, and
* the REST router (:class:`~repro.core.service.rest.ServiceRouter`)
  *generates* its route table from the descriptors' :class:`RestBinding`
  entries — there is no second, hand-maintained copy of the API surface.

Adding an endpoint is therefore: write one handler in the owning domain
module, declare one descriptor, done — metrics, tracing, authn, hot-path
resolution, authorization, deadline enforcement, audit-on-error, and the
REST route all come from the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.model.entity import SecurableKind
from repro.errors import InvalidRequestError, NotFoundError


@dataclass(frozen=True)
class ResolveSpec:
    """How the resolution interceptor finds a read endpoint's target.

    ``kind_param`` names the request parameter carrying a
    :class:`SecurableKind` (or ``kind`` pins it statically); ``name_param``
    names the parameter carrying the fully qualified name. Mutations skip
    pipeline-level resolution: their build closures must re-resolve
    against each fresh view inside the optimistic commit loop.
    """

    name_param: str = "name"
    kind_param: Optional[str] = "kind"
    kind: Optional[SecurableKind] = None

    def kind_of(self, params: dict[str, Any]) -> SecurableKind:
        if self.kind is not None:
            return self.kind
        return params[self.kind_param]


@dataclass(frozen=True)
class RestRequest:
    """One parsed REST request, handed to a binding's ``bind`` callable."""

    method: str
    principal: str
    params: dict[str, str]
    body: dict[str, Any]
    #: trailing path segment (the securable name), or None
    name: Optional[str] = None
    #: resolved kind for the twelve securable-collection resources
    kind: Optional[SecurableKind] = None
    #: resolves the ``metastore`` param/body field to a metastore id
    metastore_resolver: Optional[Callable[[], str]] = None

    def metastore_id(self) -> str:
        return self.metastore_resolver()

    def require_name(self) -> str:
        if not self.name:
            raise NotFoundError("missing securable name")
        return self.name

    def field_any(self, key: str, default: Any = None) -> Any:
        """A field that may arrive as a query param or a body field."""
        value = self.params.get(key)
        if value is None:
            value = self.body.get(key, default)
        return value

    def require(self, key: str) -> Any:
        value = self.field_any(key)
        if value is None:
            raise InvalidRequestError(f"missing {key!r} parameter")
        return value


#: marker resource: binding applies to every securable-collection
#: resource (``catalogs``, ``schemas``, ``tables`` …)
KIND_RESOURCES = "*kinds*"


@dataclass(frozen=True)
class RestBinding:
    """How one endpoint appears on the REST surface.

    The router's table is *generated* from these: ``(method, resource,
    has_name)`` keys a route, ``when`` disambiguates bindings sharing a
    route (e.g. rename vs. update under PATCH), ``bind`` marshals the
    request into endpoint kwargs, and ``render`` marshals the result into
    the response payload. All endpoint-specific marshalling lives here,
    next to the endpoint it describes — the router stays generic.
    """

    method: str
    resource: str
    bind: Callable[[RestRequest], dict[str, Any]]
    #: True when the route carries a trailing name segment
    named: bool = False
    #: disambiguates multiple bindings on one route; first match wins
    when: Optional[Callable[[RestRequest], bool]] = None
    status: int = 200
    #: (result, bound kwargs) -> JSON-able payload
    render: Callable[[Any, dict[str, Any]], Any] = lambda result, kwargs: result

    @property
    def route_key(self) -> tuple[str, str, bool]:
        return (self.method, self.resource, self.named)


@dataclass(frozen=True)
class RouteDecision:
    """How the shard router should place one request.

    Produced by a :class:`ClusterBinding`'s ``plan`` callable and consumed
    generically by :class:`~repro.core.cluster.CatalogCluster` — the same
    pattern as :class:`RestBinding`: all endpoint-specific placement logic
    lives next to the endpoint in its domain module, the cluster stays
    generic.

    Kinds:

    ``catalog``
        Route to the shard owning ``key`` (a catalog route key).
    ``home``
        Route to the home shard (shard 0) — used for metastore-scope
        state, which is replicated to every shard.
    ``broadcast``
        A replicated write: two-phase prepare on the home shard, commit
        on the rest. ``mint_params`` names id parameters the cluster
        pre-mints so every replica stores identical rows.
    ``scatter``
        Fan out to every shard and fold the per-shard results with
        ``merge(results, params)``.
    ``move``
        A catalog rename: may migrate the subtree between shards under
        the two-phase protocol (``key`` = old name, ``new_key`` = new).
    ``probe``
        Dispatch only to shards whose local view passes
        ``probe(view, params)`` (all of them when ``all_matches``); when
        none match, dispatch to the home shard so the caller gets the
        canonical error and exactly one error audit record.
    ``partition``
        Split the request into per-catalog sub-requests with
        ``split(params) -> {route_key: sub_params}``, dispatch each to
        its owner, fold with ``merge(results, params)``.
    """

    kind: str
    key: Optional[str] = None
    new_key: Optional[str] = None
    merge: Optional[Callable[[list, dict], Any]] = None
    probe: Optional[Callable[[Any, dict], bool]] = None
    all_matches: bool = False
    split: Optional[Callable[[dict], dict]] = None

    @staticmethod
    def shard(key: str) -> "RouteDecision":
        return RouteDecision(kind="catalog", key=key)

    @staticmethod
    def home() -> "RouteDecision":
        return RouteDecision(kind="home")

    @staticmethod
    def broadcast() -> "RouteDecision":
        return RouteDecision(kind="broadcast")

    @staticmethod
    def scatter(merge: Callable[[list, dict], Any]) -> "RouteDecision":
        return RouteDecision(kind="scatter", merge=merge)

    @staticmethod
    def move(key: str, new_key: str) -> "RouteDecision":
        return RouteDecision(kind="move", key=key, new_key=new_key)

    @staticmethod
    def probe_for(
        probe: Callable[[Any, dict], bool], all_matches: bool = False
    ) -> "RouteDecision":
        return RouteDecision(kind="probe", probe=probe, all_matches=all_matches)

    @staticmethod
    def partition(
        split: Callable[[dict], dict], merge: Callable[[list, dict], Any]
    ) -> "RouteDecision":
        return RouteDecision(kind="partition", split=split, merge=merge)


@dataclass(frozen=True)
class ClusterBinding:
    """How one endpoint is placed on a sharded cluster.

    ``plan`` maps the request parameters to a :class:`RouteDecision`.
    ``stale_ok`` marks reads that may be served from the router's
    last-known-good cache when the owning shard is dark (breaker open);
    writes never degrade. ``mint_params`` names id parameters that
    replicated creates pre-mint cluster-side so every shard stores the
    same row bytes.
    """

    plan: Callable[[dict[str, Any]], RouteDecision]
    stale_ok: bool = False
    mint_params: tuple[str, ...] = ()


def catalog_route_key(full_name: str) -> str:
    """The shard route key of a securable: its catalog (first segment)."""
    return full_name.split(".", 1)[0]


#: metastore-scope root kinds replicated to every shard (location/credential
#: coverage checks and share/recipient lookups must work shard-locally)
REPLICATED_ROOT_KINDS = frozenset(
    kind for kind in SecurableKind
    if kind.is_metastore_root and kind is not SecurableKind.CATALOG
) | {SecurableKind.METASTORE}


def route_securable_write(kind: SecurableKind, name: str) -> RouteDecision:
    """Placement for a (kind, name)-addressed mutation."""
    if kind in REPLICATED_ROOT_KINDS:
        return RouteDecision.broadcast()
    return RouteDecision.shard(catalog_route_key(name))


def route_securable_read(kind: SecurableKind, name: str) -> RouteDecision:
    """Placement for a (kind, name)-addressed read."""
    if kind in REPLICATED_ROOT_KINDS:
        return RouteDecision.home()
    return RouteDecision.shard(catalog_route_key(name))


@dataclass(frozen=True)
class EndpointDescriptor:
    """One catalog API endpoint, as the pipeline and the router see it."""

    name: str
    domain: str
    handler: Callable[[Any, Any], Any]  # (service, ctx) -> result
    #: True when the endpoint writes through the optimistic commit loop
    mutation: bool = False
    #: pipeline-level resolution for read endpoints (None = handler's job)
    resolve: Optional[ResolveSpec] = None
    #: pipeline-level authorization operation (requires ``resolve``)
    operation: Optional[str] = None
    #: request parameter naming the acting principal
    principal_param: str = "principal"
    #: request parameter naming the audit target (for audit-on-error)
    target_param: Optional[str] = "name"
    rest: tuple[RestBinding, ...] = field(default=())
    #: shard placement on a CatalogCluster (None = home shard)
    cluster: Optional[ClusterBinding] = None
    doc: str = ""


class ApiRegistry:
    """Every registered endpoint, keyed by name.

    One instance per service; domain modules contribute their endpoint
    tables at service construction. The REST router and the in-process
    facade both dispatch through this registry, which is what keeps the
    two surfaces byte-identical.
    """

    def __init__(self):
        self._endpoints: dict[str, EndpointDescriptor] = {}

    def register(self, descriptor: EndpointDescriptor) -> None:
        if descriptor.name in self._endpoints:
            raise ValueError(f"endpoint already registered: {descriptor.name}")
        if descriptor.operation is not None and descriptor.resolve is None:
            raise ValueError(
                f"endpoint {descriptor.name}: pipeline authorization "
                "requires a resolve spec"
            )
        self._endpoints[descriptor.name] = descriptor

    def register_all(self, descriptors) -> None:
        for descriptor in descriptors:
            self.register(descriptor)

    def get(self, name: str) -> EndpointDescriptor:
        try:
            return self._endpoints[name]
        except KeyError:
            raise NotFoundError(f"no such endpoint: {name}")

    def __iter__(self):
        return iter(self._endpoints.values())

    def __len__(self) -> int:
        return len(self._endpoints)

    def names(self) -> list[str]:
        return sorted(self._endpoints)

    def rest_routes(self) -> dict[tuple[str, str, bool], list[tuple[RestBinding, EndpointDescriptor]]]:
        """The generated REST routing table: route key -> candidate
        bindings in registration order (``when`` picks among them)."""
        table: dict[tuple[str, str, bool], list[tuple[RestBinding, EndpointDescriptor]]] = {}
        for descriptor in self._endpoints.values():
            for binding in descriptor.rest:
                table.setdefault(binding.route_key, []).append(
                    (binding, descriptor)
                )
        return table


__all__ = [
    "ApiRegistry",
    "ClusterBinding",
    "EndpointDescriptor",
    "KIND_RESOURCES",
    "REPLICATED_ROOT_KINDS",
    "ResolveSpec",
    "RestBinding",
    "RestRequest",
    "RouteDecision",
    "catalog_route_key",
    "route_securable_read",
    "route_securable_write",
]
