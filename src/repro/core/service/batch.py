"""Batched metadata resolution for queries (paper sections 3.4, 4.5).

"UC consolidates all metadata access for a query into a single batched
API call": the engine submits every securable reference found during
parsing, and the catalog returns — under one consistent metastore
snapshot — the metadata, authorization outcome, FGAC enforcement rules,
dependency closure (views expand to their base tables), and, on request,
the temporary storage credentials for every physical table involved.

View-based access control: a caller with SELECT on a view may read
through it without privileges on its base tables, so dependencies pulled
in by a view resolve under the *view's* authority, not the caller's, and
such query plans are restricted to trusted engines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.cloudstore.sts import AccessLevel, TemporaryCredential
from repro.core.auth.fgac import FgacRuleSet
from repro.core.model.entity import Entity, SecurableKind
from repro.core.persistence.store import Tables
from repro.core.view import MetastoreView
from repro.errors import InvalidRequestError, UntrustedEngineError

_MAX_VIEW_DEPTH = 32


@dataclass
class ResolvedAsset:
    """Everything an engine needs to plan against one securable."""

    full_name: str
    entity: Entity
    table_type: Optional[str]
    format: Optional[str]
    columns: list[dict]
    storage_url: Optional[str]
    credential: Optional[TemporaryCredential]
    fgac: FgacRuleSet
    view_definition: Optional[str]
    dependencies: tuple[str, ...]
    #: True when pulled in as a view dependency (resolved under the view's
    #: authority rather than the caller's own grants).
    via_view: bool = False

    @property
    def requires_trusted_engine(self) -> bool:
        return not self.fgac.is_empty or self.via_view


@dataclass
class QueryResolution:
    """The single batched response for one query's metadata needs."""

    metastore_version: int
    principal: str
    assets: dict[str, ResolvedAsset] = field(default_factory=dict)
    functions: dict[str, ResolvedAsset] = field(default_factory=dict)
    #: Populated only on cluster-merged resolutions: catalog route key ->
    #: the version of the shard store that resolved that catalog's assets.
    #: Each shard versions its store independently, so the scalar
    #: ``metastore_version`` of a merged resolution (the max over shards)
    #: corresponds to no single shard's snapshot and MUST NOT be used for
    #: version pinning — pin against the entry for the asset's catalog.
    catalog_versions: dict[str, int] = field(default_factory=dict)
    #: branch the resolution was taken on (``None`` = trunk/main). A
    #: branched resolution pins per ``catalog@branch`` so merged cluster
    #: responses never mix trunk and branch versions under one key.
    branch: Optional[str] = None

    @property
    def requires_trusted_engine(self) -> bool:
        return any(a.requires_trusted_engine for a in self.assets.values())

    def asset(self, name: str) -> ResolvedAsset:
        return self.assets[name]

    def pin_key(self, name: str) -> str:
        """``catalog_versions`` key for ``name``: the catalog route key,
        branch-qualified when the resolution was taken on a branch."""
        key = name.split(".", 1)[0]
        if self.branch is not None:
            key = f"{key}@{self.branch}"
        return key

    def pinnable_version(self, name: str) -> int:
        """The store version to pin for ``name``'s catalog: per-catalog
        (and per-branch) on a cluster-merged resolution, the scalar one
        otherwise."""
        if self.catalog_versions:
            return self.catalog_versions.get(
                self.pin_key(name), self.metastore_version
            )
        return self.metastore_version


class QueryResolver:
    """Implements the batched resolution API on top of the service."""

    def __init__(self, service):
        self._service = service

    def resolve(
        self,
        metastore_id: str,
        principal: str,
        table_names: list[str],
        *,
        write_tables: tuple[str, ...] = (),
        function_names: tuple[str, ...] = (),
        include_credentials: bool = True,
        engine_trusted: Optional[bool] = None,
        workspace: Optional[str] = None,
    ) -> QueryResolution:
        """Resolve all metadata for one query in a single call.

        ``engine_trusted`` defaults to the directory's knowledge of the
        calling principal (machine identities of sandboxed engines are
        marked trusted). ``workspace`` enforces catalog bindings.
        """
        service = self._service
        view: MetastoreView = service.view(metastore_id)
        if engine_trusted is None:
            engine_trusted = service.directory.is_trusted_engine(principal)

        # a branch-pinned view stamps the resolution, so version pins key
        # per (catalog, branch) instead of colliding with trunk pins
        branch_key = getattr(view, "branch", None)
        resolution = QueryResolution(
            metastore_version=view.version,
            principal=principal,
            branch=branch_key.split("@", 1)[1] if branch_key else None,
        )
        write_set = set(write_tables)
        for name in write_set - set(table_names):
            raise InvalidRequestError(
                f"write table {name!r} missing from table_names"
            )

        cache = service._hot_caches_for(metastore_id, view)
        # BFS over (name, authorize_as_caller, depth), one *wave* (the
        # current frontier — initially the query's table list, then each
        # round of view dependencies) at a time: every wave resolves all
        # its names first so auxiliary rows for the whole wave can be
        # pulled with one batched store read instead of N point reads.
        queue: deque[tuple[str, bool, int]] = deque(
            (name, True, 0) for name in dict.fromkeys(table_names)
        )
        while queue:
            wave: list[tuple[str, bool, int, Entity]] = []
            seen: set[str] = set()
            while queue:
                name, as_caller, depth = queue.popleft()
                if name in resolution.assets or name in seen:
                    continue
                if depth > _MAX_VIEW_DEPTH:
                    raise InvalidRequestError(
                        f"view nesting deeper than {_MAX_VIEW_DEPTH}"
                    )
                entity = service._resolve(
                    view, metastore_id, SecurableKind.TABLE, name
                )
                seen.add(name)
                wave.append((name, as_caller, depth, entity))
            view.prefetch_rows(Tables.TAGS, [w[3].id for w in wave])
            for name, as_caller, depth, entity in wave:
                service.check_workspace_binding(metastore_id, entity, workspace)
                operation = "write_data" if name in write_set else "read_data"
                if as_caller:
                    service._authorize(
                        view, metastore_id, principal, entity, operation, name
                    )
                fgac = service.authorizer.fgac_rules_for(
                    view, entity, principal, cache
                )
                if not fgac.is_empty and not engine_trusted:
                    raise UntrustedEngineError(
                        f"table {name} carries fine-grained policies; only trusted "
                        "engines may receive its enforcement rules"
                    )
                table_type = entity.spec.get("table_type")
                dependencies = tuple(entity.spec.get("view_dependencies") or ())
                if entity.spec.get("base_table"):
                    dependencies = dependencies + (entity.spec["base_table"],)
                credential = None
                if (
                    include_credentials
                    and entity.storage_path
                    and table_type not in ("VIEW", "FOREIGN")
                ):
                    level = (
                        AccessLevel.READ_WRITE
                        if name in write_set
                        else AccessLevel.READ
                    )
                    credential = service.vendor.vend(view, entity, level)
                resolution.assets[name] = ResolvedAsset(
                    full_name=name,
                    entity=entity,
                    table_type=table_type,
                    format=entity.spec.get("format"),
                    columns=list(entity.spec.get("columns") or ()),
                    storage_url=entity.storage_path,
                    credential=credential,
                    fgac=fgac,
                    view_definition=entity.spec.get("view_definition"),
                    dependencies=dependencies,
                    via_view=not as_caller,
                )
                for dependency in dependencies:
                    # dependencies of a view resolve under the view's authority
                    queue.append((dependency, False, depth + 1))

        if resolution.requires_trusted_engine and not engine_trusted:
            raise UntrustedEngineError(
                "query touches views or FGAC-governed tables; use a trusted "
                "engine or the data filtering service"
            )

        for name in dict.fromkeys(function_names):
            entity = service._resolve(view, metastore_id, SecurableKind.FUNCTION, name)
            service._authorize(view, metastore_id, principal, entity, "execute", name)
            resolution.functions[name] = ResolvedAsset(
                full_name=name,
                entity=entity,
                table_type=None,
                format=None,
                columns=[],
                storage_url=None,
                credential=None,
                fgac=FgacRuleSet(),
                view_definition=entity.spec.get("definition"),
                dependencies=tuple(entity.spec.get("function_dependencies") or ()),
            )

        service._audit(
            metastore_id, principal, "resolve_query",
            ",".join(table_names) or "<none>", True,
            assets=len(resolution.assets), functions=len(resolution.functions),
        )
        return resolution
