"""The Unity Catalog service (paper sections 3, 4.2.1)."""

from repro.core.service.catalog_service import UnityCatalogService
from repro.core.service.batch import QueryResolution, ResolvedAsset

__all__ = ["QueryResolution", "ResolvedAsset", "UnityCatalogService"]
