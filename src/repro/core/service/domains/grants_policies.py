"""Grants & policies domain: privilege grants and ABAC policies.

Grant/revoke write through the optimistic commit loop (re-authorizing
per attempt); the read endpoints (``grants_on``, ``has_privilege``)
lean on the pipeline's resolution interceptor and the version-pinned
hot caches.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.auth.abac import AbacEffect, AbacPolicy, TagCondition
from repro.core.auth.privileges import Privilege, PrivilegeGrant
from repro.core.events import ChangeType
from repro.core.model.entity import SecurableKind, new_entity_id
from repro.core.persistence.store import Tables, WriteOp
from repro.core.service.registry import (
    ClusterBinding,
    EndpointDescriptor,
    ResolveSpec,
    RestBinding,
    RestRequest,
    RouteDecision,
    catalog_route_key,
    route_securable_read,
    route_securable_write,
)
from repro.core.view import MetastoreView
from repro.errors import InvalidRequestError, NotFoundError


def grant(svc, ctx) -> PrivilegeGrant:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, name = p["kind"], p["name"]
    grantee, privilege = p["grantee"], p["privilege"]
    manifest = svc.registry.get(kind)
    if not manifest.supports_privilege(privilege):
        raise InvalidRequestError(
            f"{privilege.value} is not grantable on {kind.value.lower()}s"
        )
    svc.directory.get(grantee)

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, kind, name)
        svc._authorize(view, metastore_id, principal, entity, "grant", name)
        record = PrivilegeGrant(
            securable_id=entity.id,
            principal=grantee,
            privilege=privilege,
            granted_by=principal,
            granted_at=svc.clock.now(),
        )
        ops = [WriteOp.put(Tables.GRANTS, record.key, record.to_dict())]
        events = [
            (ChangeType.GRANT_CHANGED, entity.id, kind.value, name,
             {"grantee": grantee, "privilege": privilege.value, "action": "grant"})
        ]
        return ops, record, events

    return svc._mutate(metastore_id, build)


def revoke(svc, ctx) -> None:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, name = p["kind"], p["name"]
    grantee, privilege = p["grantee"], p["privilege"]

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, kind, name)
        svc._authorize(view, metastore_id, principal, entity, "grant", name)
        key = f"{entity.id}/{grantee}/{privilege.value}"
        if view.row(Tables.GRANTS, key) is None:
            raise NotFoundError(
                f"no grant of {privilege.value} to {grantee} on {name}"
            )
        ops = [WriteOp.delete(Tables.GRANTS, key)]
        events = [
            (ChangeType.GRANT_CHANGED, entity.id, kind.value, name,
             {"grantee": grantee, "privilege": privilege.value,
              "action": "revoke"})
        ]
        return ops, None, events

    svc._mutate(metastore_id, build)


def grants_on(svc, ctx) -> list[PrivilegeGrant]:
    return ctx.view.grants_on(ctx.entity.id)


def has_privilege(svc, ctx) -> bool:
    """The authorization API exposed to second-tier/discovery services."""
    p = ctx.params
    metastore_id = p["metastore_id"]
    privilege = p["privilege"]
    view, entity = ctx.view, ctx.entity
    identities = ctx.identities
    if identities is None:
        identities = svc.authorizer.identities(p["principal"])
    if svc.authorizer.is_direct_owner_or_admin(view, entity, identities):
        return True
    cache = svc._hot_caches_for(metastore_id, view)
    return svc.authorizer.has_privilege(view, entity, privilege, identities, cache)


def create_abac_policy(svc, ctx) -> AbacPolicy:
    """Define an ABAC policy at metastore/catalog/schema scope."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    name = p["name"]
    scope_kind, scope_name = p["scope_kind"], p.get("scope_name")
    condition, effect = p["condition"], p["effect"]
    privilege: Optional[Privilege] = p.get("privilege")
    mask_sql, predicate_sql = p.get("mask_sql"), p.get("predicate_sql")
    principals = tuple(p.get("principals") or ())
    exempt_principals = tuple(p.get("exempt_principals") or ())

    def build(view: MetastoreView):
        if scope_kind is SecurableKind.METASTORE:
            scope = view.entity_by_id(metastore_id)
        else:
            scope = svc._resolve(view, metastore_id, scope_kind, scope_name)
        svc._authorize(
            view, metastore_id, principal, scope, "manage_policies",
            scope_name or "<metastore>",
        )
        policy = AbacPolicy(
            policy_id=p.get("policy_id") or new_entity_id(),
            name=name,
            scope_id=scope.id,
            condition=condition,
            effect=effect,
            privilege=privilege,
            mask_sql=mask_sql,
            predicate_sql=predicate_sql,
            principals=frozenset(principals),
            exempt_principals=frozenset(exempt_principals),
        )
        ops = [WriteOp.put(Tables.POLICIES, policy.key, policy.to_dict())]
        events = [
            (ChangeType.POLICY_CHANGED, scope.id, scope_kind.value,
             scope_name or "<metastore>", {"policy": "abac", "name": name})
        ]
        return ops, policy, events

    return svc._mutate(metastore_id, build)


def drop_abac_policy(svc, ctx) -> None:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    policy_id = p["policy_id"]

    def build(view: MetastoreView):
        key = f"abac/{policy_id}"
        value = view.row(Tables.POLICIES, key)
        if value is None:
            raise NotFoundError(f"no such ABAC policy: {policy_id}")
        scope = view.entity_by_id(value["scope_id"])
        if scope is None:
            scope = view.entity_by_id(metastore_id)
        svc._authorize(
            view, metastore_id, principal, scope, "manage_policies", scope.name
        )
        ops = [WriteOp.delete(Tables.POLICIES, key)]
        events = [
            (ChangeType.POLICY_CHANGED, scope.id, scope.kind.value, scope.name,
             {"policy": "abac", "dropped": True})
        ]
        return ops, None, events

    svc._mutate(metastore_id, build)


# ----------------------------------------------------------------------
# cluster placement
# ----------------------------------------------------------------------


def _grant_write_plan(p: dict) -> RouteDecision:
    return route_securable_write(p["kind"], p["name"])


def _grant_read_plan(p: dict) -> RouteDecision:
    return route_securable_read(p["kind"], p["name"])


def _plan_create_abac(p: dict) -> RouteDecision:
    # metastore-scope policies govern every catalog, so they replicate
    if p["scope_kind"] is SecurableKind.METASTORE:
        return RouteDecision.broadcast()
    return RouteDecision.shard(catalog_route_key(p["scope_name"]))


def _probe_abac(view, p: dict) -> bool:
    return view.row(Tables.POLICIES, f"abac/{p['policy_id']}") is not None


# ----------------------------------------------------------------------
# REST marshalling
# ----------------------------------------------------------------------


def _grant_target(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "kind": SecurableKind(r.require("securable_kind")),
        "name": r.require("securable_name"),
    }


def _bind_grant(r: RestRequest) -> dict[str, Any]:
    args = _grant_target(r)
    args["grantee"] = r.body["principal"]
    args["privilege"] = Privilege(r.body["privilege"])
    return args


def _bind_has_privilege(r: RestRequest) -> dict[str, Any]:
    args = _grant_target(r)
    args["privilege"] = Privilege(r.require("privilege"))
    return args


def _bind_create_abac(r: RestRequest) -> dict[str, Any]:
    body = r.body
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "name": body["name"],
        "scope_kind": SecurableKind(body.get("scope_kind", "METASTORE")),
        "scope_name": body.get("scope_name"),
        "condition": TagCondition.from_dict(body["condition"]),
        "effect": AbacEffect(body["effect"]),
        "privilege": (
            Privilege(body["privilege"]) if body.get("privilege") else None
        ),
        "mask_sql": body.get("mask_sql"),
        "predicate_sql": body.get("predicate_sql"),
        "principals": tuple(body.get("principals", ())),
        "exempt_principals": tuple(body.get("exempt_principals", ())),
    }


def _bind_drop_abac(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "policy_id": r.require_name(),
    }


ENDPOINTS = (
    EndpointDescriptor(
        name="grant",
        domain="grants_policies",
        handler=grant,
        mutation=True,
        cluster=ClusterBinding(plan=_grant_write_plan),
        rest=(
            RestBinding("POST", "grants", _bind_grant, status=201,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Grant a privilege on a securable.",
    ),
    EndpointDescriptor(
        name="revoke",
        domain="grants_policies",
        handler=revoke,
        mutation=True,
        cluster=ClusterBinding(plan=_grant_write_plan),
        rest=(
            RestBinding("DELETE", "grants", _bind_grant,
                        render=lambda result, kwargs: {}),
        ),
        doc="Revoke a previously granted privilege.",
    ),
    EndpointDescriptor(
        name="grants_on",
        domain="grants_policies",
        handler=grants_on,
        resolve=ResolveSpec(),
        operation="read_metadata",
        cluster=ClusterBinding(plan=_grant_read_plan, stale_ok=True),
        rest=(
            RestBinding(
                "GET", "grants", _grant_target,
                render=lambda result, kwargs: {
                    "grants": [g.to_dict() for g in result]
                },
            ),
        ),
        doc="List direct grants on a securable.",
    ),
    EndpointDescriptor(
        name="has_privilege",
        domain="grants_policies",
        handler=has_privilege,
        resolve=ResolveSpec(),
        cluster=ClusterBinding(plan=_grant_read_plan, stale_ok=True),
        rest=(
            RestBinding(
                "GET", "has-privilege", _bind_has_privilege,
                render=lambda result, kwargs: {"allowed": bool(result)},
            ),
        ),
        doc="Effective-privilege check for second-tier services.",
    ),
    EndpointDescriptor(
        name="create_abac_policy",
        domain="grants_policies",
        handler=create_abac_policy,
        mutation=True,
        target_param="name",
        cluster=ClusterBinding(plan=_plan_create_abac, mint_params=("policy_id",)),
        rest=(
            RestBinding("POST", "abac-policies", _bind_create_abac, status=201,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Define an ABAC policy at metastore/catalog/schema scope.",
    ),
    EndpointDescriptor(
        name="drop_abac_policy",
        domain="grants_policies",
        handler=drop_abac_policy,
        mutation=True,
        target_param="policy_id",
        cluster=ClusterBinding(
            plan=lambda p: RouteDecision.probe_for(_probe_abac, all_matches=True)
        ),
        rest=(
            RestBinding("DELETE", "abac-policies", _bind_drop_abac, named=True,
                        render=lambda result, kwargs: {}),
        ),
        doc="Drop an ABAC policy by id.",
    ),
)
