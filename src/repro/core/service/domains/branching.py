"""Branching domain: catalog branches over the commit-DAG store.

The git-for-data surface (create / list / diff / merge / delete branch),
declared through the :class:`~repro.core.service.registry.ApiRegistry`
like every other endpoint — so the REST routes, shard placement, audit,
deadlines, and metrics all come from the shared machinery. Branch
*content* reads and writes need no endpoints of their own: any existing
endpoint runs against a branch when the request carries a ``_branch``
kwarg, a ``?branch=`` query parameter, or a ``catalog@branch`` name
suffix (see :mod:`repro.core.service.pipeline`).

Merge semantics are securable-level three-way: the branch's overlay rows
are replayed onto main in **one atomic commit** (so main's audit/history
shows the merge as a single linear commit — indistinguishable from the
same writes applied directly), unless main also touched any of the same
securables since the fork, in which case the merge raises
:class:`~repro.errors.MergeConflictError` naming the contested
securable. Branch ops route to the shard owning their catalog, so on a
replicated cluster they replicate through the change log and fence on
failover exactly like ordinary writes.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.events import ChangeType
from repro.core.model.entity import SecurableKind
from repro.core.persistence import branching as br
from repro.core.persistence.store import WriteOp
from repro.core.service.registry import (
    ClusterBinding,
    EndpointDescriptor,
    RestBinding,
    RestRequest,
    RouteDecision,
)
from repro.core.view import MetastoreView
from repro.errors import (
    AlreadyExistsError,
    InvalidRequestError,
    MergeConflictError,
)

#: the securable-kind string branch events carry (branches are refs, not
#: entities, so they have no SecurableKind of their own)
_BRANCH_KIND = "BRANCH"


def _require_trunk(ctx) -> None:
    """Branch lifecycle ops address branches by name from the trunk —
    running them *on* a branch (nested forks) is not supported."""
    if ctx.branch is not None:
        raise InvalidRequestError(
            f"{ctx.api} must run on the trunk, not on branch {ctx.branch}"
        )


def _catalog_and_branch(params: dict[str, Any]) -> tuple[str, str, str]:
    catalog, branch = params["catalog"], params["branch"]
    return catalog, branch, br.branch_key(catalog, branch)


def _describe_conflicts(
    svc, metastore_id: str, bkey: str, conflicts
) -> tuple[tuple[str, str, str], ...]:
    """Resolve conflicting (table, key) pairs to securable names."""
    branch_snap = br.branch_snapshot(svc.store, metastore_id, bkey)
    # conflict handlers run on the trunk (_require_trunk), so the
    # kernel's raw_snapshot is exactly the trunk head here
    main_snap = svc.raw_snapshot(metastore_id)
    described = []
    for table, key in conflicts:
        value = branch_snap.get(table, key) or main_snap.get(table, key)
        name = (value or {}).get("name") or key
        described.append((table, key, name))
    return tuple(described)


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------


def create_branch(svc, ctx) -> dict[str, Any]:
    """Zero-copy fork: one ref row pinned at the current trunk version."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    catalog, branch, bkey = _catalog_and_branch(p)
    _require_trunk(ctx)
    br.validate_branch_name(branch)

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, SecurableKind.CATALOG, catalog)
        svc._authorize(view, metastore_id, principal, entity, "update", catalog)
        if view.row(br.BRANCHES_TABLE, bkey) is not None:
            raise AlreadyExistsError(f"branch already exists: {bkey}")
        ref = br.BranchRef(
            catalog=catalog,
            branch=branch,
            fork_version=view.version,
            head_version=view.version,
            created_at=svc.clock.now(),
        )
        ops = [WriteOp.put(br.BRANCHES_TABLE, bkey, ref.to_dict())]
        events = [
            (ChangeType.CREATED, entity.id, _BRANCH_KIND, bkey,
             {"fork_version": ref.fork_version})
        ]
        return ops, ref.to_dict(), events

    return svc._mutate(metastore_id, build)


def list_branches(svc, ctx) -> list[dict[str, Any]]:
    """All branches of one catalog (authorized like a metadata read)."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    catalog = p["catalog"]
    view = svc.view(metastore_id)
    entity = svc._resolve(view, metastore_id, SecurableKind.CATALOG, catalog)
    svc._authorize(view, metastore_id, principal, entity, "read_metadata",
                   catalog)
    refs = br.list_refs(svc.raw_snapshot(metastore_id), catalog)
    return [ref.to_dict() for ref in refs]


def diff_branch(svc, ctx) -> dict[str, Any]:
    """Securable-level diff between a branch and the trunk since the fork."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    catalog, _branch, bkey = _catalog_and_branch(p)
    _require_trunk(ctx)
    view = svc.view(metastore_id)
    entity = svc._resolve(view, metastore_id, SecurableKind.CATALOG, catalog)
    svc._authorize(view, metastore_id, principal, entity, "read_metadata",
                   catalog)
    diff = br.diff_branch(svc.store, metastore_id, bkey)
    return {
        "branch": bkey,
        "fork_version": diff.ref.fork_version,
        "head_version": diff.ref.head_version,
        "changes": [
            {"table": table, "key": key, "deleted": value is None}
            for table, key, value in diff.overlay
        ],
        "main_touched": len(diff.main_touched),
        "conflicts": [
            {"table": table, "key": key, "securable": name}
            for table, key, name in _describe_conflicts(
                svc, metastore_id, bkey, diff.conflicts
            )
        ],
    }


def merge_branch(svc, ctx) -> dict[str, Any]:
    """Merge a branch into main, or raise on securable-level conflicts."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    catalog, _branch, bkey = _catalog_and_branch(p)
    _require_trunk(ctx)

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, SecurableKind.CATALOG, catalog)
        svc._authorize(view, metastore_id, principal, entity, "update", catalog)
        diff = br.diff_branch(svc.store, metastore_id, bkey)
        if diff.conflicts:
            described = _describe_conflicts(
                svc, metastore_id, bkey, diff.conflicts
            )
            table, key, name = described[0]
            raise MergeConflictError(
                f"cannot merge {bkey}: both branch and main changed "
                f"securable {name!r} ({table}/{key}) since the fork",
                conflicts=described,
            )
        ops = br.merge_ops(diff)
        result = {
            "branch": bkey,
            "merged_changes": len(diff.overlay),
            "fork_version": diff.ref.fork_version,
        }
        events = [
            (ChangeType.UPDATED, entity.id, _BRANCH_KIND, bkey,
             {"action": "merge", "changes": len(diff.overlay)})
        ]
        return ops, result, events

    result = svc._mutate(metastore_id, build)
    svc._drop_branch_caches(metastore_id, bkey)
    result["version"] = svc.head_version(metastore_id)
    return result


def delete_branch(svc, ctx) -> None:
    """Drop a branch: its overlay rows and ref, in one commit."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    catalog, _branch, bkey = _catalog_and_branch(p)
    _require_trunk(ctx)

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, SecurableKind.CATALOG, catalog)
        svc._authorize(view, metastore_id, principal, entity, "update", catalog)
        ops = br.delete_branch_ops(svc.store, metastore_id, bkey)
        events = [
            (ChangeType.DELETED, entity.id, _BRANCH_KIND, bkey, {})
        ]
        return ops, None, events

    svc._mutate(metastore_id, build)
    svc._drop_branch_caches(metastore_id, bkey)


# ----------------------------------------------------------------------
# REST marshalling
# ----------------------------------------------------------------------


def _split_ref_name(request: RestRequest) -> tuple[str, str]:
    """The trailing path segment of a branch route is ``catalog@branch``."""
    return br.split_branch_key(request.require_name())


def _bind_create(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "catalog": r.require("catalog"),
        "branch": r.require("branch"),
    }


def _bind_list(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "catalog": r.require("catalog"),
    }


def _bind_named(r: RestRequest) -> dict[str, Any]:
    catalog, branch = _split_ref_name(r)
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "catalog": catalog,
        "branch": branch,
    }


def _plan_by_catalog(p: dict[str, Any]) -> RouteDecision:
    """Branch ops route by catalog key, like any write to that catalog."""
    return RouteDecision.shard(p["catalog"])


ENDPOINTS: tuple[EndpointDescriptor, ...] = (
    EndpointDescriptor(
        name="create_branch",
        domain="branching",
        handler=create_branch,
        mutation=True,
        target_param="branch",
        cluster=ClusterBinding(plan=_plan_by_catalog),
        rest=(
            RestBinding("POST", "branches", _bind_create, status=201),
        ),
        doc="Fork a zero-copy branch of a catalog at the current version.",
    ),
    EndpointDescriptor(
        name="list_branches",
        domain="branching",
        handler=list_branches,
        target_param="catalog",
        cluster=ClusterBinding(plan=_plan_by_catalog, stale_ok=True),
        rest=(
            RestBinding("GET", "branches", _bind_list,
                        render=lambda result, kwargs: {"branches": result}),
        ),
        doc="List a catalog's branches.",
    ),
    EndpointDescriptor(
        name="diff_branch",
        domain="branching",
        handler=diff_branch,
        target_param="branch",
        cluster=ClusterBinding(plan=_plan_by_catalog),
        rest=(
            RestBinding("GET", "branches", _bind_named, named=True),
        ),
        doc="Securable-level diff between a branch and main since the fork.",
    ),
    EndpointDescriptor(
        name="merge_branch",
        domain="branching",
        handler=merge_branch,
        mutation=True,
        target_param="branch",
        cluster=ClusterBinding(plan=_plan_by_catalog),
        rest=(
            RestBinding("PATCH", "branches", _bind_named, named=True),
        ),
        doc="Merge a branch into main (conflicts raise MERGE_CONFLICT).",
    ),
    EndpointDescriptor(
        name="delete_branch",
        domain="branching",
        handler=delete_branch,
        mutation=True,
        target_param="branch",
        cluster=ClusterBinding(plan=_plan_by_catalog),
        rest=(
            RestBinding("DELETE", "branches", _bind_named, named=True,
                        render=lambda result, kwargs: {"deleted": True}),
        ),
        doc="Delete a branch and its overlay rows.",
    ),
)

__all__ = [
    "ENDPOINTS",
    "create_branch",
    "delete_branch",
    "diff_branch",
    "list_branches",
    "merge_branch",
]
