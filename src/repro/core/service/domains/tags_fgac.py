"""Tags & FGAC domain: securable/column tags, row filters, column masks.

Tag writes share one mutator-driven commit helper; FGAC policies attach
to tables and are enforced at query time by the authorizer (vending
refuses direct storage access to FGAC-protected tables for untrusted
engines — see the vending domain).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.auth.fgac import ColumnMask, RowFilter
from repro.core.events import ChangeType
from repro.core.model.entity import SecurableKind
from repro.core.persistence.store import Tables, WriteOp
from repro.core.service.registry import (
    ClusterBinding,
    EndpointDescriptor,
    ResolveSpec,
    RestBinding,
    RestRequest,
    RouteDecision,
    catalog_route_key,
    route_securable_read,
    route_securable_write,
)
from repro.core.view import MetastoreView
from repro.errors import NotFoundError


def _update_tags(
    svc,
    metastore_id: str,
    principal: str,
    kind: SecurableKind,
    name: str,
    mutator: Callable[[dict], None],
    column: Optional[str] = None,
) -> None:
    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, kind, name)
        svc._authorize(view, metastore_id, principal, entity, "apply_tag", name)
        if column is not None:
            columns = {c["name"] for c in entity.spec.get("columns") or ()}
            if column not in columns:
                raise NotFoundError(f"no such column: {column} in {name}")
        existing = view.row(Tables.TAGS, entity.id) or {}
        tags = {
            "tags": dict(existing.get("tags", {})),
            "column_tags": {
                c: dict(t) for c, t in existing.get("column_tags", {}).items()
            },
        }
        mutator(tags)
        ops = [WriteOp.put(Tables.TAGS, entity.id, tags)]
        events = [(ChangeType.TAG_CHANGED, entity.id, kind.value, name, {})]
        return ops, None, events

    svc._mutate(metastore_id, build)


def set_tag(svc, ctx) -> None:
    p = ctx.params
    key, value = p["key"], p["value"]
    _update_tags(svc, p["metastore_id"], p["principal"], p["kind"], p["name"],
                 lambda tags: tags["tags"].__setitem__(key, value))


def unset_tag(svc, ctx) -> None:
    p = ctx.params
    key = p["key"]
    _update_tags(svc, p["metastore_id"], p["principal"], p["kind"], p["name"],
                 lambda tags: tags["tags"].pop(key, None))


def set_column_tag(svc, ctx) -> None:
    p = ctx.params
    column, key, value = p["column"], p["key"], p["value"]

    def mutate(tags: dict) -> None:
        tags["column_tags"].setdefault(column, {})[key] = value

    _update_tags(svc, p["metastore_id"], p["principal"], SecurableKind.TABLE,
                 p["table_name"], mutate, column=column)


def tags_of(svc, ctx) -> dict[str, str]:
    return svc.authorizer.tags_of(ctx.view, ctx.entity.id)


# ----------------------------------------------------------------------
# fine-grained access control policies
# ----------------------------------------------------------------------


def set_row_filter(svc, ctx) -> RowFilter:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    table_name, filter_name = p["table_name"], p["filter_name"]
    predicate_sql = p["predicate_sql"]
    exempt_principals = tuple(p.get("exempt_principals") or ())

    def build(view: MetastoreView):
        table = svc._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
        svc._authorize(
            view, metastore_id, principal, table, "manage_policies", table_name
        )
        row_filter = RowFilter(
            securable_id=table.id,
            name=filter_name,
            predicate_sql=predicate_sql,
            exempt_principals=frozenset(exempt_principals),
        )
        ops = [WriteOp.put(Tables.POLICIES, row_filter.key, row_filter.to_dict())]
        events = [
            (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
             {"policy": "row_filter", "name": filter_name})
        ]
        return ops, row_filter, events

    return svc._mutate(metastore_id, build)


def drop_row_filter(svc, ctx) -> None:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    table_name, filter_name = p["table_name"], p["filter_name"]

    def build(view: MetastoreView):
        table = svc._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
        svc._authorize(
            view, metastore_id, principal, table, "manage_policies", table_name
        )
        key = f"rowfilter/{table.id}/{filter_name}"
        if view.row(Tables.POLICIES, key) is None:
            raise NotFoundError(f"no row filter {filter_name!r} on {table_name}")
        ops = [WriteOp.delete(Tables.POLICIES, key)]
        events = [
            (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
             {"policy": "row_filter", "name": filter_name, "dropped": True})
        ]
        return ops, None, events

    svc._mutate(metastore_id, build)


def set_column_mask(svc, ctx) -> ColumnMask:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    table_name, column = p["table_name"], p["column"]
    mask_sql = p["mask_sql"]
    exempt_principals = tuple(p.get("exempt_principals") or ())

    def build(view: MetastoreView):
        table = svc._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
        svc._authorize(
            view, metastore_id, principal, table, "manage_policies", table_name
        )
        columns = {c["name"] for c in table.spec.get("columns") or ()}
        if column not in columns:
            raise NotFoundError(f"no such column: {column} in {table_name}")
        mask = ColumnMask(
            securable_id=table.id,
            column=column,
            mask_sql=mask_sql,
            exempt_principals=frozenset(exempt_principals),
        )
        ops = [WriteOp.put(Tables.POLICIES, mask.key, mask.to_dict())]
        events = [
            (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
             {"policy": "column_mask", "column": column})
        ]
        return ops, mask, events

    return svc._mutate(metastore_id, build)


def drop_column_mask(svc, ctx) -> None:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    table_name, column = p["table_name"], p["column"]

    def build(view: MetastoreView):
        table = svc._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
        svc._authorize(
            view, metastore_id, principal, table, "manage_policies", table_name
        )
        key = f"columnmask/{table.id}/{column}"
        if view.row(Tables.POLICIES, key) is None:
            raise NotFoundError(f"no column mask on {table_name}.{column}")
        ops = [WriteOp.delete(Tables.POLICIES, key)]
        events = [
            (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
             {"policy": "column_mask", "column": column, "dropped": True})
        ]
        return ops, None, events

    svc._mutate(metastore_id, build)


# ----------------------------------------------------------------------
# cluster placement
# ----------------------------------------------------------------------


def _tag_write_plan(p: dict) -> RouteDecision:
    return route_securable_write(p["kind"], p["name"])


def _tag_read_plan(p: dict) -> RouteDecision:
    return route_securable_read(p["kind"], p["name"])


def _table_plan(p: dict) -> RouteDecision:
    return RouteDecision.shard(catalog_route_key(p["table_name"]))


# ----------------------------------------------------------------------
# REST marshalling
# ----------------------------------------------------------------------


def _tag_target(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "kind": SecurableKind(r.require("securable_kind")),
        "name": r.require("securable_name"),
    }


def _bind_set_tag(r: RestRequest) -> dict[str, Any]:
    args = _tag_target(r)
    args["key"] = r.body["key"]
    args["value"] = r.body["value"]
    return args


def _bind_unset_tag(r: RestRequest) -> dict[str, Any]:
    args = _tag_target(r)
    args["key"] = r.require("key")
    return args


def _bind_set_column_tag(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "table_name": r.require("securable_name"),
        "column": r.body["column"],
        "key": r.body["key"],
        "value": r.body["value"],
    }


def _fgac_table(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "table_name": r.require("table"),
    }


def _bind_set_row_filter(r: RestRequest) -> dict[str, Any]:
    args = _fgac_table(r)
    args.update(
        filter_name=r.body["name"],
        predicate_sql=r.body["predicate_sql"],
        exempt_principals=tuple(r.body.get("exempt_principals", ())),
    )
    return args


def _bind_drop_row_filter(r: RestRequest) -> dict[str, Any]:
    args = _fgac_table(r)
    args["filter_name"] = r.require("name")
    return args


def _bind_set_column_mask(r: RestRequest) -> dict[str, Any]:
    args = _fgac_table(r)
    args.update(
        column=r.body["column"],
        mask_sql=r.body["mask_sql"],
        exempt_principals=tuple(r.body.get("exempt_principals", ())),
    )
    return args


def _bind_drop_column_mask(r: RestRequest) -> dict[str, Any]:
    args = _fgac_table(r)
    args["column"] = r.require("column")
    return args


ENDPOINTS = (
    EndpointDescriptor(
        name="set_column_tag",
        domain="tags_fgac",
        handler=set_column_tag,
        mutation=True,
        target_param="table_name",
        cluster=ClusterBinding(plan=_table_plan),
        rest=(
            # registered before set_tag: a body carrying "column" means a
            # column tag, everything else on POST /tags is a securable tag
            RestBinding("POST", "tags", _bind_set_column_tag,
                        when=lambda r: "column" in r.body,
                        render=lambda result, kwargs: {}),
        ),
        doc="Tag one column of a table.",
    ),
    EndpointDescriptor(
        name="set_tag",
        domain="tags_fgac",
        handler=set_tag,
        mutation=True,
        cluster=ClusterBinding(plan=_tag_write_plan),
        rest=(
            RestBinding("POST", "tags", _bind_set_tag,
                        render=lambda result, kwargs: {}),
        ),
        doc="Set a tag on a securable.",
    ),
    EndpointDescriptor(
        name="unset_tag",
        domain="tags_fgac",
        handler=unset_tag,
        mutation=True,
        cluster=ClusterBinding(plan=_tag_write_plan),
        rest=(
            RestBinding("DELETE", "tags", _bind_unset_tag,
                        render=lambda result, kwargs: {}),
        ),
        doc="Remove a tag from a securable.",
    ),
    EndpointDescriptor(
        name="tags_of",
        domain="tags_fgac",
        handler=tags_of,
        resolve=ResolveSpec(),
        operation="read_metadata",
        cluster=ClusterBinding(plan=_tag_read_plan, stale_ok=True),
        rest=(
            RestBinding("GET", "tags", _tag_target,
                        render=lambda result, kwargs: {"tags": result}),
        ),
        doc="Effective tags of a securable (inherited included).",
    ),
    EndpointDescriptor(
        name="set_row_filter",
        domain="tags_fgac",
        handler=set_row_filter,
        mutation=True,
        target_param="table_name",
        cluster=ClusterBinding(plan=_table_plan),
        rest=(
            RestBinding("POST", "row-filters", _bind_set_row_filter, status=201,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Attach a row filter to a table.",
    ),
    EndpointDescriptor(
        name="drop_row_filter",
        domain="tags_fgac",
        handler=drop_row_filter,
        mutation=True,
        target_param="table_name",
        cluster=ClusterBinding(plan=_table_plan),
        rest=(
            RestBinding("DELETE", "row-filters", _bind_drop_row_filter,
                        render=lambda result, kwargs: {}),
        ),
        doc="Drop a row filter from a table.",
    ),
    EndpointDescriptor(
        name="set_column_mask",
        domain="tags_fgac",
        handler=set_column_mask,
        mutation=True,
        target_param="table_name",
        cluster=ClusterBinding(plan=_table_plan),
        rest=(
            RestBinding("POST", "column-masks", _bind_set_column_mask, status=201,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Attach a column mask to a table column.",
    ),
    EndpointDescriptor(
        name="drop_column_mask",
        domain="tags_fgac",
        handler=drop_column_mask,
        mutation=True,
        target_param="table_name",
        cluster=ClusterBinding(plan=_table_plan),
        rest=(
            RestBinding("DELETE", "column-masks", _bind_drop_column_mask,
                        render=lambda result, kwargs: {}),
        ),
        doc="Drop a column mask.",
    ),
)
