"""Securables domain: metastores, securable CRUD, and lifecycle (GC).

Handlers receive ``(svc, ctx)`` — the service kernel and the pipeline's
:class:`~repro.core.service.pipeline.RequestContext` — and read their
arguments from ``ctx.params``. Mutations go through the kernel's
optimistic commit loop and therefore re-resolve and re-authorize against
every fresh view; the read endpoints lean on the pipeline's resolution
and authorization interceptors instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.cloudstore.object_store import StoragePath
from repro.core.auth.privileges import Privilege, SYSTEM_PRINCIPAL
from repro.core.events import ChangeType
from repro.core.model.entity import (
    Entity,
    EntityState,
    SecurableKind,
    new_entity_id,
)
from repro.core.model.naming import validate_identifier
from repro.core.persistence.store import Tables, WriteOp
from repro.core.service.registry import (
    ClusterBinding,
    EndpointDescriptor,
    KIND_RESOURCES,
    REPLICATED_ROOT_KINDS,
    ResolveSpec,
    RestBinding,
    RestRequest,
    RouteDecision,
    catalog_route_key,
    route_securable_read,
    route_securable_write,
)
from repro.core.view import MetastoreView
from repro.errors import (
    AlreadyExistsError,
    InvalidRequestError,
    NotFoundError,
    PathConflictError,
    PermissionDeniedError,
)

#: table_type values that carry no backing storage of their own.
_STORAGELESS_TABLE_TYPES = frozenset({"VIEW", "MATERIALIZED_VIEW", "FOREIGN"})


@dataclass
class GcReport:
    """Outcome of one garbage-collection pass."""

    purged_entities: int = 0
    purged_grants: int = 0
    deleted_objects: int = 0


# ----------------------------------------------------------------------
# metastore management
# ----------------------------------------------------------------------


def create_metastore(svc, ctx) -> Entity:
    """Create a metastore: the namespace root and unit of isolation."""
    p = ctx.params
    name, owner = p["name"], p["owner"]
    region = p.get("region", "us-west")
    validate_identifier(name, what="metastore name")
    svc.directory.get(owner)
    with svc._lock:
        if name in svc._metastore_names:
            raise AlreadyExistsError(f"metastore exists: {name}")
        # a cluster pre-mints the id so every shard replica shares it
        metastore_id = p.get("metastore_id") or new_entity_id()
        svc.store.create_metastore_slot(metastore_id)
        now = svc.clock.now()
        entity = Entity(
            id=metastore_id,
            kind=SecurableKind.METASTORE,
            name=name,
            metastore_id=metastore_id,
            parent_id=None,
            owner=owner,
            created_at=now,
            updated_at=now,
            spec={"region": region},
        )
        new_version = svc.store.commit(
            metastore_id, 0,
            [WriteOp.put(Tables.ENTITIES, metastore_id, entity.to_dict())],
        )
        svc._install_metastore(name, metastore_id)
    svc.events.publish(
        metastore_id, new_version, ChangeType.CREATED, metastore_id,
        SecurableKind.METASTORE.value, name, svc.clock.now(),
        {"region": region},
    )
    svc._audit(metastore_id, owner, "create_metastore", name, True)
    return entity


def list_metastores(svc, ctx) -> list[str]:
    return svc.metastore_ids()


# ----------------------------------------------------------------------
# securable CRUD
# ----------------------------------------------------------------------


def create_securable(svc, ctx) -> Entity:
    """Create any securable; behaviour is driven by its manifest."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, name = p["kind"], p["name"]
    comment = p.get("comment") or ""
    storage_path = p.get("storage_path")
    spec, properties = p.get("spec"), p.get("properties")
    if kind is SecurableKind.METASTORE:
        raise InvalidRequestError("use create_metastore")
    manifest = svc.registry.get(kind)

    def build(view: MetastoreView):
        parent, leaf_name = svc._parent_of(view, metastore_id, kind, name)
        identities = svc.authorizer.identities(principal)

        # usage gates along the parent chain (including the parent)
        gates = svc.authorizer.check_usage_gates(view, parent, identities)
        gates.raise_if_denied()
        if parent.kind in (SecurableKind.CATALOG, SecurableKind.SCHEMA):
            needed = (
                Privilege.USE_CATALOG
                if parent.kind is SecurableKind.CATALOG
                else Privilege.USE_SCHEMA
            )
            if not (
                svc.authorizer.is_owner_or_admin(view, parent, identities)
                or svc.authorizer.has_privilege(view, parent, needed, identities)
            ):
                raise PermissionDeniedError(
                    f"missing {needed.value} on {parent.name!r}"
                )

        # creation privilege on the parent (admins always may)
        create_privilege = manifest.create_privilege
        allowed = svc.authorizer.is_owner_or_admin(view, parent, identities)
        if not allowed and create_privilege is not None:
            allowed = svc.authorizer.has_privilege(
                view, parent, create_privilege, identities
            )
        if not allowed:
            raise PermissionDeniedError(
                f"{principal!r} may not create {kind.value.lower()} in "
                f"{parent.name!r}"
            )

        # name uniqueness within (parent, namespace group)
        if view.entity_by_name(parent.id, manifest.namespace_group, leaf_name):
            raise AlreadyExistsError(
                f"{kind.value.lower()} already exists: {name}"
            )

        normalized = manifest.validate_create(dict(spec or {}))
        entity_id = p.get("entity_id") or new_entity_id()
        entity_storage = _prepare_storage(
            svc, view, metastore_id, manifest, normalized, storage_path,
            entity_id, parent, identities, principal,
        )
        _validate_dependencies(svc, view, metastore_id, normalized, principal)

        now = svc.clock.now()
        entity = Entity(
            id=entity_id,
            kind=kind,
            name=leaf_name,
            metastore_id=metastore_id,
            parent_id=parent.id,
            owner=principal,
            created_at=now,
            updated_at=now,
            comment=comment,
            storage_path=entity_storage,
            properties=dict(properties or {}),
            spec=normalized,
        )
        ops = [WriteOp.put(Tables.ENTITIES, entity_id, entity.to_dict())]
        events = [
            (ChangeType.CREATED, entity_id, kind.value, name, {"owner": principal})
        ]
        return ops, entity, events

    entity = svc._mutate(metastore_id, build)
    svc._audit(metastore_id, principal, "create", name, True, kind=kind.value)
    return entity


def _prepare_storage(
    svc,
    view: MetastoreView,
    metastore_id: str,
    manifest,
    normalized: dict,
    storage_path: Optional[str],
    entity_id: str,
    parent: Entity,
    identities: frozenset[str],
    principal: str,
) -> Optional[str]:
    """Allocate managed storage or validate external storage."""
    kind = manifest.kind
    if not manifest.has_storage:
        if storage_path:
            raise InvalidRequestError(
                f"{kind.value.lower()} does not take a storage path"
            )
        return None

    if kind is SecurableKind.TABLE:
        table_type = normalized.get("table_type")
        if table_type in _STORAGELESS_TABLE_TYPES:
            if storage_path:
                raise InvalidRequestError(f"{table_type} tables have no storage")
            return None
        managed = table_type in ("MANAGED", "SHALLOW_CLONE")
    elif kind is SecurableKind.VOLUME:
        managed = normalized.get("volume_type") == "MANAGED"
    elif kind is SecurableKind.MODEL_VERSION:
        # artifacts live under the registered model's managed directory
        base = parent.storage_path
        if base is None:
            raise InvalidRequestError("parent model has no artifact storage")
        return StoragePath.parse(base).child(f"v{normalized['version']}").url()
    else:
        managed = True  # registered models, external locations handled below

    if kind is SecurableKind.EXTERNAL_LOCATION:
        if not storage_path:
            raise InvalidRequestError("external locations require a storage path")
        location_path = StoragePath.parse(storage_path)
        for other in view.entities(SecurableKind.EXTERNAL_LOCATION):
            if other.storage_path and StoragePath.parse(other.storage_path).overlaps(
                location_path
            ):
                raise PathConflictError(
                    f"location path overlaps external location {other.name!r}"
                )
        credential_name = normalized.get("credential_name")
        credential = view.entity_by_name(
            metastore_id, "storage_credential", credential_name
        )
        if credential is None:
            raise NotFoundError(f"no such storage credential: {credential_name}")
        svc.object_store.ensure_bucket(location_path.scheme, location_path.bucket)
        return location_path.url()

    if managed:
        if storage_path:
            raise InvalidRequestError("managed assets get catalog-allocated paths")
        allocated = svc._managed_root.child(
            metastore_id, kind.value.lower() + "s", entity_id
        )
        return allocated.url()

    # external table/volume: path must be provided, free of overlaps,
    # and covered by an external location the caller may use.
    if not storage_path:
        raise InvalidRequestError(
            f"external {kind.value.lower()} requires a storage path"
        )
    path = StoragePath.parse(storage_path)
    overlapping = view.overlapping_assets(path)
    if overlapping:
        raise PathConflictError(
            f"path {path.url()} overlaps asset(s) {sorted(overlapping)}"
        )
    location = _covering_location(view, path)
    if location is None:
        raise PermissionDeniedError(
            f"no external location covers {path.url()}"
        )
    needed = (
        Privilege.CREATE_TABLE
        if kind is SecurableKind.TABLE
        else Privilege.WRITE_FILES
    )
    if not (
        svc.authorizer.is_owner_or_admin(view, location, identities)
        or svc.authorizer.has_privilege(view, location, needed, identities)
    ):
        raise PermissionDeniedError(
            f"{principal!r} lacks {needed.value} on external location "
            f"{location.name!r}"
        )
    return path.url()


def _covering_location(view: MetastoreView, path: StoragePath) -> Optional[Entity]:
    for location in view.entities(SecurableKind.EXTERNAL_LOCATION):
        if location.storage_path and StoragePath.parse(
            location.storage_path
        ).contains(path):
            return location
    return None


def _validate_dependencies(
    svc, view: MetastoreView, metastore_id: str, normalized: dict, principal: str
) -> None:
    """Views and shallow clones need resolvable, readable bases."""
    dependencies = list(normalized.get("view_dependencies") or ())
    base_table = normalized.get("base_table")
    if base_table:
        dependencies.append(base_table)
    for dependency in dependencies:
        base = svc._resolve(view, metastore_id, SecurableKind.TABLE, dependency)
        decision = svc.authorizer.authorize(view, base, "read_data", principal)
        if not decision.allowed:
            raise PermissionDeniedError(
                f"creating requires SELECT on base table {dependency}: "
                f"{decision.reason}"
            )


def get_securable(svc, ctx) -> Entity:
    # resolution + authorization already ran as pipeline interceptors
    return ctx.entity


def list_securables(svc, ctx) -> list[Entity]:
    """List children of a container, filtered to what the caller may see."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, parent_name = p["kind"], p.get("parent_name")
    view = svc.view(metastore_id)
    manifest = svc.registry.get(kind)
    if parent_name is None:
        parent_id = metastore_id
    else:
        parent_kind = manifest.parent_kind
        parent = svc._resolve(view, metastore_id, parent_kind, parent_name)
        parent_id = parent.id
    children = view.children(parent_id, kind)
    identities = svc.authorizer.identities(principal)
    cache = svc._hot_caches_for(metastore_id, view)
    visible = [
        child for child in children
        if svc.authorizer.visible(view, child, identities, cache)
    ]
    svc._audit(metastore_id, principal, "list", parent_name or "<root>",
               True, kind=kind.value, returned=len(visible))
    return sorted(visible, key=lambda e: e.name)


def update_securable(svc, ctx) -> Entity:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, name = p["kind"], p["name"]
    comment = p.get("comment")
    properties, spec_changes = p.get("properties"), p.get("spec_changes")
    manifest = svc.registry.get(kind)

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, kind, name)
        svc._authorize(view, metastore_id, principal, entity, "update", name)
        changes: dict[str, Any] = {}
        if comment is not None:
            changes["comment"] = comment
        if properties is not None:
            merged = dict(entity.properties)
            merged.update(properties)
            changes["properties"] = merged
        if spec_changes:
            normalized = manifest.validate_update(dict(spec_changes))
            new_spec = dict(entity.spec)
            new_spec.update(normalized)
            changes["spec"] = new_spec
        if not changes:
            return [], entity, []
        updated = entity.with_updates(updated_at=svc.clock.now(), **changes)
        ops = [WriteOp.put(Tables.ENTITIES, entity.id, updated.to_dict())]
        events = [(ChangeType.UPDATED, entity.id, kind.value, name, {})]
        return ops, updated, events

    return svc._mutate(metastore_id, build)


def rename_securable(svc, ctx) -> Entity:
    """Rename within the same parent (e.g. ALTER TABLE ... RENAME).

    The storage path is untouched: names are a catalog concept, the
    asset's data never moves (and path-based access keeps resolving
    to the same asset).
    """
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, name, new_name = p["kind"], p["name"], p["new_name"]
    validate_identifier(new_name, what="new name")
    manifest = svc.registry.get(kind)

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, kind, name)
        svc._authorize(view, metastore_id, principal, entity, "update", name)
        if view.entity_by_name(entity.parent_id, manifest.namespace_group,
                               new_name):
            raise AlreadyExistsError(
                f"{kind.value.lower()} already exists: {new_name}"
            )
        renamed = entity.with_updates(updated_at=svc.clock.now(),
                                      name=new_name)
        ops = [WriteOp.put(Tables.ENTITIES, entity.id, renamed.to_dict())]
        events = [(ChangeType.UPDATED, entity.id, kind.value, new_name,
                   {"renamed_from": name})]
        return ops, renamed, events

    return svc._mutate(metastore_id, build)


def transfer_ownership(svc, ctx) -> Entity:
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, name, new_owner = p["kind"], p["name"], p["new_owner"]
    svc.directory.get(new_owner)

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, kind, name)
        svc._authorize(
            view, metastore_id, principal, entity, "transfer_ownership", name
        )
        updated = entity.with_updates(updated_at=svc.clock.now(), owner=new_owner)
        ops = [WriteOp.put(Tables.ENTITIES, entity.id, updated.to_dict())]
        events = [
            (ChangeType.UPDATED, entity.id, kind.value, name,
             {"new_owner": new_owner})
        ]
        return ops, updated, events

    return svc._mutate(metastore_id, build)


def delete_securable(svc, ctx) -> list[Entity]:
    """Soft-delete a securable (and, with ``cascade``, its children).

    Deletion propagates from parents to children (paper 4.2.1); the
    rows and managed storage remain until :func:`purge_deleted` runs.
    """
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind, name = p["kind"], p["name"]
    cascade = bool(p.get("cascade", False))

    def build(view: MetastoreView):
        entity = svc._resolve(view, metastore_id, kind, name)
        svc._authorize(view, metastore_id, principal, entity, "delete", name)
        doomed = _collect_subtree(view, entity)
        if len(doomed) > 1 and not cascade:
            raise InvalidRequestError(
                f"{name} has {len(doomed) - 1} child securable(s); "
                "pass cascade=True"
            )
        now = svc.clock.now()
        ops = []
        events = []
        deleted_entities = []
        for victim in doomed:
            marked = victim.soft_deleted(now)
            deleted_entities.append(marked)
            ops.append(WriteOp.put(Tables.ENTITIES, victim.id, marked.to_dict()))
            events.append(
                (ChangeType.DELETED, victim.id, victim.kind.value,
                 view.full_name(victim), {})
            )
        return ops, deleted_entities, events

    deleted = svc._mutate(metastore_id, build)
    svc._audit(metastore_id, principal, "delete", name, True,
               cascade=cascade, count=len(deleted))
    return deleted


def _collect_subtree(view: MetastoreView, root: Entity) -> list[Entity]:
    """The entity plus all transitive active children (parents first)."""
    out = [root]
    frontier = [root]
    while frontier:
        current = frontier.pop()
        for child in view.children(current.id):
            out.append(child)
            frontier.append(child)
    return out


# ----------------------------------------------------------------------
# lifecycle: garbage collection
# ----------------------------------------------------------------------


def purge_deleted(svc, ctx) -> GcReport:
    """Hard-delete soft-deleted entities and release their resources.

    Runs under the catalog's own authority (it owns managed storage).
    """
    p = ctx.params
    metastore_id = p["metastore_id"]
    older_than_seconds = float(p.get("older_than_seconds", 0.0))
    report = GcReport()
    cutoff = svc.clock.now() - older_than_seconds

    def build(view: MetastoreView):
        ops: list[WriteOp] = []
        events = []
        # raw_snapshot (not store.snapshot): purge must observe the
        # request's branch overlay, and soft-deleted rows live below
        # the entity view
        snapshot = svc.raw_snapshot(metastore_id)
        for key, value in snapshot.scan(Tables.ENTITIES):
            entity = Entity.from_dict(value)
            if entity.state is not EntityState.DELETED:
                continue
            if entity.deleted_at is not None and entity.deleted_at > cutoff:
                continue
            ops.append(WriteOp.delete(Tables.ENTITIES, entity.id))
            report.purged_entities += 1
            # drop grants on the purged securable (grant keys start with
            # the securable id, so this is one range read on prefix-
            # ordered backends)
            for grant_key, _ in snapshot.scan_prefix(
                Tables.GRANTS, f"{entity.id}/"
            ):
                ops.append(WriteOp.delete(Tables.GRANTS, grant_key))
                report.purged_grants += 1
            # drop tags and per-table policies
            if snapshot.get(Tables.TAGS, entity.id) is not None:
                ops.append(WriteOp.delete(Tables.TAGS, entity.id))
            for policy_key, policy_value in snapshot.scan(Tables.POLICIES):
                if policy_value.get("securable_id") == entity.id or (
                    policy_value.get("scope_id") == entity.id
                ):
                    ops.append(WriteOp.delete(Tables.POLICIES, policy_key))
            # release managed storage
            if entity.storage_path and svc._is_managed_path(entity.storage_path):
                path = StoragePath.parse(entity.storage_path)
                report.deleted_objects += svc.object_store.delete_prefix(path)
            events.append(
                (ChangeType.PURGED, entity.id, entity.kind.value, entity.name, {})
            )
        return ops, report, events

    result = svc._mutate(metastore_id, build)
    svc._audit(metastore_id, SYSTEM_PRINCIPAL, "purge_deleted", "<gc>", True,
               purged=result.purged_entities)
    return result


# ----------------------------------------------------------------------
# cluster placement
# ----------------------------------------------------------------------


def _merge_entity_lists(results: list, params: dict) -> list[Entity]:
    return sorted((e for shard_result in results for e in shard_result),
                  key=lambda e: e.name)


def _merge_gc(results: list, params: dict) -> GcReport:
    # note: replicated metastore-scope rows are purged once per shard, so
    # cluster-wide entity/grant counts exceed the single-node numbers;
    # object deletions go through the shared object store and stay exact.
    total = GcReport()
    for report in results:
        total.purged_entities += report.purged_entities
        total.purged_grants += report.purged_grants
        total.deleted_objects += report.deleted_objects
    return total


def _plan_list(p: dict) -> RouteDecision:
    kind = p["kind"]
    if kind is SecurableKind.CATALOG:
        return RouteDecision.scatter(_merge_entity_lists)
    if kind in REPLICATED_ROOT_KINDS:
        return RouteDecision.home()
    parent_name = p.get("parent_name")
    if parent_name is None:
        return RouteDecision.home()
    return RouteDecision.shard(catalog_route_key(parent_name))


def _plan_rename(p: dict) -> RouteDecision:
    if p["kind"] is SecurableKind.CATALOG:
        return RouteDecision.move(p["name"], p["new_name"])
    return route_securable_write(p["kind"], p["name"])


def _write_plan(p: dict) -> RouteDecision:
    return route_securable_write(p["kind"], p["name"])


def _read_plan(p: dict) -> RouteDecision:
    return route_securable_read(p["kind"], p["name"])


# ----------------------------------------------------------------------
# REST marshalling
# ----------------------------------------------------------------------


def _securable_args(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "kind": r.kind,
    }


def _bind_create_metastore(r: RestRequest) -> dict[str, Any]:
    return {
        "name": r.body["name"],
        "owner": r.body.get("owner", r.principal),
        "region": r.body.get("region", "us-west"),
    }


def _bind_create(r: RestRequest) -> dict[str, Any]:
    args = _securable_args(r)
    args.update(
        name=r.body["name"],
        comment=r.body.get("comment", ""),
        storage_path=r.body.get("storage_location"),
        spec=r.body.get("spec"),
        properties=r.body.get("properties"),
    )
    return args


def _bind_list(r: RestRequest) -> dict[str, Any]:
    args = _securable_args(r)
    args["parent_name"] = r.params.get("parent")
    return args


def _bind_named(r: RestRequest) -> dict[str, Any]:
    args = _securable_args(r)
    args["name"] = r.require_name()
    return args


def _bind_update(r: RestRequest) -> dict[str, Any]:
    args = _bind_named(r)
    args.update(
        comment=r.body.get("comment"),
        properties=r.body.get("properties"),
        spec_changes=r.body.get("spec"),
    )
    return args


def _bind_rename(r: RestRequest) -> dict[str, Any]:
    args = _bind_named(r)
    args["new_name"] = r.body["new_name"]
    return args


def _bind_transfer(r: RestRequest) -> dict[str, Any]:
    args = _bind_named(r)
    args["new_owner"] = r.body["new_owner"]
    return args


def _bind_delete(r: RestRequest) -> dict[str, Any]:
    args = _bind_named(r)
    args["cascade"] = r.params.get("cascade", "false").lower() == "true"
    return args


def _bind_purge(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "older_than_seconds": float(r.field_any("older_than_seconds", 0.0)),
    }


ENDPOINTS = (
    EndpointDescriptor(
        name="create_metastore",
        domain="securables",
        handler=create_metastore,
        mutation=True,
        principal_param="owner",
        cluster=ClusterBinding(
            plan=lambda p: RouteDecision.broadcast(),
            mint_params=("metastore_id",),
        ),
        rest=(
            RestBinding("POST", "metastores", _bind_create_metastore, status=201,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Create a metastore (namespace root, unit of isolation).",
    ),
    EndpointDescriptor(
        name="list_metastores",
        domain="securables",
        handler=list_metastores,
        target_param=None,
        rest=(
            RestBinding("GET", "metastores", lambda r: {},
                        render=lambda result, kwargs: {"metastores": result}),
        ),
        doc="List registered metastore ids.",
    ),
    EndpointDescriptor(
        name="create_securable",
        domain="securables",
        handler=create_securable,
        mutation=True,
        cluster=ClusterBinding(plan=_write_plan, mint_params=("entity_id",)),
        rest=(
            RestBinding("POST", KIND_RESOURCES, _bind_create, status=201,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Create any securable; behaviour driven by its manifest.",
    ),
    EndpointDescriptor(
        name="get_securable",
        domain="securables",
        handler=get_securable,
        resolve=ResolveSpec(),
        operation="read_metadata",
        cluster=ClusterBinding(plan=_read_plan, stale_ok=True),
        rest=(
            RestBinding("GET", KIND_RESOURCES, _bind_named, named=True,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Fetch one securable by fully qualified name.",
    ),
    EndpointDescriptor(
        name="list_securables",
        domain="securables",
        handler=list_securables,
        target_param="parent_name",
        cluster=ClusterBinding(plan=_plan_list, stale_ok=True),
        rest=(
            RestBinding(
                "GET", KIND_RESOURCES, _bind_list,
                render=lambda result, kwargs: {
                    "items": [e.to_dict() for e in result]
                },
            ),
        ),
        doc="List children of a container, filtered by visibility.",
    ),
    EndpointDescriptor(
        name="rename_securable",
        domain="securables",
        handler=rename_securable,
        mutation=True,
        cluster=ClusterBinding(plan=_plan_rename),
        rest=(
            RestBinding("PATCH", KIND_RESOURCES, _bind_rename, named=True,
                        when=lambda r: "new_name" in r.body,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Rename a securable within its parent.",
    ),
    EndpointDescriptor(
        name="transfer_ownership",
        domain="securables",
        handler=transfer_ownership,
        mutation=True,
        cluster=ClusterBinding(plan=_write_plan),
        rest=(
            RestBinding("PATCH", KIND_RESOURCES, _bind_transfer, named=True,
                        when=lambda r: "new_owner" in r.body,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Transfer ownership of a securable.",
    ),
    EndpointDescriptor(
        name="update_securable",
        domain="securables",
        handler=update_securable,
        mutation=True,
        cluster=ClusterBinding(plan=_write_plan),
        rest=(
            # registered after rename/transfer: their `when` guards get
            # first pick of the shared PATCH route
            RestBinding("PATCH", KIND_RESOURCES, _bind_update, named=True,
                        render=lambda result, kwargs: result.to_dict()),
        ),
        doc="Update comment/properties/spec of a securable.",
    ),
    EndpointDescriptor(
        name="delete_securable",
        domain="securables",
        handler=delete_securable,
        mutation=True,
        cluster=ClusterBinding(plan=_write_plan),
        rest=(
            RestBinding("DELETE", KIND_RESOURCES, _bind_delete, named=True,
                        render=lambda result, kwargs: {"deleted": len(result)}),
        ),
        doc="Soft-delete a securable (cascade optional).",
    ),
    EndpointDescriptor(
        name="purge_deleted",
        domain="securables",
        handler=purge_deleted,
        mutation=True,
        target_param=None,
        cluster=ClusterBinding(plan=lambda p: RouteDecision.scatter(_merge_gc)),
        rest=(
            RestBinding(
                "POST", "purge-deleted", _bind_purge,
                render=lambda result, kwargs: {
                    "purged_entities": result.purged_entities,
                    "purged_grants": result.purged_grants,
                    "deleted_objects": result.deleted_objects,
                },
            ),
        ),
        doc="Hard-delete soft-deleted entities and release storage.",
    ),
)
