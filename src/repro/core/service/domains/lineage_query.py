"""Lineage & query domain: lineage capture/traversal, information
schema, batched query resolution, and discovery filtering (§4.2.2, §4.4,
§4.5).

Every read here is visibility-filtered through the authorizer (with the
version-pinned hot caches when available), so discovery surfaces never
leak names the caller cannot see.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.model.entity import Entity, SecurableKind
from repro.core.service.registry import (
    ClusterBinding,
    EndpointDescriptor,
    REPLICATED_ROOT_KINDS,
    RestBinding,
    RestRequest,
    RouteDecision,
    catalog_route_key,
)
from repro.errors import InvalidRequestError, NotFoundError


def record_lineage(svc, ctx) -> None:
    """Engines submit lineage during query processing."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    sources, target = p["sources"], p["target"]
    operation = p["operation"]
    columns = tuple(p.get("columns") or ())
    svc.lineage.record(
        metastore_id, principal, sources, target, operation,
        svc.clock.now(), columns,
    )
    svc._audit(metastore_id, principal, "record_lineage", target, True,
               sources=len(sources), operation=operation)


def lineage(svc, ctx) -> set[str]:
    """Lineage closure in one direction, filtered to visible assets."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    asset = p["asset"]
    direction = p.get("direction", "downstream")
    if direction == "downstream":
        closure = svc.lineage.downstream(metastore_id, asset)
    elif direction == "upstream":
        closure = svc.lineage.upstream(metastore_id, asset)
    else:
        raise InvalidRequestError("direction must be upstream/downstream")
    return _filter_lineage_names(svc, metastore_id, principal, closure)


def _filter_lineage_names(
    svc, metastore_id: str, principal: str, names: set[str]
) -> set[str]:
    view = svc.view(metastore_id)
    identities = svc.authorizer.identities(principal)
    cache = svc._hot_caches_for(metastore_id, view)
    visible = set()
    for name in names:
        try:
            entity = svc._resolve(view, metastore_id, SecurableKind.TABLE, name)
        except NotFoundError:
            continue
        if svc.authorizer.visible(view, entity, identities, cache):
            visible.add(name)
    return visible


def query_information_schema(svc, ctx) -> list[dict[str, Any]]:
    """Relational view over catalog metadata, with pushdown.

    ``where`` is a conjunction of ``(attribute, op, literal)`` with op
    in ``= != < <= > >=``; attributes are the returned column names.
    Results are filtered to what the caller may see, like any listing.
    """
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    kind = p["kind"]
    catalog, schema = p.get("catalog"), p.get("schema")
    where = tuple(p.get("where") or ())
    limit = p.get("limit")
    view = svc.view(metastore_id)
    rows: list[dict[str, Any]] = []
    identities = svc.authorizer.identities(principal)
    cache = svc._hot_caches_for(metastore_id, view)
    operators: dict[str, Callable[[Any, Any], bool]] = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a is not None and a < b,
        "<=": lambda a, b: a is not None and a <= b,
        ">": lambda a, b: a is not None and a > b,
        ">=": lambda a, b: a is not None and a >= b,
    }
    for entity in view.entities(kind):
        full_name = view.full_name(entity)
        segments = full_name.split(".")
        row = {
            "name": entity.name,
            "full_name": full_name,
            "catalog_name": segments[0] if len(segments) > 1 else None,
            "schema_name": segments[1] if len(segments) > 2 else None,
            "kind": entity.kind.value,
            "owner": entity.owner,
            "comment": entity.comment,
            "created_at": entity.created_at,
            "updated_at": entity.updated_at,
            "storage_path": entity.storage_path,
            "table_type": entity.spec.get("table_type"),
            "format": entity.spec.get("format"),
        }
        if catalog is not None and row["catalog_name"] != catalog:
            continue
        if schema is not None and row["schema_name"] != schema:
            continue
        matched = True
        for attribute, op, literal in where:
            if op not in operators:
                raise InvalidRequestError(f"unsupported operator {op!r}")
            if attribute not in row:
                raise InvalidRequestError(
                    f"unknown information_schema column {attribute!r}"
                )
            if not operators[op](row[attribute], literal):
                matched = False
                break
        if not matched:
            continue
        if not svc.authorizer.visible(view, entity, identities, cache):
            continue
        rows.append(row)
        if limit is not None and len(rows) >= limit:
            break
    svc._audit(metastore_id, principal, "information_schema",
               kind.value, True, returned=len(rows))
    return sorted(rows, key=lambda r: r["full_name"])


def resolve_for_query(svc, ctx):
    """One batched API call returning the full metadata closure for a
    query (see :mod:`repro.core.service.batch`)."""
    from repro.core.service.batch import QueryResolver

    p = ctx.params
    return QueryResolver(svc).resolve(
        p["metastore_id"],
        p["principal"],
        p["table_names"],
        write_tables=tuple(p.get("write_tables") or ()),
        function_names=tuple(p.get("function_names") or ()),
        include_credentials=bool(p.get("include_credentials", True)),
        engine_trusted=p.get("engine_trusted"),
        workspace=p.get("workspace"),
    )


def filter_visible_entities(svc, ctx) -> list[Entity]:
    """Discovery authorization API (§4.4): batch visibility filter."""
    p = ctx.params
    metastore_id = p["metastore_id"]
    view = svc.view(metastore_id)
    cache = svc._hot_caches_for(metastore_id, view)
    return svc.authorizer.filter_visible(view, p["entities"], p["principal"], cache)


# ----------------------------------------------------------------------
# cluster placement
# ----------------------------------------------------------------------


def _merge_name_sets(results: list, params: dict) -> set[str]:
    # the lineage graph is replicated (record_lineage broadcasts), so each
    # shard computes the same closure but can only vouch for the
    # visibility of tables it owns; the union is the 1-node answer
    merged: set[str] = set()
    for shard_result in results:
        merged |= shard_result
    return merged


def _merge_info_rows(results: list, params: dict) -> list[dict[str, Any]]:
    rows = [row for shard_rows in results for row in shard_rows]
    rows.sort(key=lambda row: row["full_name"])
    limit = params.get("limit")
    return rows[:limit] if limit is not None else rows


def _plan_info_schema(p: dict) -> RouteDecision:
    if p["kind"] in REPLICATED_ROOT_KINDS:
        return RouteDecision.home()
    if p.get("catalog") is not None:
        return RouteDecision.shard(p["catalog"])
    return RouteDecision.scatter(_merge_info_rows)


def _split_resolve(p: dict) -> dict[str, dict]:
    """Partition a batched resolution by catalog route key."""
    subs: dict[str, dict] = {}

    def sub(key: str) -> dict:
        if key not in subs:
            partial = dict(p)
            partial["table_names"] = []
            partial["write_tables"] = []
            partial["function_names"] = []
            subs[key] = partial
        return subs[key]

    for name in p["table_names"]:
        sub(catalog_route_key(name))["table_names"].append(name)
    for name in p.get("write_tables") or ():
        sub(catalog_route_key(name))["write_tables"].append(name)
    for name in p.get("function_names") or ():
        sub(catalog_route_key(name))["function_names"].append(name)
    return subs


def _merge_resolutions(results: list, params: dict):
    from repro.core.service.batch import QueryResolution

    assets: dict = {}
    functions: dict = {}
    version = 0
    catalog_versions: dict[str, int] = {}
    for resolution in results:
        assets.update(resolution.assets)
        functions.update(resolution.functions)
        # each shard's store versions independently: the scalar max is
        # only an upper bound, so record the real per-catalog versions
        # for clients that pin (fast path / read_version_check)
        version = max(version, resolution.metastore_version)
        for name in list(resolution.assets) + list(resolution.functions):
            # branched shard resolutions pin under catalog@branch so a
            # trunk pin for the same catalog can coexist in one response
            catalog_versions[resolution.pin_key(name)] = \
                resolution.metastore_version
    return QueryResolution(
        metastore_version=version,
        principal=results[0].principal,
        assets=assets,
        functions=functions,
        catalog_versions=catalog_versions,
        branch=results[0].branch,
    )


def _merge_visible(results: list, params: dict) -> list[Entity]:
    visible_ids = {
        entity.id for shard_result in results for entity in shard_result
    }
    return [e for e in params["entities"] if e.id in visible_ids]


# ----------------------------------------------------------------------
# REST marshalling
# ----------------------------------------------------------------------


def _bind_record_lineage(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "sources": list(r.body.get("sources", ())),
        "target": r.body["target"],
        "operation": r.body.get("operation", "WRITE"),
        "columns": tuple(r.body.get("columns", ())),
    }


def _bind_lineage(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "asset": r.require("asset"),
        "direction": r.params.get("direction", "downstream"),
    }


def _render_lineage(result, kwargs) -> dict[str, Any]:
    return {
        "asset": kwargs["asset"],
        "direction": kwargs["direction"],
        "assets": sorted(result),
    }


def _bind_information_schema(r: RestRequest) -> dict[str, Any]:
    where = tuple(
        (c["column"], c["op"], c["value"]) for c in r.body.get("where", ())
    )
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "kind": SecurableKind(
            r.params.get("kind") or r.body.get("kind", "TABLE")
        ),
        "catalog": r.field_any("catalog"),
        "schema": r.field_any("schema"),
        "where": where,
        "limit": (
            int(r.params["limit"]) if "limit" in r.params
            else r.body.get("limit")
        ),
    }


def _bind_resolve(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "table_names": list(r.body.get("tables", ())),
        "write_tables": tuple(r.body.get("write_tables", ())),
        "function_names": tuple(r.body.get("functions", ())),
        "include_credentials": bool(r.body.get("include_credentials", True)),
        "engine_trusted": r.body.get("engine_trusted"),
    }


def _credential_json(credential) -> dict[str, Any]:
    return {
        "token": credential.token,
        "scope": credential.scope.url(),
        "access_level": credential.level.value,
        "expires_at": credential.expires_at,
    }


def _render_resolution(resolution, kwargs) -> dict[str, Any]:
    assets = {}
    for name, asset in resolution.assets.items():
        assets[name] = {
            "entity": asset.entity.to_dict(),
            "table_type": asset.table_type,
            "format": asset.format,
            "columns": asset.columns,
            "storage_url": asset.storage_url,
            "credential": (
                _credential_json(asset.credential)
                if asset.credential else None
            ),
            "fgac": asset.fgac.to_dict(),
            "view_definition": asset.view_definition,
            "dependencies": list(asset.dependencies),
        }
    rendered = {
        "metastore_version": resolution.metastore_version,
        "assets": assets,
    }
    if resolution.catalog_versions:
        rendered["catalog_versions"] = dict(resolution.catalog_versions)
    return rendered


ENDPOINTS = (
    EndpointDescriptor(
        name="record_lineage",
        domain="lineage_query",
        handler=record_lineage,
        target_param="target",
        cluster=ClusterBinding(plan=lambda p: RouteDecision.broadcast()),
        rest=(
            RestBinding("POST", "lineage", _bind_record_lineage,
                        render=lambda result, kwargs: {}),
        ),
        doc="Record lineage edges submitted by an engine.",
    ),
    EndpointDescriptor(
        name="lineage",
        domain="lineage_query",
        handler=lineage,
        target_param="asset",
        cluster=ClusterBinding(
            plan=lambda p: RouteDecision.scatter(_merge_name_sets)
        ),
        rest=(
            RestBinding("GET", "lineage", _bind_lineage,
                        render=_render_lineage),
        ),
        doc="Visibility-filtered lineage closure (up- or downstream).",
    ),
    EndpointDescriptor(
        name="query_information_schema",
        domain="lineage_query",
        handler=query_information_schema,
        target_param=None,
        cluster=ClusterBinding(plan=_plan_info_schema, stale_ok=True),
        rest=(
            RestBinding("GET", "information-schema", _bind_information_schema,
                        render=lambda result, kwargs: {"rows": result}),
            RestBinding("POST", "information-schema", _bind_information_schema,
                        render=lambda result, kwargs: {"rows": result}),
        ),
        doc="Relational metadata query with filter pushdown.",
    ),
    EndpointDescriptor(
        name="resolve_for_query",
        domain="lineage_query",
        handler=resolve_for_query,
        target_param=None,
        cluster=ClusterBinding(
            plan=lambda p: RouteDecision.partition(
                _split_resolve, _merge_resolutions
            ),
            stale_ok=True,
        ),
        rest=(
            RestBinding("POST", "resolve", _bind_resolve,
                        render=_render_resolution),
        ),
        doc="Batched metadata closure for one query (§4.5).",
    ),
    EndpointDescriptor(
        name="filter_visible_entities",
        domain="lineage_query",
        handler=filter_visible_entities,
        target_param=None,
        cluster=ClusterBinding(
            plan=lambda p: RouteDecision.scatter(_merge_visible)
        ),
        doc="Batch visibility filter for discovery services (§4.4).",
    ),
)
