"""Domain services: the catalog's API surface, split by subject area.

Each module owns one coherent slice of the paper's API (securable CRUD
and lifecycle, grants and ABAC policies, tags and fine-grained access
control, credential vending, lineage and metadata query) and publishes
an ``ENDPOINTS`` table of
:class:`~repro.core.service.registry.EndpointDescriptor` entries.

Domain modules depend only on the kernel's request primitives (via the
``svc`` argument of their handlers) and the shared model/auth/storage
layers — never on each other and never on the facade or the REST router.
``tools/arch_lint.py`` enforces this in CI.
"""

from __future__ import annotations

from repro.core.service.domains import (
    branching,
    grants_policies,
    lineage_query,
    securables,
    tags_fgac,
    vending,
)

ALL_DOMAINS = (
    securables, grants_policies, tags_fgac, vending, lineage_query, branching,
)


def all_endpoints():
    """Every endpoint descriptor, in stable registration order."""
    for module in ALL_DOMAINS:
        yield from module.ENDPOINTS


__all__ = ["ALL_DOMAINS", "all_endpoints"]
