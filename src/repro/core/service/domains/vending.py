"""Vending domain: credential vending and path-based access (§4.3.1).

Name-based and path-based access share one enforcement helper so the
paper's uniform-access-control guarantee holds by construction: however
a caller addresses an asset, the same authorization decision, the same
FGAC trusted-engine gate, and the same downscoped token minting apply.
"""

from __future__ import annotations

from typing import Any

from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel, TemporaryCredential
from repro.core.model.entity import Entity, SecurableKind
from repro.core.service.registry import (
    ClusterBinding,
    EndpointDescriptor,
    ResolveSpec,
    RestBinding,
    RestRequest,
    RouteDecision,
    route_securable_read,
)
from repro.core.view import MetastoreView
from repro.errors import PermissionDeniedError, UntrustedEngineError


def _vend(
    svc,
    view: MetastoreView,
    metastore_id: str,
    principal: str,
    entity: Entity,
    name: str,
    level: AccessLevel,
) -> TemporaryCredential:
    operation = "read_data" if level is AccessLevel.READ else "write_data"
    svc._authorize(view, metastore_id, principal, entity, operation, name)
    # FGAC-protected tables may only be read through trusted engines
    if entity.kind is SecurableKind.TABLE:
        rules = svc.authorizer.fgac_rules_for(
            view, entity, principal, svc._hot_caches_for(metastore_id, view)
        )
        if not rules.is_empty and not svc.directory.is_trusted_engine(principal):
            svc._audit(metastore_id, principal, "vend_credentials", name, False,
                       reason="FGAC requires a trusted engine")
            raise UntrustedEngineError(
                f"table {name} has fine-grained policies; direct storage "
                "access is restricted to trusted engines"
            )
    credential = svc.vendor.vend(view, entity, level)
    svc._audit(metastore_id, principal, "vend_credentials", name, True,
               level=level.value)
    return credential


def vend_credentials(svc, ctx) -> TemporaryCredential:
    """Name-based access: authorize, then mint a downscoped token."""
    p = ctx.params
    return _vend(
        svc, ctx.view, p["metastore_id"], p["principal"], ctx.entity,
        p["name"], p["level"],
    )


def access_by_path(svc, ctx) -> tuple[Entity, TemporaryCredential]:
    """Path-based access: resolve the governing asset first, then apply
    exactly the same policy as name-based access — the paper's uniform
    access control guarantee."""
    p = ctx.params
    metastore_id, principal = p["metastore_id"], p["principal"]
    url, level = p["url"], p["level"]
    view = svc.view(metastore_id)
    path = StoragePath.parse(url)
    entity = view.resolve_path(path)
    if entity is None:
        svc._audit(metastore_id, principal, "access_by_path", url, False,
                   reason="no asset governs this path")
        raise PermissionDeniedError(f"no catalog asset governs {url}")
    credential = _vend(
        svc, view, metastore_id, principal, entity, view.full_name(entity), level
    )
    return entity, credential


# ----------------------------------------------------------------------
# cluster placement
# ----------------------------------------------------------------------


def _probe_path(view, p: dict) -> bool:
    return view.resolve_path(StoragePath.parse(p["url"])) is not None


# ----------------------------------------------------------------------
# REST marshalling
# ----------------------------------------------------------------------


def _credential_json(credential: TemporaryCredential) -> dict[str, Any]:
    return {
        "token": credential.token,
        "scope": credential.scope.url(),
        "access_level": credential.level.value,
        "expires_at": credential.expires_at,
    }


def _bind_vend(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "kind": SecurableKind(r.body["securable_kind"]),
        "name": r.body["securable_name"],
        "level": AccessLevel(r.body.get("access_level", "READ")),
    }


def _bind_access_by_path(r: RestRequest) -> dict[str, Any]:
    return {
        "metastore_id": r.metastore_id(),
        "principal": r.principal,
        "url": r.body["path"],
        "level": AccessLevel(r.body.get("access_level", "READ")),
    }


def _render_path_access(result, kwargs) -> dict[str, Any]:
    entity, credential = result
    payload = _credential_json(credential)
    payload["resolved_asset"] = entity.name
    return payload


ENDPOINTS = (
    EndpointDescriptor(
        name="access_by_path",
        domain="vending",
        handler=access_by_path,
        target_param="url",
        cluster=ClusterBinding(
            plan=lambda p: RouteDecision.probe_for(_probe_path)
        ),
        rest=(
            # registered before vend_credentials: a body carrying "path"
            # selects path-based access on the shared POST route
            RestBinding("POST", "temporary-credentials", _bind_access_by_path,
                        when=lambda r: "path" in r.body,
                        render=_render_path_access),
        ),
        doc="Path-based access via the governing catalog asset.",
    ),
    EndpointDescriptor(
        name="vend_credentials",
        domain="vending",
        handler=vend_credentials,
        resolve=ResolveSpec(),
        cluster=ClusterBinding(
            plan=lambda p: route_securable_read(p["kind"], p["name"])
        ),
        rest=(
            RestBinding(
                "POST", "temporary-credentials", _bind_vend,
                render=lambda result, kwargs: _credential_json(result),
            ),
        ),
        doc="Name-based access: mint a downscoped storage token.",
    ),
)
