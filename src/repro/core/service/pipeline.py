"""The request-pipeline kernel (life of a request, once, for every API).

Every catalog endpoint — in-process or REST — runs the same ordered
interceptor chain:

    metrics/tracing → authn → name resolution → authorization
                    → execution → audit commit

A :class:`RequestContext` flows through the chain carrying the acting
principal, its expanded identities, the request deadline, the pinned
:class:`~repro.core.view.MetastoreView` (reads), the resolved target
entity, and a count of audit records written on the request's behalf.
The chain is composed **once per endpoint** when the service builds its
API registry, so steady-state dispatch cost is a handful of function
calls — the same budget as the hand-rolled ``_ApiObservation`` wrapper
this module replaced.

Interceptor responsibilities:

* **Observation** — ``uc_api_requests_total`` / ``uc_api_errors_total``
  counters and the ``uc_api_latency_seconds`` histogram, labelled by
  endpoint name, plus a ``uc.<api>`` span when a trace is active. Metric
  and span names are identical to the pre-pipeline ones, so committed
  benchmark baselines stay comparable.
* **Audit commit** — tracks every audit record written during the
  request (via :func:`current_context`), and guarantees that a denied or
  errored request leaves an audit entry with error status: if the
  request raised and nothing was audited yet, it appends one record with
  ``allowed=False`` and the machine-readable error code.
* **QoS admission** (when the service has a
  :class:`~repro.core.service.qos.QosScheduler`) — meters the request
  against the tenant's token bucket, queues over-budget work in the
  weighted fair queues (the wait is charged to the injected clock), or
  sheds with :class:`~repro.errors.TenantThrottledError` (HTTP 429 +
  ``Retry-After``). Placed *after* audit-commit so shed requests are
  metered and leave an ``allowed=False`` audit record, and *before*
  authn so rejected work costs nothing downstream; after the handler
  runs the tenant's bucket is reconciled with the measured work cost.
* **Authn** — expands the caller to its identity set (the request
  gateway upstream authenticated the principal, paper §3.4; this stage
  is where a token validator would slot in).
* **Deadline** — arms the ambient request deadline consumed by every
  :class:`~repro.resilience.Retrier` and by the optimistic commit loop,
  so retries/backoff inside one request raise
  :class:`~repro.errors.DeadlineExceededError` instead of overshooting.
* **Resolution** — for read endpoints with a
  :class:`~repro.core.service.registry.ResolveSpec`, pins a consistent
  view and resolves the target through the version-pinned hot caches.
* **Authorization** — for read endpoints declaring an ``operation``,
  makes the access decision (hot-cache aware) and audits it.
* **Execution** — the domain handler. Mutations re-resolve and
  re-authorize inside :meth:`ServiceKernel.mutate`'s optimistic loop
  against each fresh view, which is why the two stages above skip them.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.core.auth.privileges import SYSTEM_PRINCIPAL
from repro.core.persistence.branching import (
    BRANCH_SEP,
    MAIN_BRANCH,
    split_branch_key,
)
from repro.core.service.qos import work_snapshot
from repro.errors import DeadlineExceededError, InvalidRequestError
from repro.resilience import charge, deadline_scope

_ACTIVE = threading.local()

#: Request parameters carrying fully qualified securable names (or lists
#: of them) that may arrive with a ``catalog@branch`` first segment.
_BRANCHABLE_NAME_PARAMS = (
    "name",
    "parent_name",
    "new_name",
    "table_name",
    "scope_name",
    "asset",
    "target",
    "sources",
    "table_names",
    "write_tables",
    "function_names",
)


def split_branch_suffix(full_name: str) -> tuple[str, Optional[str]]:
    """Strip a ``catalog@branch`` first segment from a dotted name.

    ``"sales@dev.web.orders"`` -> ``("sales.web.orders", "sales@dev")``;
    names without a branch suffix come back unchanged with ``None``.
    """
    head, sep, rest = full_name.partition(".")
    if BRANCH_SEP not in head:
        return full_name, None
    catalog, _branch = split_branch_key(head)
    return catalog + sep + rest, head


def extract_branch_params(params: dict[str, Any]) -> Optional[str]:
    """Normalize a request's branch context to one branch key.

    Pops the reserved ``_branch`` kwarg and strips ``catalog@branch``
    suffixes from every name parameter (so shard routing and name
    resolution see plain catalog names). All sources must agree; two
    different branches in one request is an error. ``main`` (and
    ``None``) mean the trunk.
    """
    branch = params.pop("_branch", None)
    if branch == MAIN_BRANCH:
        branch = None
    if branch is not None:
        split_branch_key(branch)  # validate catalog@branch shape

    def fold(current: Optional[str], bkey: str) -> str:
        if current is not None and current != bkey:
            raise InvalidRequestError(
                f"conflicting branches in one request: {current} vs {bkey}"
            )
        return bkey

    for key in _BRANCHABLE_NAME_PARAMS:
        value = params.get(key)
        if isinstance(value, str):
            stripped, bkey = split_branch_suffix(value)
            if bkey is not None:
                params[key] = stripped
                branch = fold(branch, bkey)
        elif isinstance(value, (list, tuple)):
            items = []
            changed = False
            for item in value:
                if isinstance(item, str):
                    stripped, bkey = split_branch_suffix(item)
                    if bkey is not None:
                        branch = fold(branch, bkey)
                        item = stripped
                        changed = True
                items.append(item)
            if changed:
                params[key] = type(value)(items)
    return branch


def current_context() -> Optional["RequestContext"]:
    """The request context active on this thread, if any.

    Infrastructure that writes audit records (the kernel's ``_audit``)
    uses this to attribute records to the in-flight request without
    threading a context argument through every legacy call site.
    """
    return getattr(_ACTIVE, "ctx", None)


class RequestContext:
    """Per-request state flowing through the interceptor chain."""

    __slots__ = (
        "api",
        "principal",
        "metastore_id",
        "params",
        "deadline",
        "identities",
        "view",
        "entity",
        "audit_records",
        "span",
        "branch",
        "at_version",
        "qos_class",
    )

    def __init__(self, api: str, principal: Optional[str],
                 metastore_id: Optional[str], params: dict[str, Any],
                 deadline: Optional[float] = None,
                 branch: Optional[str] = None,
                 at_version: Optional[int] = None,
                 qos_class: Optional[str] = None):
        self.api = api
        self.principal = principal
        self.metastore_id = metastore_id
        self.params = params
        self.deadline = deadline
        self.identities: Optional[frozenset[str]] = None
        self.view = None
        self.entity = None
        self.audit_records = 0
        self.span = None
        #: branch key (``catalog@branch``) this request reads/writes, or
        #: None for the trunk — consumed by the kernel's view/commit path
        self.branch = branch
        #: ``AS OF`` pin: resolve reads at this past metastore version
        self.at_version = at_version
        #: explicit QoS priority class (``_qos_class`` request kwarg),
        #: overriding the scheduler's per-tenant assignment
        self.qos_class = qos_class

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RequestContext(api={self.api!r}, principal="
                f"{self.principal!r}, metastore={self.metastore_id!r})")


class _Instruments:
    """Per-endpoint metric children, bound once at chain-build time."""

    __slots__ = ("requests", "errors", "latency", "span_name")

    def __init__(self, requests, errors, latency, span_name):
        self.requests = requests
        self.errors = errors
        self.latency = latency
        self.span_name = span_name


class RequestPipeline:
    """Builds and runs the per-endpoint interceptor chains."""

    def __init__(self, service):
        self._service = service
        self._chains: dict[str, Callable[[RequestContext], Any]] = {}

    # -- chain construction ------------------------------------------------

    def chain_for(self, descriptor) -> Callable[[RequestContext], Any]:
        chain = self._chains.get(descriptor.name)
        if chain is None:
            chain = self._build(descriptor)
            self._chains[descriptor.name] = chain
        return chain

    def _build(self, descriptor) -> Callable[[RequestContext], Any]:
        service = self._service
        metrics = service.obs.metrics
        instruments = _Instruments(
            service._api_requests.labels(api=descriptor.name),
            service._api_errors.labels(api=descriptor.name),
            service._api_latency.labels(api=descriptor.name),
            f"uc.{descriptor.name}",
        )
        del metrics

        stages = [
            self._observation_stage(instruments),
            self._audit_commit_stage(descriptor),
        ]
        qos = getattr(service, "qos", None)
        if qos is not None and qos.enabled:
            stages.append(self._qos_stage(descriptor, qos))
        stages.extend([
            self._authn_stage(),
            self._deadline_stage(),
        ])
        if descriptor.resolve is not None and not descriptor.mutation:
            stages.append(self._resolution_stage(descriptor.resolve))
            if descriptor.operation is not None:
                stages.append(
                    self._authorization_stage(descriptor.resolve,
                                              descriptor.operation)
                )
        handler = descriptor.handler

        def execute(ctx: RequestContext):
            return handler(service, ctx)

        invoke = execute
        for stage in reversed(stages):
            invoke = _wrap(stage, invoke)
        return invoke

    # -- interceptors ------------------------------------------------------

    def _observation_stage(self, instruments: _Instruments):
        service = self._service

        def observe(ctx: RequestContext, proceed):
            instruments.requests.inc()
            tracer = service.obs.tracer
            span = None
            if tracer.active:
                span = tracer.span(instruments.span_name)
                span.__enter__()
                ctx.span = span
            clock = service.clock
            start = clock.now()
            try:
                result = proceed(ctx)
            except BaseException as exc:
                instruments.latency.observe(clock.now() - start)
                if span is not None:
                    span.__exit__(type(exc), exc, exc.__traceback__)
                instruments.errors.inc()
                raise
            instruments.latency.observe(clock.now() - start)
            if span is not None:
                span.__exit__(None, None, None)
            return result

        return observe

    def _audit_commit_stage(self, descriptor):
        service = self._service
        target_param = descriptor.target_param

        def audit_commit(ctx: RequestContext, proceed):
            previous = getattr(_ACTIVE, "ctx", None)
            _ACTIVE.ctx = ctx
            try:
                return proceed(ctx)
            except BaseException as exc:
                if ctx.audit_records == 0:
                    # a denied/errored request must leave an audit trace
                    # even when it failed before any decision was recorded
                    target = None
                    if target_param is not None:
                        target = ctx.params.get(target_param)
                    service._audit(
                        ctx.metastore_id or "",
                        ctx.principal or SYSTEM_PRINCIPAL,
                        ctx.api,
                        str(target) if target else f"<{ctx.api}>",
                        False,
                        error=getattr(exc, "code", "INTERNAL"),
                    )
                raise
            finally:
                _ACTIVE.ctx = previous

        return audit_commit

    def _qos_stage(self, descriptor, qos):
        service = self._service
        mutation = descriptor.mutation

        def admit(ctx: RequestContext, proceed):
            grant = qos.acquire(
                ctx.principal,
                ctx.api,
                mutation=mutation,
                requested_class=ctx.qos_class,
            )
            if grant.wait > 0:
                # queued (or band-contended): the wait is simulated time,
                # charged to the injected clock — never a real sleep
                charge(service.clock, grant.wait)
            before = work_snapshot(service)
            try:
                return proceed(ctx)
            finally:
                after = work_snapshot(service)
                qos.settle(grant, qos.config.measured_cost(before, after))

        return admit

    def _authn_stage(self):
        service = self._service

        def authenticate(ctx: RequestContext, proceed):
            if ctx.principal is not None:
                ctx.identities = service.authorizer.identities(ctx.principal)
            return proceed(ctx)

        return authenticate

    def _deadline_stage(self):
        service = self._service

        def enforce_deadline(ctx: RequestContext, proceed):
            if ctx.deadline is None:
                return proceed(ctx)
            if service.clock.now() >= ctx.deadline:
                raise DeadlineExceededError(
                    f"{ctx.api}: request deadline expired before execution"
                )
            with deadline_scope(ctx.deadline):
                return proceed(ctx)

        return enforce_deadline

    def _resolution_stage(self, spec):
        service = self._service

        def resolve(ctx: RequestContext, proceed):
            ctx.view = service.view(ctx.metastore_id)
            ctx.entity = service._resolve(
                ctx.view, ctx.metastore_id, spec.kind_of(ctx.params),
                ctx.params[spec.name_param],
            )
            return proceed(ctx)

        return resolve

    def _authorization_stage(self, spec, operation: str):
        service = self._service

        def authorize(ctx: RequestContext, proceed):
            service._authorize(
                ctx.view, ctx.metastore_id, ctx.principal, ctx.entity,
                operation, ctx.params[spec.name_param],
            )
            return proceed(ctx)

        return authorize

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, descriptor, params: dict[str, Any]) -> Any:
        """Run one request through the endpoint's interceptor chain.

        ``params["_timeout"]`` (relative seconds) overrides the service's
        default request timeout for this call; either arms the deadline
        interceptor. ``params["_branch"]`` (or a ``catalog@branch`` name
        suffix) pins the request to a branch; ``params["_at_version"]``
        pins reads ``AS OF`` a past metastore version;
        ``params["_qos_class"]`` requests an explicit QoS priority class.
        """
        timeout = params.pop("_timeout", None)
        if timeout is None:
            timeout = self._service.request_timeout
        deadline = None
        if timeout is not None:
            deadline = self._service.clock.now() + float(timeout)
        branch = extract_branch_params(params)
        at_version = params.pop("_at_version", None)
        qos_class = params.pop("_qos_class", None)
        ctx = RequestContext(
            api=descriptor.name,
            principal=params.get(descriptor.principal_param),
            metastore_id=params.get("metastore_id"),
            params=params,
            deadline=deadline,
            branch=branch,
            at_version=int(at_version) if at_version is not None else None,
            qos_class=qos_class,
        )
        return self.chain_for(descriptor)(ctx)


def _wrap(stage, proceed):
    def invoke(ctx: RequestContext):
        return stage(ctx, proceed)

    return invoke


def note_audit_record() -> None:
    """Attribute one freshly written audit record to the active request."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is not None:
        ctx.audit_records += 1


__all__ = [
    "RequestContext",
    "RequestPipeline",
    "current_context",
    "extract_branch_params",
    "note_audit_record",
    "split_branch_suffix",
]
