"""A real HTTP transport for the REST API (stdlib only).

Demonstrates the open-interface claim end to end: any HTTP client can
drive a running Unity Catalog server. Benchmarks use the in-process
router instead (network stacks are nondeterministic); examples use this.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.core.service.rest import RestApi, TextResponse
from repro.errors import UnityCatalogError

_PRINCIPAL_HEADER = "X-Unity-Principal"

#: Routes a metrics scraper may hit without a principal header.
_UNAUTHENTICATED_PREFIXES = ("metrics", "traces")


class _Handler(BaseHTTPRequestHandler):
    api: RestApi  # set by server factory

    def log_message(self, fmt: str, *args) -> None:  # silence stderr
        pass

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        params = dict(parse_qsl(split.query))
        principal = self.headers.get(_PRINCIPAL_HEADER, "")
        body: dict[str, Any] = {}
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                self._respond(400, {"error_code": "INVALID_PARAMETER_VALUE",
                                    "message": "request body is not JSON"})
                return
        first_segment = split.path.strip("/").split("/", 1)[0]
        if not principal and first_segment not in _UNAUTHENTICATED_PREFIXES:
            self._respond(401, {"error_code": "PERMISSION_DENIED",
                                "message": f"missing {_PRINCIPAL_HEADER} header"})
            return
        status, payload = self.api.handle(
            method, split.path, principal=principal, params=params, body=body
        )
        self._respond(status, payload)

    def _respond(self, status: int, payload) -> None:
        if isinstance(payload, TextResponse):
            data = payload.body.encode()
            content_type = payload.content_type
        else:
            data = json.dumps(payload).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if status in (429, 503) and isinstance(payload, dict):
            # throttled / unavailable responses tell well-behaved clients
            # when to come back instead of letting them hammer the service
            retry_after = payload.get("retry_after_seconds", 1.0)
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PATCH(self) -> None:
        self._dispatch("PATCH")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class UnityCatalogHttpServer:
    """Serves a catalog service over HTTP on localhost."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        api = RestApi(service)
        handler = type("BoundHandler", (_Handler,), {"api": api})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    def start(self) -> "UnityCatalogHttpServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "UnityCatalogHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class UnityCatalogHttpClient:
    """A minimal REST client for the HTTP server."""

    def __init__(self, host: str, port: int, principal: str):
        self._host = host
        self._port = port
        self._principal = principal

    def request(
        self,
        method: str,
        path: str,
        *,
        params: Optional[dict] = None,
        body: Optional[dict] = None,
        raise_on_error: bool = True,
    ) -> dict:
        query = ""
        if params:
            query = "?" + "&".join(f"{k}={v}" for k, v in params.items())
        connection = HTTPConnection(self._host, self._port, timeout=30)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            connection.request(
                method,
                path + query,
                body=payload,
                headers={
                    _PRINCIPAL_HEADER: self._principal,
                    "Content-Type": "application/json",
                },
            )
            response = connection.getresponse()
            data = json.loads(response.read() or b"{}")
            if raise_on_error and response.status >= 400:
                raise UnityCatalogError(
                    f"HTTP {response.status}: {data.get('message', data)}"
                )
            return data
        finally:
            connection.close()
