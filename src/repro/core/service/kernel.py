"""Service kernel: the request-independent machinery under every endpoint.

The kernel owns the infrastructure a multi-tenant catalog service needs
— the backing metadata store, per-metastore cache nodes and hot-path
cache bundles, the authorizer, audit log, change-event bus, object
store/STS/credential vendor, observability, and resilience plumbing —
plus the four request primitives every domain service is built from:

* :meth:`view` — a consistent read view (cached or snapshot-backed),
* :meth:`_resolve` — hot-cache-aware fully-qualified-name resolution,
* :meth:`_authorize` — the single decision point, audited,
* :meth:`_mutate` — the optimistic serializable commit loop (CAS retry
  on conflict, clock-charged backoff on transients, ambient-deadline
  aware).

Domain services (:mod:`repro.core.service.domains`) implement endpoint
handlers *on top of* these primitives; the request pipeline
(:mod:`repro.core.service.pipeline`) sequences them. The kernel never
imports a domain module — dependencies point strictly inward.
"""

from __future__ import annotations

import random as _random
import threading
from typing import Any, Callable, Optional

from repro.clock import Clock, WallClock
from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import ObjectStore, StoragePath
from repro.cloudstore.sts import StsTokenIssuer, TemporaryCredential
from repro.core.assets.builtin import builtin_registry
from repro.core.audit import AuditLog
from repro.core.auth.authorizer import Authorizer
from repro.core.auth.principals import PrincipalDirectory
from repro.core.cache.decisions import HotPathCaches
from repro.core.cache.eviction import EvictionPolicy
from repro.core.cache.node import MetastoreCacheNode, ReconcileMode
from repro.core.events import ChangeEventBus
from repro.core.lineage import LineageGraph
from repro.core.model.entity import Entity, SecurableKind
from repro.core.model.naming import split_full_name
from repro.core.model.registry import AssetTypeRegistry
from repro.core.persistence import branching as _branching
from repro.core.persistence.memory import InMemoryMetadataStore
from repro.core.persistence.store import MetadataStore, Snapshot, WriteOp
from repro.core.service.pipeline import current_context, note_audit_record
from repro.core.service.qos import QosConfig, QosScheduler
from repro.core.vending import CredentialVendor
from repro.core.view import MetastoreView, SnapshotView
from repro.errors import (
    ConcurrentModificationError,
    DeadlineExceededError,
    InvalidRequestError,
    NotFoundError,
    PermissionDeniedError,
    TransientError,
)
from repro.obs import Observability
from repro.resilience import (
    Retrier,
    RetryPolicy,
    ambient_deadline,
    charge,
)

_MAX_COMMIT_RETRIES = 8


class ServiceKernel:
    """Infrastructure + request primitives shared by all domain services."""

    def __init__(
        self,
        store: Optional[MetadataStore] = None,
        registry: Optional[AssetTypeRegistry] = None,
        directory: Optional[PrincipalDirectory] = None,
        clock: Optional[Clock] = None,
        object_store: Optional[ObjectStore] = None,
        sts: Optional[StsTokenIssuer] = None,
        enable_cache: bool = True,
        reconcile_mode: ReconcileMode = ReconcileMode.SELECTIVE,
        eviction_policy_factory: Optional[Callable[[], EvictionPolicy]] = None,
        max_cached_entities: Optional[int] = None,
        managed_root: str = "s3://unity-managed",
        read_version_check: bool = True,
        rink_cache=None,
        obs: Optional[Observability] = None,
        retry_policy: Optional[RetryPolicy] = None,
        faults=None,
        enable_fast_path: Optional[bool] = None,
        request_timeout: Optional[float] = None,
        qos=None,
    ):
        """``read_version_check=False`` lets a node that knows it owns a
        metastore (sharding assignment) skip the per-read DB version probe
        and serve cache hits purely from memory; correctness still holds
        because every write CASes the metastore version (section 4.5).

        ``enable_fast_path`` toggles the version-pinned decision and
        resolution caches layered on top of the node cache (see
        :mod:`repro.core.cache.decisions`); it defaults to ``enable_cache``
        so the Figure 10(b) "without caching" baseline stays genuinely
        uncached.

        ``retry_policy`` governs transient-error retries across the
        service's dependencies (storage, STS, the backing metadata
        store); ``faults`` is an optional
        :class:`~repro.faults.FaultInjector` threaded into every
        service-constructed dependency for chaos experiments.

        ``request_timeout`` is the default per-request deadline (seconds)
        applied by the pipeline's deadline interceptor; individual calls
        can override it with the reserved ``_timeout`` dispatch kwarg.

        ``qos`` installs multi-tenant admission control: pass a
        :class:`~repro.core.service.qos.QosConfig` (a single-lane
        scheduler is built over this service's clock and metrics) or a
        ready :class:`~repro.core.service.qos.QosScheduler` (the cluster
        router shares one scheduler across shards; shard-local services
        then receive ``qos=None`` so a request is charged exactly
        once)."""
        self.clock = clock or WallClock()
        self.obs = obs or Observability(clock=self.clock)
        self.faults = faults
        self.retry_policy = retry_policy or RetryPolicy()
        self.request_timeout = request_timeout
        metrics = self.obs.metrics
        self.storage_retrier = Retrier(
            self.retry_policy, self.clock, metrics=metrics,
            tracer=self.obs.tracer, component="storage",
        )
        self._sts_retrier = Retrier(
            self.retry_policy, self.clock, metrics=metrics,
            tracer=self.obs.tracer, component="sts", seed=0x57A7,
        )
        self.store = store or InMemoryMetadataStore()
        self.registry = registry or builtin_registry()
        self.directory = directory or PrincipalDirectory()
        self.object_store = object_store or ObjectStore(faults=faults)
        self.sts = sts or StsTokenIssuer(
            clock=self.clock, faults=faults, retrier=self._sts_retrier
        )
        self.authorizer = Authorizer(self.registry, self.directory)
        self.audit = AuditLog()
        self.events = ChangeEventBus()
        self.lineage = LineageGraph()
        self.enable_cache = enable_cache
        self._reconcile_mode = reconcile_mode
        self._eviction_policy_factory = eviction_policy_factory
        self._max_cached_entities = max_cached_entities
        self._managed_root = StoragePath.parse(managed_root)
        self.object_store.ensure_bucket(self._managed_root.scheme, self._managed_root.bucket)
        self.vendor = CredentialVendor(
            self.sts, self.clock, managed_root_secret=self.sts.root_secret,
            rink_cache=rink_cache, obs=self.obs,
        )
        self.enable_fast_path = (
            enable_cache if enable_fast_path is None else enable_fast_path
        )
        self._nodes: dict[str, MetastoreCacheNode] = {}
        self._hot_caches: dict[str, HotPathCaches] = {}
        #: per-(metastore, branch-key) fast-path bundles — the branch
        #: dimension of the decision/resolution caches, built lazily on
        #: first branch read and dropped on merge/delete
        self._branch_hot_caches: dict[tuple[str, str], HotPathCaches] = {}
        self._metastore_names: dict[str, str] = {}
        self._read_version_check = read_version_check
        self._lock = threading.RLock()
        self._api_requests = metrics.counter(
            "uc_api_requests_total", "Catalog API calls by entry point.", ("api",)
        )
        self._api_errors = metrics.counter(
            "uc_api_errors_total", "Catalog API calls that raised.", ("api",)
        )
        self._api_latency = metrics.histogram(
            "uc_api_latency_seconds", "Catalog API latency by entry point.", ("api",)
        )
        self._commits_total = metrics.counter(
            "uc_store_commits_total", "Successful metadata-store commits."
        ).labels()
        self._commit_conflicts = metrics.counter(
            "uc_store_commit_conflicts_total", "Metadata CAS commit conflicts."
        ).labels()
        self._store_retries = metrics.counter(
            "uc_retries_total",
            "Transient-error retries by component.",
            ("component",),
        ).labels(component="metastore")
        self._store_retry_rng = _random.Random(0xCA7)
        if isinstance(qos, QosConfig):
            qos = QosScheduler(qos, self.clock, metrics=metrics) \
                if qos.enabled else None
        self.qos = qos
        metrics.register_collector(self._collect_core_stats)

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    def _collect_core_stats(self):
        """Scrape-time export of subsystem counters (zero hot-path cost)."""
        vending = self.vendor.stats
        store_stats = self.object_store.stats
        yield ("uc_credentials_minted_total", {}, vending.minted)
        yield ("uc_credential_cache_hits_total", {}, vending.cache_hits)
        yield ("uc_sts_tokens_minted_total", {}, self.sts.minted_count)
        yield ("uc_sts_validations_total", {}, self.sts.validated_count)
        yield ("uc_sts_denials_total", {}, self.sts.denied_count)
        yield ("uc_objectstore_gets_total", {}, store_stats.gets)
        yield ("uc_objectstore_puts_total", {}, store_stats.puts)
        yield ("uc_objectstore_conditional_puts_total", {},
               store_stats.conditional_puts)
        yield ("uc_objectstore_lists_total", {}, store_stats.lists)
        yield ("uc_objectstore_deletes_total", {}, store_stats.deletes)
        yield ("uc_objectstore_bytes_read_total", {}, store_stats.bytes_read)
        yield ("uc_objectstore_bytes_written_total", {}, store_stats.bytes_written)
        yield ("uc_store_multi_get_total", {},
               getattr(self.store, "multi_get_count", 0))
        yield ("uc_store_range_scans_total", {},
               getattr(self.store, "range_scan_count", 0))
        yield ("uc_store_scan_rows_total", {},
               getattr(self.store, "scan_row_count", 0))

    def _register_node_collector(self, name: str, node: MetastoreCacheNode) -> None:
        """Export one cache node's tier stats, labelled by metastore."""
        stats = node.stats
        labels = {"metastore": name, "tier": "node"}

        def collect():
            yield ("uc_cache_hits_total", labels, stats.hits)
            yield ("uc_cache_misses_total", labels, stats.misses)
            yield ("uc_cache_evictions_total", labels, stats.evictions)
            yield ("uc_cache_hit_rate", labels, stats.hit_rate)
            yield ("uc_cache_version_checks_total", labels, stats.version_checks)
            yield ("uc_cache_reconciles_total", labels, stats.reconciles)

        self.obs.metrics.register_collector(collect)

    def _register_hot_cache_collector(self, name: str, bundle: HotPathCaches) -> None:
        """Export one fast-path bundle's counters, labelled by metastore."""
        stats = bundle.stats
        labels = {"metastore": name}

        def collect():
            yield ("uc_authz_cache_hits_total", labels, stats.authz_hits)
            yield ("uc_authz_cache_misses_total", labels, stats.authz_misses)
            yield ("uc_resolution_cache_hits_total", labels, stats.resolution_hits)
            yield ("uc_resolution_cache_misses_total", labels,
                   stats.resolution_misses)
            yield ("uc_hot_cache_invalidations_total", labels, stats.invalidations)

        self.obs.metrics.register_collector(collect)

    # ------------------------------------------------------------------
    # metastore bookkeeping
    # ------------------------------------------------------------------

    def _install_metastore(self, name: str, metastore_id: str) -> None:
        """Attach the per-metastore cache node and fast-path bundle.

        Called (under :attr:`_lock`) by the securables domain right after
        a metastore slot is created and committed.
        """
        self._metastore_names[name] = metastore_id
        if self.enable_cache:
            policy = (
                self._eviction_policy_factory()
                if self._eviction_policy_factory
                else None
            )
            node = MetastoreCacheNode(
                self.store,
                metastore_id,
                self.registry,
                clock=self.clock,
                reconcile_mode=self._reconcile_mode,
                eviction_policy=policy,
                max_cached_entities=self._max_cached_entities,
            )
            node.warm()
            self._nodes[metastore_id] = node
            self._register_node_collector(name, node)
        if self.enable_fast_path:
            bundle = HotPathCaches(
                metastore_id,
                self.store.current_version(metastore_id),
                lambda v, mid=metastore_id: self.store.changes_since(mid, v),
                lambda: self.directory.generation,
            )
            self._hot_caches[metastore_id] = bundle
            self._register_hot_cache_collector(name, bundle)

    def metastore_id(self, name: str) -> str:
        with self._lock:
            try:
                return self._metastore_names[name]
            except KeyError:
                raise NotFoundError(f"no such metastore: {name}")

    def metastore_ids(self) -> list[str]:
        with self._lock:
            return list(self._metastore_names.values())

    def cache_node(self, metastore_id: str) -> Optional[MetastoreCacheNode]:
        return self._nodes.get(metastore_id)

    def hot_caches(self, metastore_id: str) -> Optional[HotPathCaches]:
        """The fast-path bundle for a metastore (None with fast path off)."""
        return self._hot_caches.get(metastore_id)

    def _hot_caches_for(
        self, metastore_id: str, view: MetastoreView
    ) -> Optional[HotPathCaches]:
        """The fast-path bundle, synced to ``view``'s version — or None
        when the fast path is off or the view is pinned behind the bundle
        (then the caller recomputes; correctness never needs the cache).

        Branch views get their own per-branch bundle whose keys and
        ``changes_since`` replay carry the branch dimension: a branch
        bundle replays only the branch's overlay writes (main commits
        after the fork are invisible to the branch and must not touch
        its entries), and the main bundle never sees overlay records."""
        branch = getattr(view, "branch", None)
        if branch is not None:
            bundle = self._branch_caches_for(metastore_id, branch)
        else:
            bundle = self._hot_caches.get(metastore_id)
        if bundle is None:
            return None
        return bundle if bundle.sync(view.version) else None

    def _branch_caches_for(
        self, metastore_id: str, bkey: str
    ) -> Optional[HotPathCaches]:
        """The lazily-built fast-path bundle of one branch."""
        if not self.enable_fast_path:
            return None
        key = (metastore_id, bkey)
        with self._lock:
            bundle = self._branch_hot_caches.get(key)
            if bundle is None:
                bundle = HotPathCaches(
                    metastore_id,
                    _branching.resolve_head(self.store, metastore_id),
                    lambda v, mid=metastore_id, bk=bkey:
                        _branching.branch_changes_since(self.store, mid, bk, v),
                    lambda: self.directory.generation,
                )
                self._branch_hot_caches[key] = bundle
        return bundle

    def _drop_branch_caches(self, metastore_id: str, bkey: str) -> None:
        """Forget a merged/deleted branch's fast-path bundle."""
        with self._lock:
            self._branch_hot_caches.pop((metastore_id, bkey), None)

    def governed_client(self, credential: TemporaryCredential) -> StorageClient:
        """A storage client bound to ``credential`` and the service's
        retry policy — the constructor every in-process consumer (engine
        sessions, volumes, transactions, sharing) should use so storage
        transients are absorbed uniformly."""
        return StorageClient(
            self.object_store, self.sts, credential, retrier=self.storage_retrier
        )

    # ------------------------------------------------------------------
    # view / commit plumbing
    # ------------------------------------------------------------------

    def _request_pin(self) -> tuple[Optional[str], Optional[int]]:
        """The active request's ``(branch key, AS OF version)`` pin.

        Read from the thread's :func:`current_context`, so every legacy
        ``view()`` / ``_mutate()`` call site became branch-aware without
        a signature change. Off-request callers get the trunk head.
        """
        ctx = current_context()
        if ctx is None:
            return None, None
        return getattr(ctx, "branch", None), getattr(ctx, "at_version", None)

    def head_version(self, metastore_id: str, branch: Optional[str] = None) -> int:
        """The head version of a branch (``None`` = trunk) — the
        branch-resolution gate layers above persistence must use instead
        of ``store.current_version`` (``tools/arch_lint.py`` rule 5)."""
        return _branching.resolve_head(self.store, metastore_id, branch)

    def raw_snapshot(self, metastore_id: str) -> Snapshot:
        """A raw store snapshot honoring the request's branch/AS OF pin.

        Handlers that must read *below* the entity view (soft-deleted
        rows, key prefixes) go through this instead of
        ``store.snapshot`` so branch requests see their overlay.
        """
        branch, at_version = self._request_pin()
        if branch is None:
            return self.store.snapshot(metastore_id, at_version)
        return _branching.branch_snapshot(
            self.store, metastore_id, branch, at_version
        )

    def view(self, metastore_id: str) -> MetastoreView:
        """A consistent read view (cached or snapshot-backed).

        On the trunk with no ``AS OF`` pin this is exactly the legacy
        path (cache node or head snapshot — single-branch operation is a
        strict no-op). A branch or version pin resolves through
        :func:`~repro.core.persistence.branching.branch_snapshot`,
        falling through the overlay to the fork point.
        """
        branch, at_version = self._request_pin()
        if branch is None and at_version is None:
            node = self._nodes.get(metastore_id)
            if node is not None:
                return node.view(check_version=self._read_version_check)
            return SnapshotView(self.store.snapshot(metastore_id), self.registry)
        if branch is None:
            return SnapshotView(
                self.store.snapshot(metastore_id, at_version), self.registry
            )
        snapshot = _branching.branch_snapshot(
            self.store, metastore_id, branch, at_version
        )
        view = SnapshotView(snapshot, self.registry)
        view.branch = branch
        return view

    def _mutate(
        self,
        metastore_id: str,
        build: Callable[[MetastoreView], tuple[list[WriteOp], Any, list[tuple]]],
    ) -> Any:
        """Optimistic serializable write: validate against a fresh view,
        commit with CAS, retry from scratch on conflict.

        Two failure regimes, two recoveries: a CAS conflict means the
        metastore moved — rebuild against a fresh view and go again
        immediately; a transient store error (throttling, injected
        unavailability) means the backend is degraded — back off on the
        clock per :attr:`retry_policy` before retrying, bounded by the
        policy's attempt budget *and* the request's ambient deadline.

        ``build`` returns ``(ops, result, events)`` where each event is a
        ``(ChangeType, entity_id, kind, name, details)`` tuple published
        after the commit succeeds.

        On a branch request the same loop runs against the branch view
        and commits copy-on-write through
        :func:`~repro.core.persistence.branching.commit_to_branch`: the
        ops land in the branch's overlay tables (never touching main's
        rows or its caches) but still CAS the shared version counter, so
        branch and main writes serialize identically.
        """
        branch, at_version = self._request_pin()
        if at_version is not None:
            raise InvalidRequestError(
                "cannot mutate through an AS OF (version-pinned) request"
            )
        last_error: Optional[Exception] = None
        transient_failures = 0
        for _ in range(_MAX_COMMIT_RETRIES):
            view = self.view(metastore_id)
            ops, result, events = build(view)
            if not ops:
                return result
            node = self._nodes.get(metastore_id) if branch is None else None
            try:
                if self.faults is not None:
                    self.faults.raise_for("store.commit")
                if branch is not None:
                    new_version = _branching.commit_to_branch(
                        self.store, metastore_id, branch, view.version, ops
                    )
                elif node is not None:
                    new_version = node.commit(ops)
                else:
                    new_version = self.store.commit(metastore_id, view.version, ops)
            except ConcurrentModificationError as exc:
                self._commit_conflicts.inc()
                last_error = exc
                continue
            except TransientError as exc:
                transient_failures += 1
                if transient_failures >= self.retry_policy.max_attempts:
                    raise
                with self._lock:
                    # the jitter stream is shared by every mutating
                    # thread; Random must not interleave draws
                    delay = self.retry_policy.backoff(
                        transient_failures - 1, self._store_retry_rng
                    )
                request_deadline = ambient_deadline()
                if (request_deadline is not None
                        and self.clock.now() + delay > request_deadline):
                    raise DeadlineExceededError(
                        f"metastore commit: request deadline exhausted after "
                        f"{transient_failures} attempt(s): {exc}"
                    ) from exc
                self._store_retries.inc()
                charge(self.clock, delay)
                last_error = exc
                continue
            self._commits_total.inc()
            if branch is None:
                bundle = self._hot_caches.get(metastore_id)
            else:
                # fold into the branch's own bundle; main's bundle never
                # sees overlay writes (its changes_since replay skips
                # branch tables, so it stays coherent by construction)
                bundle = self._branch_hot_caches.get((metastore_id, branch))
            if bundle is not None:
                bundle.note_commit(ops, new_version)
            for change, entity_id, kind, name, details in events:
                if branch is not None:
                    details = dict(details or {})
                    details["branch"] = branch
                self.events.publish(
                    metastore_id,
                    new_version,
                    change,
                    entity_id,
                    kind,
                    name,
                    self.clock.now(),
                    details,
                )
            return result
        raise ConcurrentModificationError(
            f"write to metastore {metastore_id} kept conflicting: {last_error}"
        )

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def _levels_for(self, kind: SecurableKind) -> int:
        manifest = self.registry.get(kind)
        if manifest.parent_kind in (None, SecurableKind.METASTORE):
            return 1
        if manifest.parent_kind is SecurableKind.CATALOG:
            return 2
        if manifest.parent_kind is SecurableKind.SCHEMA:
            return 3
        return 4  # children of schema-level assets (e.g. model versions)

    def _resolve(self, view: MetastoreView, metastore_id: str, kind: SecurableKind,
                 name: str) -> Entity:
        """Resolve a fully qualified name to an active entity.

        Successful resolutions are served from the version-pinned
        :class:`ResolutionCache` when the fast path is on; the cached
        binding carries every entity id the walk visited, so any change
        along the chain (rename, delete) drops it.
        """
        if kind is SecurableKind.METASTORE:
            # The metastore root has no parent row, so the container walk
            # below cannot find it; resolve it directly by id.
            root = view.entity_by_id(metastore_id)
            if root is None or root.name != name:
                raise NotFoundError(f"no such metastore: {name}")
            return root
        cache = self._hot_caches_for(metastore_id, view)
        if cache is not None:
            hit = cache.get_resolution(kind, name)
            if hit is not None:
                return hit
        manifest = self.registry.get(kind)
        segments = split_full_name(name, levels=self._levels_for(kind))
        parent_id = metastore_id
        walked = [metastore_id]
        # walk the container chain
        chain_groups = ["catalog", "schema"]
        for depth, segment in enumerate(segments[:-1]):
            if depth < 2:
                group = chain_groups[depth]
            else:
                # 4-level names: third segment is the schema-level parent
                parent_manifest = self.registry.get(manifest.parent_kind)
                group = parent_manifest.namespace_group
            container = view.entity_by_name(parent_id, group, segment)
            if container is None:
                raise NotFoundError(f"no such {group}: {'.'.join(segments[:depth + 1])}")
            parent_id = container.id
            walked.append(parent_id)
        entity = view.entity_by_name(parent_id, manifest.namespace_group, segments[-1])
        if entity is None:
            raise NotFoundError(f"no such {kind.value.lower()}: {name}")
        if cache is not None:
            walked.append(entity.id)
            cache.put_resolution(kind, name, entity, frozenset(walked))
        return entity

    def resolve_name(self, metastore_id: str, kind: SecurableKind, name: str) -> Entity:
        """Public name resolution without authorization (internal tools)."""
        return self._resolve(self.view(metastore_id), metastore_id, kind, name)

    def _parent_of(
        self, view: MetastoreView, metastore_id: str, kind: SecurableKind, name: str
    ) -> tuple[Entity, str]:
        """Resolve the parent container for a to-be-created securable."""
        manifest = self.registry.get(kind)
        segments = split_full_name(name, levels=self._levels_for(kind))
        if len(segments) == 1:
            parent = view.entity_by_id(metastore_id)
            if parent is None:
                raise NotFoundError(f"no such metastore: {metastore_id}")
            return parent, segments[-1]
        parent_kind = manifest.parent_kind
        parent = self._resolve(view, metastore_id, parent_kind, ".".join(segments[:-1]))
        return parent, segments[-1]

    # ------------------------------------------------------------------
    # audit + authorization primitives
    # ------------------------------------------------------------------

    def _audit(
        self,
        metastore_id: str,
        principal: str,
        action: str,
        securable: str,
        allowed: bool,
        **details: Any,
    ) -> None:
        self.audit.record(
            self.clock.now(), metastore_id, principal, action, securable, allowed,
            details or None,
        )
        note_audit_record()

    def _authorize(
        self,
        view: MetastoreView,
        metastore_id: str,
        principal: str,
        entity: Entity,
        operation: str,
        securable_name: str,
    ) -> None:
        cache = self._hot_caches_for(metastore_id, view)
        tracer = self.obs.tracer
        if tracer.active:
            with tracer.span(
                "uc.authorize", operation=operation, securable=securable_name
            ):
                decision = self.authorizer.authorize(
                    view, entity, operation, principal, cache
                )
        else:
            decision = self.authorizer.authorize(
                view, entity, operation, principal, cache
            )
        self._audit(
            metastore_id, principal, operation, securable_name, decision.allowed,
            reason=decision.reason,
        )
        decision.raise_if_denied()

    # ------------------------------------------------------------------
    # workspace bindings (section 3.2)
    # ------------------------------------------------------------------

    def check_workspace_binding(
        self, metastore_id: str, entity: Entity, workspace: Optional[str]
    ) -> None:
        """Enforce catalog→workspace bindings.

        "Administrators can define 'bindings' to restrict a catalog's
        access to specific Databricks workspaces." A catalog without
        bindings is reachable from every workspace; a bound catalog only
        from the listed ones.
        """
        if workspace is None:
            return
        view = self.view(metastore_id)
        current: Optional[Entity] = entity
        while current is not None:
            if current.kind is SecurableKind.CATALOG:
                bindings = current.spec.get("workspace_bindings")
                if bindings and workspace not in bindings:
                    raise PermissionDeniedError(
                        f"catalog {current.name!r} is not bound to "
                        f"workspace {workspace!r}"
                    )
                return
            current = (
                view.entity_by_id(current.parent_id)
                if current.parent_id else None
            )

    # ------------------------------------------------------------------
    # storage helpers
    # ------------------------------------------------------------------

    def _is_managed_path(self, url: str) -> bool:
        return self._managed_root.contains(StoragePath.parse(url))


__all__ = ["ServiceKernel"]
