"""Multi-tenant QoS: admission control, weighted fair queuing, shedding.

One abusive workload must not starve every other tenant's interactive
queries on the shared metadata hot path (paper §"serving at scale";
ROADMAP "heavy traffic from millions of users"). This module is the
scheduler the request pipeline installs *early* in every endpoint's
interceptor chain — after observation/audit-commit (so shed requests are
still metered and leave an ``allowed=False`` audit record) and before
authn/resolution (so over-budget work is rejected before it costs
anything):

* **Token-bucket admission.** Each tenant has a bucket (``burst``
  capacity, ``refill_rate`` sustained) charged in *cost units* from the
  measured-work cost model (authorizer evaluations, store reads, scan
  rows — the same deltas ``bench/scaleout`` charges to its simulated
  servers). Admission charges a per-endpoint estimate; after the handler
  runs, :meth:`QosScheduler.settle` reconciles the bucket with the
  measured cost, so a request that scanned 10k rows pays for 10k rows
  even though admission only saw "one read".
* **Weighted fair queues, deficit-round-robin.** Over-budget requests
  queue per priority class (``interactive`` / ``batch`` /
  ``background``) in per-lane queues (one lane per shard under the
  cluster router, a single ``main`` lane standalone). Queues drain in
  DRR order — each class earns ``quantum * weight`` deficit per round —
  onto the lane's *excess* capacity, the slice of simulated DB capacity
  left over after the admitted band. Waits are charged to the injected
  clock (``SimClock.advance``), never slept, so same-seed runs are
  byte-identical.
* **Bounded shedding.** When a class queue is at ``max_queue_depth`` or
  the lane's drain backlog exceeds ``max_queue_delay`` (simulated DB
  saturation), the request is shed with
  :class:`~repro.errors.TenantThrottledError` — HTTP 429 plus a
  ``Retry-After`` computed from the bucket's refill arithmetic, so
  well-behaved clients come back exactly when capacity exists.

Lock hierarchy: the scheduler has exactly one lock (:attr:`_lock`),
taken for the duration of one admit/settle bookkeeping step and never
while calling out — it nests strictly *inside* every pipeline/cluster
lock and therefore slots in as a leaf next to the metrics and SimClock
locks (see ``repro/serve/tier.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Mapping, Optional, Sequence

from repro.clock import Clock
from repro.errors import InvalidRequestError, TenantThrottledError

#: Priority classes, in fixed DRR visit order (deterministic).
INTERACTIVE = "interactive"
BATCH = "batch"
BACKGROUND = "background"
PRIORITY_CLASSES = (INTERACTIVE, BATCH, BACKGROUND)

#: Bucket charged when a request has no principal (internal calls).
SYSTEM_TENANT = "system"


@dataclass(frozen=True)
class QosConfig:
    """Scheduler knobs. Cost unit = one point-read-equivalent.

    The defaults describe one service node: an admitted band of
    ``capacity_rate`` units/s reserved for in-budget traffic, plus an
    ``excess_rate`` leftover band that drains the fair queues. Buckets
    are sized so the sum of sustained tenant rates on a node stays under
    the admitted band; queues absorb bursts; shedding bounds everything
    else.
    """

    enabled: bool = True
    #: per-tenant sustained rate (cost units / second)
    refill_rate: float = 50.0
    #: per-tenant burst allowance (bucket capacity, cost units)
    burst: float = 100.0
    #: admitted-band capacity per lane (cost units / second)
    capacity_rate: float = 2000.0
    #: leftover capacity per lane draining the fair queues
    excess_rate: float = 400.0
    #: bound on queued requests per (lane, class)
    max_queue_depth: int = 32
    #: one tenant's maximum share of a (lane, class) queue — keeps an
    #: abusive tenant from occupying a whole queue and getting *victims'*
    #: over-budget requests shed alongside its own
    max_tenant_queue_share: float = 0.25
    #: simulated-DB saturation bound: shed when a lane's excess-band
    #: drain backlog exceeds this many seconds
    max_queue_delay: float = 5.0
    #: DRR quantum (cost units earned per class per round)
    quantum: float = 4.0
    class_weights: Mapping[str, float] = field(
        default_factory=lambda: {INTERACTIVE: 8.0, BATCH: 3.0, BACKGROUND: 1.0}
    )
    #: per-class p99 latency SLOs (seconds) — the bench gate's bounds
    class_slo: Mapping[str, float] = field(
        default_factory=lambda: {INTERACTIVE: 0.2, BATCH: 1.0, BACKGROUND: 5.0}
    )
    default_class: str = INTERACTIVE
    #: static tenant -> priority class assignment (travels through REST
    #: unchanged, since the tenant is just the request principal)
    tenant_class: Mapping[str, str] = field(default_factory=dict)
    #: admission-time cost estimates, reconciled by settle()
    read_cost: float = 1.0
    mutation_cost: float = 3.0
    #: measured-work cost model (mirrors bench/scaleout's charges)
    cost_base: float = 1.0
    cost_auth: float = 0.1
    cost_read: float = 1.0
    cost_scan_row: float = 0.01
    #: Retry-After clamp
    min_retry_after: float = 0.05
    max_retry_after: float = 60.0

    def __post_init__(self):
        for name in ("refill_rate", "burst", "capacity_rate", "excess_rate",
                     "quantum", "max_queue_delay"):
            if getattr(self, name) <= 0:
                raise InvalidRequestError(f"{name} must be > 0")
        if self.max_queue_depth < 0:
            raise InvalidRequestError("max_queue_depth must be >= 0")
        for cls in self.class_weights:
            if cls not in PRIORITY_CLASSES:
                raise InvalidRequestError(f"unknown priority class: {cls}")
        for cls, cls_name in self.tenant_class.items():
            if cls_name not in PRIORITY_CLASSES:
                raise InvalidRequestError(
                    f"unknown priority class for {cls!r}: {cls_name}"
                )

    def class_of(self, tenant: str, requested: Optional[str] = None) -> str:
        if requested is not None:
            if requested not in PRIORITY_CLASSES:
                raise InvalidRequestError(
                    f"unknown priority class: {requested}"
                )
            return requested
        return self.tenant_class.get(tenant, self.default_class)

    def measured_cost(self, before: tuple, after: tuple) -> float:
        """Cost units for the work between two :func:`work_snapshot`\\ s."""
        evals = after[0] - before[0]
        reads = after[1] - before[1]
        rows = after[2] - before[2]
        return (self.cost_base + evals * self.cost_auth
                + reads * self.cost_read + rows * self.cost_scan_row)


def work_snapshot(service) -> tuple:
    """Counters the measured-work cost model charges from.

    The same signals ``bench/scaleout`` converts into simulated CPU/DB
    time: authorization evaluations, store point reads (including
    ``multi_get`` members), and scan rows examined.
    """
    auth = service.authorizer
    store = service.store
    return (
        auth.evaluations + auth.identity_expansions,
        getattr(store, "read_count", 0) + getattr(store, "multi_get_count", 0),
        getattr(store, "scan_row_count", 0),
    )


class TokenBucket:
    """A clock-driven token bucket in cost units.

    ``charge`` may push the level negative (settle() reconciling a
    request that measured heavier than its admission estimate); the
    debt delays future refill, which is exactly the intent.
    """

    __slots__ = ("capacity", "rate", "level", "updated", "_lock")

    def __init__(self, capacity: float, rate: float, now: float):
        self.capacity = capacity
        self.rate = rate
        self.level = capacity
        self.updated = now
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.level = min(self.capacity,
                             self.level + (now - self.updated) * self.rate)
        self.updated = max(self.updated, now)

    def try_charge(self, now: float, cost: float) -> bool:
        with self._lock:
            self._refill(now)
            if self.level >= cost:
                self.level -= cost
                return True
            return False

    def charge(self, now: float, cost: float) -> None:
        """Unconditional deduction (reconciliation); may go negative."""
        with self._lock:
            self._refill(now)
            self.level -= cost

    def delay_until(self, now: float, cost: float) -> float:
        """Seconds until the bucket could afford ``cost``."""
        with self._lock:
            self._refill(now)
            if self.level >= cost:
                return 0.0
            return (cost - self.level) / self.rate

    def peek(self, now: float) -> float:
        with self._lock:
            self._refill(now)
            return self.level


class _Entry:
    """One queued request in a lane's fair queue."""

    __slots__ = ("cost", "tenant", "ready")

    def __init__(self, cost: float, tenant: str):
        self.cost = cost
        self.tenant = tenant
        self.ready: Optional[float] = None


class _Lane:
    """Per-shard queue accounting: one admitted band, one excess band,
    one DRR-drained fair queue per priority class."""

    __slots__ = ("name", "queues", "deficits", "admitted_free",
                 "excess_free", "assigned")

    def __init__(self, name: str):
        self.name = name
        self.queues: dict[str, list[_Entry]] = {
            cls: [] for cls in PRIORITY_CLASSES
        }
        self.deficits: dict[str, float] = {
            cls: 0.0 for cls in PRIORITY_CLASSES
        }
        #: absolute time the admitted band is next free
        self.admitted_free = 0.0
        #: absolute time the excess (queue-drain) band is next free
        self.excess_free = 0.0
        #: ``(ready, tenant)`` of drained-but-still-waiting entries, per
        #: class — they occupy queue-depth slots until their time arrives
        self.assigned: dict[str, list[tuple[float, str]]] = {
            cls: [] for cls in PRIORITY_CLASSES
        }

    def depth(self, cls: str, now: float) -> int:
        """Requests of ``cls`` currently waiting in this lane."""
        heap = self.assigned[cls]
        while heap and heap[0][0] <= now:
            heappop(heap)
        return len(self.queues[cls]) + len(heap)

    def tenant_depth(self, cls: str, tenant: str, now: float) -> int:
        """Slots ``tenant`` holds in this lane's ``cls`` queue."""
        heap = self.assigned[cls]
        while heap and heap[0][0] <= now:
            heappop(heap)
        return (sum(1 for entry in self.queues[cls]
                    if entry.tenant == tenant)
                + sum(1 for _, t in heap if t == tenant))

    def backlog(self, now: float, excess_rate: float) -> float:
        """Seconds of excess-band work ahead of a new queued request."""
        pending = sum(e.cost for q in self.queues.values() for e in q)
        return max(self.excess_free - now, 0.0) + pending / excess_rate

    def has_queued(self) -> bool:
        return any(self.queues[cls] for cls in PRIORITY_CLASSES)


class Grant:
    """The scheduler's verdict on one admitted or queued request."""

    __slots__ = ("tenant", "cls", "cost", "wait", "queued", "issued_at",
                 "lanes", "_settled")

    def __init__(self, tenant: str, cls: str, cost: float, wait: float,
                 queued: bool, issued_at: float, lanes: tuple[str, ...]):
        self.tenant = tenant
        self.cls = cls
        self.cost = cost
        self.wait = wait
        self.queued = queued
        self.issued_at = issued_at
        self.lanes = lanes
        self._settled = False


class QosScheduler:
    """Admission control + weighted fair queuing over named lanes.

    Standalone services run one lane (``main``); the cluster router runs
    one lane per shard and admits each logical request exactly once —
    scatter fan-outs split the cost estimate across their lanes instead
    of charging the tenant once per shard.
    """

    def __init__(
        self,
        config: QosConfig,
        clock: Clock,
        metrics=None,
        lanes: Sequence[str] = ("main",),
    ):
        if not lanes:
            raise InvalidRequestError("need at least one lane")
        self.config = config
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        #: grants awaiting resolve(), mapped to their queue entries
        self._pending: dict[Grant, list] = {}
        self._lanes: dict[str, _Lane] = {name: _Lane(name) for name in lanes}
        #: plain counters, always kept (bench fingerprints; metrics may
        #: be absent)
        self.admitted: dict[str, int] = {}
        self.queued: dict[str, int] = {}
        self.shed: dict[str, int] = {}
        self._admitted_metric = self._queued_metric = self._shed_metric = None
        self._depth_metric = self._latency_metric = None
        if metrics is not None:
            self._admitted_metric = metrics.counter(
                "uc_qos_admitted_total",
                "Requests admitted within the tenant's budget.",
                ("tenant",),
            )
            self._queued_metric = metrics.counter(
                "uc_qos_queued_total",
                "Over-budget requests placed in a weighted fair queue.",
                ("tenant",),
            )
            self._shed_metric = metrics.counter(
                "uc_qos_shed_total",
                "Requests shed with 429 + Retry-After.",
                ("tenant",),
            )
            self._depth_metric = metrics.gauge(
                "uc_qos_queue_depth",
                "Fair-queue depth by lane and priority class.",
                ("lane", "qos_class"),
            )
            self._latency_metric = metrics.histogram(
                "uc_qos_class_latency_seconds",
                "End-to-end request latency by priority class (SLO metric).",
                ("qos_class",),
            )

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def lane_names(self) -> tuple[str, ...]:
        return tuple(self._lanes)

    # -- inspection (property tests, benches) ---------------------------

    def queue_depth(self, lane: str = "main",
                    cls: str = INTERACTIVE) -> int:
        with self._lock:
            return self._lanes[lane].depth(cls, self.clock.now())

    def backlog(self, lane: str = "main") -> float:
        with self._lock:
            return self._lanes[lane].backlog(self.clock.now(),
                                             self.config.excess_rate)

    def bucket_level(self, tenant: str) -> float:
        now = self.clock.now()
        with self._lock:
            bucket = self._buckets.get(tenant)
        if bucket is None:
            return self.config.burst
        return bucket.peek(now)

    def snapshot(self) -> dict:
        """Counters for bench fingerprints (deterministic ordering)."""
        with self._lock:
            return {
                "admitted": dict(sorted(self.admitted.items())),
                "queued": dict(sorted(self.queued.items())),
                "shed": dict(sorted(self.shed.items())),
            }

    # -- the hot path ---------------------------------------------------

    def acquire(
        self,
        tenant: Optional[str],
        api: str,
        *,
        mutation: bool = False,
        requested_class: Optional[str] = None,
        lanes: Optional[Sequence[str]] = None,
        cost: Optional[float] = None,
    ) -> Grant:
        """Admit, queue, or shed one request; returns a :class:`Grant`.

        ``grant.wait`` is the seconds the caller must charge to the
        clock before proceeding (0 for an uncontended admit). Raises
        :class:`TenantThrottledError` on shed.
        """
        ticket = self.submit(tenant, api, mutation=mutation,
                             requested_class=requested_class, lanes=lanes,
                             cost=cost)
        return self.resolve(ticket)

    def submit(
        self,
        tenant: Optional[str],
        api: str,
        *,
        mutation: bool = False,
        requested_class: Optional[str] = None,
        lanes: Optional[Sequence[str]] = None,
        cost: Optional[float] = None,
    ) -> Grant:
        """Phase one: meter the bucket, enqueue or shed. The grant's
        ``wait`` is final for admitted requests; queued requests get
        their drain slot in :meth:`resolve` (split so concurrent
        arrivals land in the queues before DRR ordering is decided)."""
        config = self.config
        tenant = tenant or SYSTEM_TENANT
        cls = config.class_of(tenant, requested_class)
        if cost is None:
            cost = config.mutation_cost if mutation else config.read_cost
        now = self.clock.now()
        with self._lock:
            lane_objs = self._resolve_lanes(lanes)
            bucket = self._bucket_locked(tenant, now)
            if bucket.try_charge(now, cost):
                # in budget: occupy the admitted band of each lane
                share = cost / len(lane_objs)
                ready = now
                for lane in lane_objs:
                    lane.admitted_free = (
                        max(lane.admitted_free, now)
                        + share / config.capacity_rate
                    )
                    ready = max(ready, lane.admitted_free)
                self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
                if self._admitted_metric is not None:
                    self._admitted_metric.inc(tenant=tenant)
                return Grant(tenant, cls, cost, ready - now, False, now,
                             tuple(lane.name for lane in lane_objs))
            # over budget: bounded queue or shed
            tenant_cap = max(
                1, int(config.max_queue_depth * config.max_tenant_queue_share)
            )
            for lane in lane_objs:
                if lane.backlog(now, config.excess_rate) > config.max_queue_delay:
                    self._shed(tenant, api, cls, cost, now, bucket,
                               "saturated")
                if lane.depth(cls, now) >= config.max_queue_depth:
                    self._shed(tenant, api, cls, cost, now, bucket,
                               "queue_full")
                if lane.tenant_depth(cls, tenant, now) >= tenant_cap:
                    self._shed(tenant, api, cls, cost, now, bucket,
                               "queue_full")
            share = cost / len(lane_objs)
            entries = []
            for lane in lane_objs:
                entry = _Entry(share, tenant)
                lane.queues[cls].append(entry)
                entries.append((lane, entry))
            self.queued[tenant] = self.queued.get(tenant, 0) + 1
            if self._queued_metric is not None:
                self._queued_metric.inc(tenant=tenant)
            if self._depth_metric is not None:
                for lane in lane_objs:
                    self._depth_metric.set(lane.depth(cls, now), lane=lane.name,
                                           qos_class=cls)
            grant = Grant(tenant, cls, cost, 0.0, True, now,
                          tuple(lane.name for lane in lane_objs))
            self._pending[grant] = entries
            return grant

    def resolve(self, grant: Grant) -> Grant:
        """Phase two: drain the fair queues DRR and fix the grant's wait."""
        if not grant.queued:
            return grant
        now = self.clock.now()
        with self._lock:
            entries = self._pending.pop(grant, None)
            if entries is None:  # already resolved
                return grant
            ready = now
            for lane, entry in entries:
                self._drain_lane_locked(lane, now)
                if entry.ready is None:  # pragma: no cover - drain invariant
                    raise InvalidRequestError("queued entry not drained")
                heappush(lane.assigned[grant.cls], (entry.ready, grant.tenant))
                ready = max(ready, entry.ready)
            grant.wait = ready - now
        return grant

    def settle(self, grant: Grant, measured_cost: Optional[float] = None,
               now: Optional[float] = None) -> None:
        """Reconcile the tenant's bucket with the measured request cost
        and record the class latency. Idempotent per grant."""
        if grant._settled:
            return
        grant._settled = True
        if now is None:
            now = self.clock.now()
        if measured_cost is not None:
            extra = measured_cost - grant.cost
            if extra > 0:
                with self._lock:
                    bucket = self._bucket_locked(grant.tenant, now)
                bucket.charge(now, extra)
        if self._latency_metric is not None:
            self._latency_metric.observe(max(now - grant.issued_at, 0.0),
                                         qos_class=grant.cls)

    # -- internals ------------------------------------------------------

    def _resolve_lanes(self, lanes: Optional[Sequence[str]]) -> list[_Lane]:
        if lanes is None:
            return list(self._lanes.values())
        out = []
        for name in lanes:
            lane = self._lanes.get(name)
            if lane is None:
                raise InvalidRequestError(f"unknown QoS lane: {name}")
            out.append(lane)
        if not out:
            raise InvalidRequestError("request resolved to no QoS lane")
        return out

    def _bucket_locked(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.burst, self.config.refill_rate, now
            )
        return bucket

    def _shed(self, tenant: str, api: str, cls: str, cost: float,
              now: float, bucket: TokenBucket, reason: str) -> None:
        self.shed[tenant] = self.shed.get(tenant, 0) + 1
        if self._shed_metric is not None:
            self._shed_metric.inc(tenant=tenant)
        config = self.config
        retry_after = round(
            min(max(bucket.delay_until(now, cost), config.min_retry_after),
                config.max_retry_after),
            3,
        )
        raise TenantThrottledError(
            f"tenant {tenant!r} throttled on {api} "
            f"(class {cls}, {reason}); retry after {retry_after}s",
            retry_after_seconds=retry_after,
            reason=reason,
        )

    def _drain_lane_locked(self, lane: _Lane, now: float) -> None:
        """Assign ready times to every queued entry, DRR order.

        Each visit earns a class ``quantum * weight`` deficit; entries
        pop while their cost fits, consuming the lane's excess band.
        The deficit of an emptied class resets so idle classes cannot
        hoard credit (standard DRR).
        """
        config = self.config
        weights = config.class_weights
        base = max(lane.excess_free, now)
        while lane.has_queued():
            for cls in PRIORITY_CLASSES:
                queue = lane.queues[cls]
                if not queue:
                    lane.deficits[cls] = 0.0
                    continue
                lane.deficits[cls] += config.quantum * weights.get(cls, 1.0)
                index = 0
                while index < len(queue) and \
                        queue[index].cost <= lane.deficits[cls]:
                    entry = queue[index]
                    lane.deficits[cls] -= entry.cost
                    base += entry.cost / config.excess_rate
                    entry.ready = base
                    index += 1
                del queue[:index]
        lane.excess_free = base


__all__ = [
    "BACKGROUND",
    "BATCH",
    "Grant",
    "INTERACTIVE",
    "PRIORITY_CLASSES",
    "QosConfig",
    "QosScheduler",
    "SYSTEM_TENANT",
    "TokenBucket",
    "work_snapshot",
]
