"""The Unity Catalog service facade.

One multi-tenant service instance manages many metastores. The facade is
deliberately thin: every public method is a typed veneer over one
endpoint in the :class:`~repro.core.service.registry.ApiRegistry`,
dispatched through the request pipeline
(:mod:`repro.core.service.pipeline`) — metrics/tracing → authn → name
resolution → authorization → execution → audit commit. The actual
endpoint logic lives in the domain services under
:mod:`repro.core.service.domains`; the infrastructure (stores, caches,
authorizer, commit loop) lives in the
:class:`~repro.core.service.kernel.ServiceKernel` this class extends.

The REST router (:mod:`repro.core.service.rest`) dispatches through the
same registry, so the two surfaces cannot drift: a new endpoint
registered by a domain module appears on both at once.

The read path goes through a per-metastore write-through cache node when
caching is enabled (the production configuration), or straight to
snapshot scans of the backing store when disabled (the "without caching"
baseline of Figure 10(b)).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cloudstore.sts import AccessLevel, TemporaryCredential
from repro.core.auth.abac import AbacEffect, AbacPolicy, TagCondition
from repro.core.auth.fgac import ColumnMask, RowFilter
from repro.core.auth.privileges import Privilege, PrivilegeGrant
from repro.core.model.entity import Entity, SecurableKind
from repro.core.service.domains import all_endpoints
from repro.core.service.domains.securables import (
    _STORAGELESS_TABLE_TYPES,
    GcReport,
)
from repro.core.service.kernel import ServiceKernel
from repro.core.service.pipeline import RequestPipeline
from repro.core.service.registry import ApiRegistry

__all__ = ["GcReport", "UnityCatalogService"]


class UnityCatalogService(ServiceKernel):
    """The multi-tenant Unity Catalog service."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.api_registry = ApiRegistry()
        self.api_registry.register_all(all_endpoints())
        self.pipeline = RequestPipeline(self)

    def dispatch(self, api: str, **params: Any) -> Any:
        """Run one named endpoint through the request pipeline.

        The reserved ``_timeout`` kwarg (relative seconds) overrides the
        service's default request timeout for this call.
        """
        return self.pipeline.dispatch(self.api_registry.get(api), params)

    # ------------------------------------------------------------------
    # metastore management
    # ------------------------------------------------------------------

    def create_metastore(self, name: str, owner: str, region: str = "us-west") -> Entity:
        """Create a metastore: the namespace root and unit of isolation."""
        return self.dispatch("create_metastore", name=name, owner=owner,
                             region=region)

    # ------------------------------------------------------------------
    # securable CRUD
    # ------------------------------------------------------------------

    def create_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        *,
        comment: str = "",
        storage_path: Optional[str] = None,
        spec: Optional[dict[str, Any]] = None,
        properties: Optional[dict[str, Any]] = None,
    ) -> Entity:
        """Create any securable; behaviour is driven by its manifest."""
        return self.dispatch(
            "create_securable", metastore_id=metastore_id, principal=principal,
            kind=kind, name=name, comment=comment, storage_path=storage_path,
            spec=spec, properties=properties,
        )

    def get_securable(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str
    ) -> Entity:
        return self.dispatch("get_securable", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name)

    def list_securables(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        parent_name: Optional[str] = None,
    ) -> list[Entity]:
        """List children of a container, filtered to what the caller may see."""
        return self.dispatch("list_securables", metastore_id=metastore_id,
                             principal=principal, kind=kind,
                             parent_name=parent_name)

    def update_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        *,
        comment: Optional[str] = None,
        properties: Optional[dict[str, Any]] = None,
        spec_changes: Optional[dict[str, Any]] = None,
    ) -> Entity:
        return self.dispatch(
            "update_securable", metastore_id=metastore_id, principal=principal,
            kind=kind, name=name, comment=comment, properties=properties,
            spec_changes=spec_changes,
        )

    def rename_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        new_name: str,
    ) -> Entity:
        return self.dispatch("rename_securable", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name,
                             new_name=new_name)

    def transfer_ownership(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        new_owner: str,
    ) -> Entity:
        return self.dispatch("transfer_ownership", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name,
                             new_owner=new_owner)

    def delete_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        *,
        cascade: bool = False,
    ) -> list[Entity]:
        """Soft-delete a securable (and, with ``cascade``, its children)."""
        return self.dispatch("delete_securable", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name,
                             cascade=cascade)

    def purge_deleted(
        self, metastore_id: str, older_than_seconds: float = 0.0
    ) -> GcReport:
        """Hard-delete soft-deleted entities and release their resources."""
        return self.dispatch("purge_deleted", metastore_id=metastore_id,
                             older_than_seconds=older_than_seconds)

    # ------------------------------------------------------------------
    # branching & time travel
    # ------------------------------------------------------------------

    def create_branch(
        self, metastore_id: str, principal: str, catalog: str, branch: str
    ) -> dict[str, Any]:
        """Fork a zero-copy branch of a catalog at the current version."""
        return self.dispatch("create_branch", metastore_id=metastore_id,
                             principal=principal, catalog=catalog,
                             branch=branch)

    def list_branches(
        self, metastore_id: str, principal: str, catalog: str
    ) -> list[dict[str, Any]]:
        return self.dispatch("list_branches", metastore_id=metastore_id,
                             principal=principal, catalog=catalog)

    def diff_branch(
        self, metastore_id: str, principal: str, catalog: str, branch: str
    ) -> dict[str, Any]:
        """Securable-level diff between a branch and main since the fork."""
        return self.dispatch("diff_branch", metastore_id=metastore_id,
                             principal=principal, catalog=catalog,
                             branch=branch)

    def merge_branch(
        self, metastore_id: str, principal: str, catalog: str, branch: str
    ) -> dict[str, Any]:
        """Merge a branch into main; conflicts raise MergeConflictError."""
        return self.dispatch("merge_branch", metastore_id=metastore_id,
                             principal=principal, catalog=catalog,
                             branch=branch)

    def delete_branch(
        self, metastore_id: str, principal: str, catalog: str, branch: str
    ) -> None:
        self.dispatch("delete_branch", metastore_id=metastore_id,
                      principal=principal, catalog=catalog, branch=branch)

    # ------------------------------------------------------------------
    # grants and policies
    # ------------------------------------------------------------------

    def grant(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        grantee: str,
        privilege: Privilege,
    ) -> PrivilegeGrant:
        return self.dispatch("grant", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name,
                             grantee=grantee, privilege=privilege)

    def revoke(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        grantee: str,
        privilege: Privilege,
    ) -> None:
        self.dispatch("revoke", metastore_id=metastore_id, principal=principal,
                      kind=kind, name=name, grantee=grantee, privilege=privilege)

    def grants_on(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str
    ) -> list[PrivilegeGrant]:
        return self.dispatch("grants_on", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name)

    def has_privilege(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        privilege: Privilege,
    ) -> bool:
        """The authorization API exposed to second-tier/discovery services."""
        return self.dispatch("has_privilege", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name,
                             privilege=privilege)

    def create_abac_policy(
        self,
        metastore_id: str,
        principal: str,
        *,
        name: str,
        scope_kind: SecurableKind,
        scope_name: Optional[str],
        condition: TagCondition,
        effect: AbacEffect,
        privilege: Optional[Privilege] = None,
        mask_sql: Optional[str] = None,
        predicate_sql: Optional[str] = None,
        principals: tuple[str, ...] = (),
        exempt_principals: tuple[str, ...] = (),
    ) -> AbacPolicy:
        """Define an ABAC policy at metastore/catalog/schema scope."""
        return self.dispatch(
            "create_abac_policy", metastore_id=metastore_id,
            principal=principal, name=name, scope_kind=scope_kind,
            scope_name=scope_name, condition=condition, effect=effect,
            privilege=privilege, mask_sql=mask_sql,
            predicate_sql=predicate_sql, principals=principals,
            exempt_principals=exempt_principals,
        )

    def drop_abac_policy(self, metastore_id: str, principal: str, policy_id: str) -> None:
        self.dispatch("drop_abac_policy", metastore_id=metastore_id,
                      principal=principal, policy_id=policy_id)

    # ------------------------------------------------------------------
    # tags and FGAC
    # ------------------------------------------------------------------

    def set_tag(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        key: str,
        value: str,
    ) -> None:
        self.dispatch("set_tag", metastore_id=metastore_id, principal=principal,
                      kind=kind, name=name, key=key, value=value)

    def unset_tag(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str,
        key: str,
    ) -> None:
        self.dispatch("unset_tag", metastore_id=metastore_id,
                      principal=principal, kind=kind, name=name, key=key)

    def set_column_tag(
        self,
        metastore_id: str,
        principal: str,
        table_name: str,
        column: str,
        key: str,
        value: str,
    ) -> None:
        self.dispatch("set_column_tag", metastore_id=metastore_id,
                      principal=principal, table_name=table_name, column=column,
                      key=key, value=value)

    def tags_of(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str
    ) -> dict[str, str]:
        return self.dispatch("tags_of", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name)

    def set_row_filter(
        self,
        metastore_id: str,
        principal: str,
        table_name: str,
        filter_name: str,
        predicate_sql: str,
        exempt_principals: tuple[str, ...] = (),
    ) -> RowFilter:
        return self.dispatch(
            "set_row_filter", metastore_id=metastore_id, principal=principal,
            table_name=table_name, filter_name=filter_name,
            predicate_sql=predicate_sql, exempt_principals=exempt_principals,
        )

    def drop_row_filter(
        self, metastore_id: str, principal: str, table_name: str, filter_name: str
    ) -> None:
        self.dispatch("drop_row_filter", metastore_id=metastore_id,
                      principal=principal, table_name=table_name,
                      filter_name=filter_name)

    def set_column_mask(
        self,
        metastore_id: str,
        principal: str,
        table_name: str,
        column: str,
        mask_sql: str,
        exempt_principals: tuple[str, ...] = (),
    ) -> ColumnMask:
        return self.dispatch(
            "set_column_mask", metastore_id=metastore_id, principal=principal,
            table_name=table_name, column=column, mask_sql=mask_sql,
            exempt_principals=exempt_principals,
        )

    def drop_column_mask(
        self, metastore_id: str, principal: str, table_name: str, column: str
    ) -> None:
        self.dispatch("drop_column_mask", metastore_id=metastore_id,
                      principal=principal, table_name=table_name, column=column)

    # ------------------------------------------------------------------
    # credential vending and path-based access (section 4.3.1)
    # ------------------------------------------------------------------

    def vend_credentials(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        level: AccessLevel,
    ) -> TemporaryCredential:
        """Name-based access: authorize, then mint a downscoped token."""
        return self.dispatch("vend_credentials", metastore_id=metastore_id,
                             principal=principal, kind=kind, name=name,
                             level=level)

    def access_by_path(
        self,
        metastore_id: str,
        principal: str,
        url: str,
        level: AccessLevel,
    ) -> tuple[Entity, TemporaryCredential]:
        """Path-based access: resolve the governing asset first, then apply
        exactly the same policy as name-based access."""
        return self.dispatch("access_by_path", metastore_id=metastore_id,
                             principal=principal, url=url, level=level)

    # ------------------------------------------------------------------
    # information schema, batched resolution, discovery, lineage
    # ------------------------------------------------------------------

    def query_information_schema(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        *,
        catalog: Optional[str] = None,
        schema: Optional[str] = None,
        where: tuple[tuple[str, str, Any], ...] = (),
        limit: Optional[int] = None,
    ) -> list[dict[str, Any]]:
        """Relational view over catalog metadata, with pushdown."""
        return self.dispatch(
            "query_information_schema", metastore_id=metastore_id,
            principal=principal, kind=kind, catalog=catalog, schema=schema,
            where=where, limit=limit,
        )

    def resolve_for_query(
        self,
        metastore_id: str,
        principal: str,
        table_names: list[str],
        *,
        write_tables: tuple[str, ...] = (),
        function_names: tuple[str, ...] = (),
        include_credentials: bool = True,
        engine_trusted: Optional[bool] = None,
        workspace: Optional[str] = None,
    ):
        """One batched API call returning the full metadata closure for a
        query (see :mod:`repro.core.service.batch`)."""
        return self.dispatch(
            "resolve_for_query", metastore_id=metastore_id, principal=principal,
            table_names=table_names, write_tables=write_tables,
            function_names=function_names,
            include_credentials=include_credentials,
            engine_trusted=engine_trusted, workspace=workspace,
        )

    def filter_visible_entities(
        self, metastore_id: str, principal: str, entities: list[Entity]
    ) -> list[Entity]:
        return self.dispatch("filter_visible_entities",
                             metastore_id=metastore_id, principal=principal,
                             entities=entities)

    def record_lineage(
        self,
        metastore_id: str,
        principal: str,
        sources: list[str],
        target: str,
        operation: str,
        columns: tuple[str, ...] = (),
    ) -> None:
        """Engines submit lineage during query processing."""
        self.dispatch("record_lineage", metastore_id=metastore_id,
                      principal=principal, sources=sources, target=target,
                      operation=operation, columns=columns)

    def lineage_downstream(
        self, metastore_id: str, principal: str, asset: str
    ) -> set[str]:
        """Downstream closure, filtered to assets the caller may see."""
        return self.dispatch("lineage", metastore_id=metastore_id,
                             principal=principal, asset=asset,
                             direction="downstream")

    def lineage_upstream(
        self, metastore_id: str, principal: str, asset: str
    ) -> set[str]:
        return self.dispatch("lineage", metastore_id=metastore_id,
                             principal=principal, asset=asset,
                             direction="upstream")
