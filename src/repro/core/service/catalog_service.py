"""The Unity Catalog service facade.

One multi-tenant service instance manages many metastores. Every public
method is an API entry point: it authenticates nothing (the request
gateway upstream did that), authorizes everything, writes one audit
record, and publishes change events for discovery consumers.

The read path goes through a per-metastore write-through cache node when
caching is enabled (the production configuration), or straight to
snapshot scans of the backing store when disabled (the "without caching"
baseline of Figure 10(b)).
"""

from __future__ import annotations

import random as _random
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.clock import Clock, WallClock
from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import ObjectStore, StoragePath
from repro.cloudstore.sts import AccessLevel, StsTokenIssuer, TemporaryCredential
from repro.core.assets.builtin import builtin_registry
from repro.core.audit import AuditLog
from repro.core.auth.abac import AbacEffect, AbacPolicy, TagCondition
from repro.core.auth.authorizer import Authorizer
from repro.core.auth.fgac import ColumnMask, RowFilter
from repro.core.auth.principals import PrincipalDirectory
from repro.core.auth.privileges import Privilege, PrivilegeGrant, SYSTEM_PRINCIPAL
from repro.core.cache.decisions import HotPathCaches
from repro.core.cache.eviction import EvictionPolicy
from repro.core.cache.node import MetastoreCacheNode, ReconcileMode
from repro.core.events import ChangeEventBus, ChangeType
from repro.core.lineage import LineageGraph
from repro.core.model.entity import Entity, EntityState, SecurableKind, new_entity_id
from repro.core.model.naming import split_full_name, validate_identifier
from repro.core.model.registry import AssetTypeRegistry
from repro.core.persistence.memory import InMemoryMetadataStore
from repro.core.persistence.store import MetadataStore, Tables, WriteOp
from repro.core.vending import CredentialVendor
from repro.obs import Observability
from repro.resilience import Retrier, RetryPolicy, charge
from repro.core.view import MetastoreView, SnapshotView
from repro.errors import (
    AlreadyExistsError,
    ConcurrentModificationError,
    InvalidRequestError,
    NotFoundError,
    PathConflictError,
    PermissionDeniedError,
    TransientError,
    UntrustedEngineError,
)

#: table_type values that carry no backing storage of their own.
_STORAGELESS_TABLE_TYPES = frozenset({"VIEW", "MATERIALIZED_VIEW", "FOREIGN"})

_MAX_COMMIT_RETRIES = 8


class _ApiObservation:
    """Hand-rolled context manager timing one API entry point.

    A generator-based ``@contextmanager`` costs several microseconds per
    call; the service hot paths (cached point reads run in tens of
    microseconds) cannot afford that, so this is a ``__slots__`` class
    whose enter/exit do the minimum: counter inc, two clock reads, one
    histogram observe, and a real span only when a trace is active.
    """

    __slots__ = ("_service", "_requests", "_errors", "_latency", "_span_name",
                 "_start", "_span")

    def __init__(self, service, requests, errors, latency, span_name):
        self._service = service
        self._requests = requests
        self._errors = errors
        self._latency = latency
        self._span_name = span_name

    def __enter__(self) -> "_ApiObservation":
        self._requests.inc()
        tracer = self._service.obs.tracer
        if tracer.active:
            self._span = tracer.span(self._span_name)
            self._span.__enter__()
        else:
            self._span = None
        self._start = self._service.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._latency.observe(self._service.clock.now() - self._start)
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
        if exc_type is not None:
            self._errors.inc()
        return False


@dataclass
class GcReport:
    """Outcome of one garbage-collection pass."""

    purged_entities: int = 0
    purged_grants: int = 0
    deleted_objects: int = 0


class UnityCatalogService:
    """The multi-tenant Unity Catalog service."""

    def __init__(
        self,
        store: Optional[MetadataStore] = None,
        registry: Optional[AssetTypeRegistry] = None,
        directory: Optional[PrincipalDirectory] = None,
        clock: Optional[Clock] = None,
        object_store: Optional[ObjectStore] = None,
        sts: Optional[StsTokenIssuer] = None,
        enable_cache: bool = True,
        reconcile_mode: ReconcileMode = ReconcileMode.SELECTIVE,
        eviction_policy_factory: Optional[Callable[[], EvictionPolicy]] = None,
        max_cached_entities: Optional[int] = None,
        managed_root: str = "s3://unity-managed",
        read_version_check: bool = True,
        rink_cache=None,
        obs: Optional[Observability] = None,
        retry_policy: Optional[RetryPolicy] = None,
        faults=None,
        enable_fast_path: Optional[bool] = None,
    ):
        """``read_version_check=False`` lets a node that knows it owns a
        metastore (sharding assignment) skip the per-read DB version probe
        and serve cache hits purely from memory; correctness still holds
        because every write CASes the metastore version (section 4.5).

        ``enable_fast_path`` toggles the version-pinned decision and
        resolution caches layered on top of the node cache (see
        :mod:`repro.core.cache.decisions`); it defaults to ``enable_cache``
        so the Figure 10(b) "without caching" baseline stays genuinely
        uncached.

        ``retry_policy`` governs transient-error retries across the
        service's dependencies (storage, STS, the backing metadata
        store); ``faults`` is an optional
        :class:`~repro.faults.FaultInjector` threaded into every
        service-constructed dependency for chaos experiments."""
        self.clock = clock or WallClock()
        self.obs = obs or Observability(clock=self.clock)
        self.faults = faults
        self.retry_policy = retry_policy or RetryPolicy()
        metrics = self.obs.metrics
        self.storage_retrier = Retrier(
            self.retry_policy, self.clock, metrics=metrics,
            tracer=self.obs.tracer, component="storage",
        )
        self._sts_retrier = Retrier(
            self.retry_policy, self.clock, metrics=metrics,
            tracer=self.obs.tracer, component="sts", seed=0x57A7,
        )
        self.store = store or InMemoryMetadataStore()
        self.registry = registry or builtin_registry()
        self.directory = directory or PrincipalDirectory()
        self.object_store = object_store or ObjectStore(faults=faults)
        self.sts = sts or StsTokenIssuer(
            clock=self.clock, faults=faults, retrier=self._sts_retrier
        )
        self.authorizer = Authorizer(self.registry, self.directory)
        self.audit = AuditLog()
        self.events = ChangeEventBus()
        self.lineage = LineageGraph()
        self.enable_cache = enable_cache
        self._reconcile_mode = reconcile_mode
        self._eviction_policy_factory = eviction_policy_factory
        self._max_cached_entities = max_cached_entities
        self._managed_root = StoragePath.parse(managed_root)
        self.object_store.ensure_bucket(self._managed_root.scheme, self._managed_root.bucket)
        self.vendor = CredentialVendor(
            self.sts, self.clock, managed_root_secret=self.sts.root_secret,
            rink_cache=rink_cache, obs=self.obs,
        )
        self.enable_fast_path = (
            enable_cache if enable_fast_path is None else enable_fast_path
        )
        self._nodes: dict[str, MetastoreCacheNode] = {}
        self._hot_caches: dict[str, HotPathCaches] = {}
        self._metastore_names: dict[str, str] = {}
        self._read_version_check = read_version_check
        self._lock = threading.RLock()
        metrics = self.obs.metrics
        self._api_requests = metrics.counter(
            "uc_api_requests_total", "Catalog API calls by entry point.", ("api",)
        )
        self._api_errors = metrics.counter(
            "uc_api_errors_total", "Catalog API calls that raised.", ("api",)
        )
        self._api_latency = metrics.histogram(
            "uc_api_latency_seconds", "Catalog API latency by entry point.", ("api",)
        )
        self._commits_total = metrics.counter(
            "uc_store_commits_total", "Successful metadata-store commits."
        ).labels()
        self._commit_conflicts = metrics.counter(
            "uc_store_commit_conflicts_total", "Metadata CAS commit conflicts."
        ).labels()
        self._store_retries = metrics.counter(
            "uc_retries_total",
            "Transient-error retries by component.",
            ("component",),
        ).labels(component="metastore")
        self._store_retry_rng = _random.Random(0xCA7)
        self._api_instruments: dict[str, tuple] = {}
        metrics.register_collector(self._collect_core_stats)

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    def _observed(self, api: str) -> _ApiObservation:
        """Count + time one API entry point; open a span when traced.

        Children (and the span name) are bound once per API name, so the
        steady-state cost is one small allocation, two clock reads, a
        counter increment, and a histogram observe.
        """
        instruments = self._api_instruments.get(api)
        if instruments is None:
            instruments = (
                self._api_requests.labels(api=api),
                self._api_errors.labels(api=api),
                self._api_latency.labels(api=api),
                f"uc.{api}",
            )
            self._api_instruments[api] = instruments
        return _ApiObservation(self, *instruments)

    def _collect_core_stats(self):
        """Scrape-time export of subsystem counters (zero hot-path cost)."""
        vending = self.vendor.stats
        store_stats = self.object_store.stats
        yield ("uc_credentials_minted_total", {}, vending.minted)
        yield ("uc_credential_cache_hits_total", {}, vending.cache_hits)
        yield ("uc_sts_tokens_minted_total", {}, self.sts.minted_count)
        yield ("uc_sts_validations_total", {}, self.sts.validated_count)
        yield ("uc_sts_denials_total", {}, self.sts.denied_count)
        yield ("uc_objectstore_gets_total", {}, store_stats.gets)
        yield ("uc_objectstore_puts_total", {}, store_stats.puts)
        yield ("uc_objectstore_conditional_puts_total", {},
               store_stats.conditional_puts)
        yield ("uc_objectstore_lists_total", {}, store_stats.lists)
        yield ("uc_objectstore_deletes_total", {}, store_stats.deletes)
        yield ("uc_objectstore_bytes_read_total", {}, store_stats.bytes_read)
        yield ("uc_objectstore_bytes_written_total", {}, store_stats.bytes_written)
        yield ("uc_store_multi_get_total", {},
               getattr(self.store, "multi_get_count", 0))

    def _register_node_collector(self, name: str, node: MetastoreCacheNode) -> None:
        """Export one cache node's tier stats, labelled by metastore."""
        stats = node.stats
        labels = {"metastore": name, "tier": "node"}

        def collect():
            yield ("uc_cache_hits_total", labels, stats.hits)
            yield ("uc_cache_misses_total", labels, stats.misses)
            yield ("uc_cache_evictions_total", labels, stats.evictions)
            yield ("uc_cache_hit_rate", labels, stats.hit_rate)
            yield ("uc_cache_version_checks_total", labels, stats.version_checks)
            yield ("uc_cache_reconciles_total", labels, stats.reconciles)

        self.obs.metrics.register_collector(collect)

    def _register_hot_cache_collector(self, name: str, bundle: HotPathCaches) -> None:
        """Export one fast-path bundle's counters, labelled by metastore."""
        stats = bundle.stats
        labels = {"metastore": name}

        def collect():
            yield ("uc_authz_cache_hits_total", labels, stats.authz_hits)
            yield ("uc_authz_cache_misses_total", labels, stats.authz_misses)
            yield ("uc_resolution_cache_hits_total", labels, stats.resolution_hits)
            yield ("uc_resolution_cache_misses_total", labels,
                   stats.resolution_misses)
            yield ("uc_hot_cache_invalidations_total", labels, stats.invalidations)

        self.obs.metrics.register_collector(collect)

    # ------------------------------------------------------------------
    # metastore management
    # ------------------------------------------------------------------

    def create_metastore(self, name: str, owner: str, region: str = "us-west") -> Entity:
        """Create a metastore: the namespace root and unit of isolation."""
        validate_identifier(name, what="metastore name")
        self.directory.get(owner)
        with self._lock:
            if name in self._metastore_names:
                raise AlreadyExistsError(f"metastore exists: {name}")
            metastore_id = new_entity_id()
            self.store.create_metastore_slot(metastore_id)
            now = self.clock.now()
            entity = Entity(
                id=metastore_id,
                kind=SecurableKind.METASTORE,
                name=name,
                metastore_id=metastore_id,
                parent_id=None,
                owner=owner,
                created_at=now,
                updated_at=now,
                spec={"region": region},
            )
            self.store.commit(
                metastore_id, 0, [WriteOp.put(Tables.ENTITIES, metastore_id, entity.to_dict())]
            )
            self._metastore_names[name] = metastore_id
            if self.enable_cache:
                policy = (
                    self._eviction_policy_factory()
                    if self._eviction_policy_factory
                    else None
                )
                node = MetastoreCacheNode(
                    self.store,
                    metastore_id,
                    self.registry,
                    clock=self.clock,
                    reconcile_mode=self._reconcile_mode,
                    eviction_policy=policy,
                    max_cached_entities=self._max_cached_entities,
                )
                node.warm()
                self._nodes[metastore_id] = node
                self._register_node_collector(name, node)
            if self.enable_fast_path:
                bundle = HotPathCaches(
                    metastore_id,
                    self.store.current_version(metastore_id),
                    lambda v, mid=metastore_id: self.store.changes_since(mid, v),
                    lambda: self.directory.generation,
                )
                self._hot_caches[metastore_id] = bundle
                self._register_hot_cache_collector(name, bundle)
        self._audit(metastore_id, owner, "create_metastore", name, True)
        return entity

    def metastore_id(self, name: str) -> str:
        with self._lock:
            try:
                return self._metastore_names[name]
            except KeyError:
                raise NotFoundError(f"no such metastore: {name}")

    def metastore_ids(self) -> list[str]:
        with self._lock:
            return list(self._metastore_names.values())

    def cache_node(self, metastore_id: str) -> Optional[MetastoreCacheNode]:
        return self._nodes.get(metastore_id)

    def hot_caches(self, metastore_id: str) -> Optional[HotPathCaches]:
        """The fast-path bundle for a metastore (None with fast path off)."""
        return self._hot_caches.get(metastore_id)

    def _hot_caches_for(
        self, metastore_id: str, view: MetastoreView
    ) -> Optional[HotPathCaches]:
        """The fast-path bundle, synced to ``view``'s version — or None
        when the fast path is off or the view is pinned behind the bundle
        (then the caller recomputes; correctness never needs the cache)."""
        bundle = self._hot_caches.get(metastore_id)
        if bundle is None:
            return None
        return bundle if bundle.sync(view.version) else None

    def governed_client(self, credential: TemporaryCredential) -> StorageClient:
        """A storage client bound to ``credential`` and the service's
        retry policy — the constructor every in-process consumer (engine
        sessions, volumes, transactions, sharing) should use so storage
        transients are absorbed uniformly."""
        return StorageClient(
            self.object_store, self.sts, credential, retrier=self.storage_retrier
        )

    # ------------------------------------------------------------------
    # view / commit plumbing
    # ------------------------------------------------------------------

    def view(self, metastore_id: str) -> MetastoreView:
        """A consistent read view (cached or snapshot-backed)."""
        node = self._nodes.get(metastore_id)
        if node is not None:
            return node.view(check_version=self._read_version_check)
        return SnapshotView(self.store.snapshot(metastore_id), self.registry)

    def _mutate(
        self,
        metastore_id: str,
        build: Callable[[MetastoreView], tuple[list[WriteOp], Any, list[tuple]]],
    ) -> Any:
        """Optimistic serializable write: validate against a fresh view,
        commit with CAS, retry from scratch on conflict.

        Two failure regimes, two recoveries: a CAS conflict means the
        metastore moved — rebuild against a fresh view and go again
        immediately; a transient store error (throttling, injected
        unavailability) means the backend is degraded — back off on the
        clock per :attr:`retry_policy` before retrying, bounded by the
        policy's attempt budget.

        ``build`` returns ``(ops, result, events)`` where each event is a
        ``(ChangeType, entity_id, kind, name, details)`` tuple published
        after the commit succeeds.
        """
        last_error: Optional[Exception] = None
        transient_failures = 0
        for _ in range(_MAX_COMMIT_RETRIES):
            view = self.view(metastore_id)
            ops, result, events = build(view)
            if not ops:
                return result
            node = self._nodes.get(metastore_id)
            try:
                if self.faults is not None:
                    self.faults.raise_for("store.commit")
                if node is not None:
                    new_version = node.commit(ops)
                else:
                    new_version = self.store.commit(metastore_id, view.version, ops)
            except ConcurrentModificationError as exc:
                self._commit_conflicts.inc()
                last_error = exc
                continue
            except TransientError as exc:
                transient_failures += 1
                if transient_failures >= self.retry_policy.max_attempts:
                    raise
                self._store_retries.inc()
                charge(
                    self.clock,
                    self.retry_policy.backoff(
                        transient_failures - 1, self._store_retry_rng
                    ),
                )
                last_error = exc
                continue
            self._commits_total.inc()
            bundle = self._hot_caches.get(metastore_id)
            if bundle is not None:
                bundle.note_commit(ops, new_version)
            for change, entity_id, kind, name, details in events:
                self.events.publish(
                    metastore_id,
                    new_version,
                    change,
                    entity_id,
                    kind,
                    name,
                    self.clock.now(),
                    details,
                )
            return result
        raise ConcurrentModificationError(
            f"write to metastore {metastore_id} kept conflicting: {last_error}"
        )

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def _levels_for(self, kind: SecurableKind) -> int:
        manifest = self.registry.get(kind)
        if manifest.parent_kind in (None, SecurableKind.METASTORE):
            return 1
        if manifest.parent_kind is SecurableKind.CATALOG:
            return 2
        if manifest.parent_kind is SecurableKind.SCHEMA:
            return 3
        return 4  # children of schema-level assets (e.g. model versions)

    def _resolve(self, view: MetastoreView, metastore_id: str, kind: SecurableKind,
                 name: str) -> Entity:
        """Resolve a fully qualified name to an active entity.

        Successful resolutions are served from the version-pinned
        :class:`ResolutionCache` when the fast path is on; the cached
        binding carries every entity id the walk visited, so any change
        along the chain (rename, delete) drops it.
        """
        cache = self._hot_caches_for(metastore_id, view)
        if cache is not None:
            hit = cache.get_resolution(kind, name)
            if hit is not None:
                return hit
        manifest = self.registry.get(kind)
        segments = split_full_name(name, levels=self._levels_for(kind))
        parent_id = metastore_id
        walked = [metastore_id]
        # walk the container chain
        chain_groups = ["catalog", "schema"]
        for depth, segment in enumerate(segments[:-1]):
            if depth < 2:
                group = chain_groups[depth]
            else:
                # 4-level names: third segment is the schema-level parent
                parent_manifest = self.registry.get(manifest.parent_kind)
                group = parent_manifest.namespace_group
            container = view.entity_by_name(parent_id, group, segment)
            if container is None:
                raise NotFoundError(f"no such {group}: {'.'.join(segments[:depth + 1])}")
            parent_id = container.id
            walked.append(parent_id)
        entity = view.entity_by_name(parent_id, manifest.namespace_group, segments[-1])
        if entity is None:
            raise NotFoundError(f"no such {kind.value.lower()}: {name}")
        if cache is not None:
            walked.append(entity.id)
            cache.put_resolution(kind, name, entity, frozenset(walked))
        return entity

    def resolve_name(self, metastore_id: str, kind: SecurableKind, name: str) -> Entity:
        """Public name resolution without authorization (internal tools)."""
        return self._resolve(self.view(metastore_id), metastore_id, kind, name)

    def _parent_of(
        self, view: MetastoreView, metastore_id: str, kind: SecurableKind, name: str
    ) -> tuple[Entity, str]:
        """Resolve the parent container for a to-be-created securable."""
        manifest = self.registry.get(kind)
        segments = split_full_name(name, levels=self._levels_for(kind))
        if len(segments) == 1:
            parent = view.entity_by_id(metastore_id)
            if parent is None:
                raise NotFoundError(f"no such metastore: {metastore_id}")
            return parent, segments[-1]
        parent_kind = manifest.parent_kind
        parent = self._resolve(view, metastore_id, parent_kind, ".".join(segments[:-1]))
        return parent, segments[-1]

    # ------------------------------------------------------------------
    # auditing helper
    # ------------------------------------------------------------------

    def _audit(
        self,
        metastore_id: str,
        principal: str,
        action: str,
        securable: str,
        allowed: bool,
        **details: Any,
    ) -> None:
        self.audit.record(
            self.clock.now(), metastore_id, principal, action, securable, allowed,
            details or None,
        )

    def _authorize(
        self,
        view: MetastoreView,
        metastore_id: str,
        principal: str,
        entity: Entity,
        operation: str,
        securable_name: str,
    ) -> None:
        cache = self._hot_caches_for(metastore_id, view)
        tracer = self.obs.tracer
        if tracer.active:
            with tracer.span(
                "uc.authorize", operation=operation, securable=securable_name
            ):
                decision = self.authorizer.authorize(
                    view, entity, operation, principal, cache
                )
        else:
            decision = self.authorizer.authorize(
                view, entity, operation, principal, cache
            )
        self._audit(
            metastore_id, principal, operation, securable_name, decision.allowed,
            reason=decision.reason,
        )
        decision.raise_if_denied()

    # ------------------------------------------------------------------
    # securable CRUD
    # ------------------------------------------------------------------

    def create_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        *,
        comment: str = "",
        storage_path: Optional[str] = None,
        spec: Optional[dict[str, Any]] = None,
        properties: Optional[dict[str, Any]] = None,
    ) -> Entity:
        """Create any securable; behaviour is driven by its manifest."""
        if kind is SecurableKind.METASTORE:
            raise InvalidRequestError("use create_metastore")
        manifest = self.registry.get(kind)

        def build(view: MetastoreView):
            parent, leaf_name = self._parent_of(view, metastore_id, kind, name)
            identities = self.authorizer.identities(principal)

            # usage gates along the parent chain (including the parent)
            gates = self.authorizer.check_usage_gates(view, parent, identities)
            gates.raise_if_denied()
            if parent.kind in (SecurableKind.CATALOG, SecurableKind.SCHEMA):
                needed = (
                    Privilege.USE_CATALOG
                    if parent.kind is SecurableKind.CATALOG
                    else Privilege.USE_SCHEMA
                )
                if not (
                    self.authorizer.is_owner_or_admin(view, parent, identities)
                    or self.authorizer.has_privilege(view, parent, needed, identities)
                ):
                    raise PermissionDeniedError(
                        f"missing {needed.value} on {parent.name!r}"
                    )

            # creation privilege on the parent (admins always may)
            create_privilege = manifest.create_privilege
            allowed = self.authorizer.is_owner_or_admin(view, parent, identities)
            if not allowed and create_privilege is not None:
                allowed = self.authorizer.has_privilege(
                    view, parent, create_privilege, identities
                )
            if not allowed:
                raise PermissionDeniedError(
                    f"{principal!r} may not create {kind.value.lower()} in "
                    f"{parent.name!r}"
                )

            # name uniqueness within (parent, namespace group)
            if view.entity_by_name(parent.id, manifest.namespace_group, leaf_name):
                raise AlreadyExistsError(
                    f"{kind.value.lower()} already exists: {name}"
                )

            normalized = manifest.validate_create(dict(spec or {}))
            entity_id = new_entity_id()
            entity_storage = self._prepare_storage(
                view, metastore_id, manifest, normalized, storage_path, entity_id,
                parent, identities, principal,
            )
            self._validate_dependencies(view, metastore_id, normalized, principal)

            now = self.clock.now()
            entity = Entity(
                id=entity_id,
                kind=kind,
                name=leaf_name,
                metastore_id=metastore_id,
                parent_id=parent.id,
                owner=principal,
                created_at=now,
                updated_at=now,
                comment=comment,
                storage_path=entity_storage,
                properties=dict(properties or {}),
                spec=normalized,
            )
            ops = [WriteOp.put(Tables.ENTITIES, entity_id, entity.to_dict())]
            events = [
                (ChangeType.CREATED, entity_id, kind.value, name, {"owner": principal})
            ]
            return ops, entity, events

        with self._observed("create_securable"):
            entity = self._mutate(metastore_id, build)
        self._audit(metastore_id, principal, "create", name, True, kind=kind.value)
        return entity

    def _prepare_storage(
        self,
        view: MetastoreView,
        metastore_id: str,
        manifest,
        normalized: dict,
        storage_path: Optional[str],
        entity_id: str,
        parent: Entity,
        identities: frozenset[str],
        principal: str,
    ) -> Optional[str]:
        """Allocate managed storage or validate external storage."""
        kind = manifest.kind
        if not manifest.has_storage:
            if storage_path:
                raise InvalidRequestError(
                    f"{kind.value.lower()} does not take a storage path"
                )
            return None

        if kind is SecurableKind.TABLE:
            table_type = normalized.get("table_type")
            if table_type in _STORAGELESS_TABLE_TYPES:
                if storage_path:
                    raise InvalidRequestError(f"{table_type} tables have no storage")
                return None
            managed = table_type in ("MANAGED", "SHALLOW_CLONE")
        elif kind is SecurableKind.VOLUME:
            managed = normalized.get("volume_type") == "MANAGED"
        elif kind is SecurableKind.MODEL_VERSION:
            # artifacts live under the registered model's managed directory
            base = parent.storage_path
            if base is None:
                raise InvalidRequestError("parent model has no artifact storage")
            return StoragePath.parse(base).child(f"v{normalized['version']}").url()
        else:
            managed = True  # registered models, external locations handled below

        if kind is SecurableKind.EXTERNAL_LOCATION:
            if not storage_path:
                raise InvalidRequestError("external locations require a storage path")
            location_path = StoragePath.parse(storage_path)
            for other in view.entities(SecurableKind.EXTERNAL_LOCATION):
                if other.storage_path and StoragePath.parse(other.storage_path).overlaps(
                    location_path
                ):
                    raise PathConflictError(
                        f"location path overlaps external location {other.name!r}"
                    )
            credential_name = normalized.get("credential_name")
            credential = view.entity_by_name(
                metastore_id, "storage_credential", credential_name
            )
            if credential is None:
                raise NotFoundError(f"no such storage credential: {credential_name}")
            self.object_store.ensure_bucket(location_path.scheme, location_path.bucket)
            return location_path.url()

        if managed:
            if storage_path:
                raise InvalidRequestError("managed assets get catalog-allocated paths")
            allocated = self._managed_root.child(
                metastore_id, kind.value.lower() + "s", entity_id
            )
            return allocated.url()

        # external table/volume: path must be provided, free of overlaps,
        # and covered by an external location the caller may use.
        if not storage_path:
            raise InvalidRequestError(
                f"external {kind.value.lower()} requires a storage path"
            )
        path = StoragePath.parse(storage_path)
        overlapping = view.overlapping_assets(path)
        if overlapping:
            raise PathConflictError(
                f"path {path.url()} overlaps asset(s) {sorted(overlapping)}"
            )
        location = self._covering_location(view, path)
        if location is None:
            raise PermissionDeniedError(
                f"no external location covers {path.url()}"
            )
        needed = (
            Privilege.CREATE_TABLE
            if kind is SecurableKind.TABLE
            else Privilege.WRITE_FILES
        )
        if not (
            self.authorizer.is_owner_or_admin(view, location, identities)
            or self.authorizer.has_privilege(view, location, needed, identities)
        ):
            raise PermissionDeniedError(
                f"{principal!r} lacks {needed.value} on external location "
                f"{location.name!r}"
            )
        return path.url()

    @staticmethod
    def _covering_location(view: MetastoreView, path: StoragePath) -> Optional[Entity]:
        for location in view.entities(SecurableKind.EXTERNAL_LOCATION):
            if location.storage_path and StoragePath.parse(
                location.storage_path
            ).contains(path):
                return location
        return None

    def _validate_dependencies(
        self, view: MetastoreView, metastore_id: str, normalized: dict, principal: str
    ) -> None:
        """Views and shallow clones need resolvable, readable bases."""
        dependencies = list(normalized.get("view_dependencies") or ())
        base_table = normalized.get("base_table")
        if base_table:
            dependencies.append(base_table)
        identities = self.authorizer.identities(principal)
        for dependency in dependencies:
            base = self._resolve(view, metastore_id, SecurableKind.TABLE, dependency)
            decision = self.authorizer.authorize(view, base, "read_data", principal)
            if not decision.allowed:
                raise PermissionDeniedError(
                    f"creating requires SELECT on base table {dependency}: "
                    f"{decision.reason}"
                )

    def get_securable(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str
    ) -> Entity:
        with self._observed("get_securable"):
            view = self.view(metastore_id)
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(view, metastore_id, principal, entity,
                            "read_metadata", name)
            return entity

    def list_securables(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        parent_name: Optional[str] = None,
    ) -> list[Entity]:
        """List children of a container, filtered to what the caller may see."""
        with self._observed("list_securables"):
            view = self.view(metastore_id)
            manifest = self.registry.get(kind)
            if parent_name is None:
                parent_id = metastore_id
            else:
                parent_kind = manifest.parent_kind
                parent = self._resolve(view, metastore_id, parent_kind, parent_name)
                parent_id = parent.id
            children = view.children(parent_id, kind)
            identities = self.authorizer.identities(principal)
            cache = self._hot_caches_for(metastore_id, view)
            visible = [
                child for child in children
                if self.authorizer.visible(view, child, identities, cache)
            ]
            self._audit(metastore_id, principal, "list", parent_name or "<root>",
                        True, kind=kind.value, returned=len(visible))
            return sorted(visible, key=lambda e: e.name)

    def update_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        *,
        comment: Optional[str] = None,
        properties: Optional[dict[str, Any]] = None,
        spec_changes: Optional[dict[str, Any]] = None,
    ) -> Entity:
        manifest = self.registry.get(kind)

        def build(view: MetastoreView):
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(view, metastore_id, principal, entity, "update", name)
            changes: dict[str, Any] = {}
            if comment is not None:
                changes["comment"] = comment
            if properties is not None:
                merged = dict(entity.properties)
                merged.update(properties)
                changes["properties"] = merged
            if spec_changes:
                normalized = manifest.validate_update(dict(spec_changes))
                new_spec = dict(entity.spec)
                new_spec.update(normalized)
                changes["spec"] = new_spec
            if not changes:
                return [], entity, []
            updated = entity.with_updates(updated_at=self.clock.now(), **changes)
            ops = [WriteOp.put(Tables.ENTITIES, entity.id, updated.to_dict())]
            events = [(ChangeType.UPDATED, entity.id, kind.value, name, {})]
            return ops, updated, events

        with self._observed("update_securable"):
            return self._mutate(metastore_id, build)

    def rename_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        new_name: str,
    ) -> Entity:
        """Rename within the same parent (e.g. ALTER TABLE ... RENAME).

        The storage path is untouched: names are a catalog concept, the
        asset's data never moves (and path-based access keeps resolving
        to the same asset).
        """
        validate_identifier(new_name, what="new name")
        manifest = self.registry.get(kind)

        def build(view: MetastoreView):
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(view, metastore_id, principal, entity, "update",
                            name)
            if view.entity_by_name(entity.parent_id, manifest.namespace_group,
                                   new_name):
                raise AlreadyExistsError(
                    f"{kind.value.lower()} already exists: {new_name}"
                )
            renamed = entity.with_updates(updated_at=self.clock.now(),
                                          name=new_name)
            ops = [WriteOp.put(Tables.ENTITIES, entity.id, renamed.to_dict())]
            events = [(ChangeType.UPDATED, entity.id, kind.value, new_name,
                       {"renamed_from": name})]
            return ops, renamed, events

        with self._observed("rename_securable"):
            return self._mutate(metastore_id, build)

    def transfer_ownership(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        new_owner: str,
    ) -> Entity:
        self.directory.get(new_owner)

        def build(view: MetastoreView):
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(
                view, metastore_id, principal, entity, "transfer_ownership", name
            )
            updated = entity.with_updates(updated_at=self.clock.now(), owner=new_owner)
            ops = [WriteOp.put(Tables.ENTITIES, entity.id, updated.to_dict())]
            events = [
                (ChangeType.UPDATED, entity.id, kind.value, name,
                 {"new_owner": new_owner})
            ]
            return ops, updated, events

        return self._mutate(metastore_id, build)

    def delete_securable(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        *,
        cascade: bool = False,
    ) -> list[Entity]:
        """Soft-delete a securable (and, with ``cascade``, its children).

        Deletion propagates from parents to children (paper 4.2.1); the
        rows and managed storage remain until :meth:`purge_deleted` runs.
        """

        def build(view: MetastoreView):
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(view, metastore_id, principal, entity, "delete", name)
            doomed = self._collect_subtree(view, entity)
            if len(doomed) > 1 and not cascade:
                raise InvalidRequestError(
                    f"{name} has {len(doomed) - 1} child securable(s); "
                    "pass cascade=True"
                )
            now = self.clock.now()
            ops = []
            events = []
            deleted_entities = []
            for victim in doomed:
                marked = victim.soft_deleted(now)
                deleted_entities.append(marked)
                ops.append(WriteOp.put(Tables.ENTITIES, victim.id, marked.to_dict()))
                events.append(
                    (ChangeType.DELETED, victim.id, victim.kind.value,
                     view.full_name(victim), {})
                )
            return ops, deleted_entities, events

        with self._observed("delete_securable"):
            deleted = self._mutate(metastore_id, build)
        self._audit(metastore_id, principal, "delete", name, True,
                    cascade=cascade, count=len(deleted))
        return deleted

    def _collect_subtree(self, view: MetastoreView, root: Entity) -> list[Entity]:
        """The entity plus all transitive active children (parents first)."""
        out = [root]
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for child in view.children(current.id):
                out.append(child)
                frontier.append(child)
        return out

    # ------------------------------------------------------------------
    # lifecycle: garbage collection
    # ------------------------------------------------------------------

    def purge_deleted(
        self, metastore_id: str, older_than_seconds: float = 0.0
    ) -> GcReport:
        """Hard-delete soft-deleted entities and release their resources.

        Runs under the catalog's own authority (it owns managed storage).
        """
        report = GcReport()
        cutoff = self.clock.now() - older_than_seconds

        def build(view: MetastoreView):
            ops: list[WriteOp] = []
            events = []
            snapshot = self.store.snapshot(metastore_id)
            for key, value in snapshot.scan(Tables.ENTITIES):
                entity = Entity.from_dict(value)
                if entity.state is not EntityState.DELETED:
                    continue
                if entity.deleted_at is not None and entity.deleted_at > cutoff:
                    continue
                ops.append(WriteOp.delete(Tables.ENTITIES, entity.id))
                report.purged_entities += 1
                # drop grants on the purged securable
                for grant_key, grant_value in snapshot.scan(Tables.GRANTS):
                    if grant_value["securable_id"] == entity.id:
                        ops.append(WriteOp.delete(Tables.GRANTS, grant_key))
                        report.purged_grants += 1
                # drop tags and per-table policies
                if snapshot.get(Tables.TAGS, entity.id) is not None:
                    ops.append(WriteOp.delete(Tables.TAGS, entity.id))
                for policy_key, policy_value in snapshot.scan(Tables.POLICIES):
                    if policy_value.get("securable_id") == entity.id or (
                        policy_value.get("scope_id") == entity.id
                    ):
                        ops.append(WriteOp.delete(Tables.POLICIES, policy_key))
                # release managed storage
                if entity.storage_path and self._is_managed_path(entity.storage_path):
                    path = StoragePath.parse(entity.storage_path)
                    report.deleted_objects += self.object_store.delete_prefix(path)
                events.append(
                    (ChangeType.PURGED, entity.id, entity.kind.value, entity.name, {})
                )
            return ops, report, events

        result = self._mutate(metastore_id, build)
        self._audit(metastore_id, SYSTEM_PRINCIPAL, "purge_deleted", "<gc>", True,
                    purged=result.purged_entities)
        return result

    def _is_managed_path(self, url: str) -> bool:
        return self._managed_root.contains(StoragePath.parse(url))

    # ------------------------------------------------------------------
    # grants
    # ------------------------------------------------------------------

    def grant(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        grantee: str,
        privilege: Privilege,
    ) -> PrivilegeGrant:
        manifest = self.registry.get(kind)
        if not manifest.supports_privilege(privilege):
            raise InvalidRequestError(
                f"{privilege.value} is not grantable on {kind.value.lower()}s"
            )
        self.directory.get(grantee)

        def build(view: MetastoreView):
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(view, metastore_id, principal, entity, "grant", name)
            grant = PrivilegeGrant(
                securable_id=entity.id,
                principal=grantee,
                privilege=privilege,
                granted_by=principal,
                granted_at=self.clock.now(),
            )
            ops = [WriteOp.put(Tables.GRANTS, grant.key, grant.to_dict())]
            events = [
                (ChangeType.GRANT_CHANGED, entity.id, kind.value, name,
                 {"grantee": grantee, "privilege": privilege.value, "action": "grant"})
            ]
            return ops, grant, events

        with self._observed("grant"):
            return self._mutate(metastore_id, build)

    def revoke(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        grantee: str,
        privilege: Privilege,
    ) -> None:
        def build(view: MetastoreView):
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(view, metastore_id, principal, entity, "grant", name)
            key = f"{entity.id}/{grantee}/{privilege.value}"
            if view.row(Tables.GRANTS, key) is None:
                raise NotFoundError(
                    f"no grant of {privilege.value} to {grantee} on {name}"
                )
            ops = [WriteOp.delete(Tables.GRANTS, key)]
            events = [
                (ChangeType.GRANT_CHANGED, entity.id, kind.value, name,
                 {"grantee": grantee, "privilege": privilege.value,
                  "action": "revoke"})
            ]
            return ops, None, events

        with self._observed("revoke"):
            self._mutate(metastore_id, build)

    def grants_on(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str
    ) -> list[PrivilegeGrant]:
        view = self.view(metastore_id)
        entity = self._resolve(view, metastore_id, kind, name)
        self._authorize(view, metastore_id, principal, entity, "read_metadata", name)
        return view.grants_on(entity.id)

    def has_privilege(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        privilege: Privilege,
    ) -> bool:
        """The authorization API exposed to second-tier/discovery services."""
        with self._observed("has_privilege"):
            view = self.view(metastore_id)
            entity = self._resolve(view, metastore_id, kind, name)
            identities = self.authorizer.identities(principal)
            if self.authorizer.is_direct_owner_or_admin(view, entity, identities):
                return True
            cache = self._hot_caches_for(metastore_id, view)
            return self.authorizer.has_privilege(
                view, entity, privilege, identities, cache
            )

    # ------------------------------------------------------------------
    # tags
    # ------------------------------------------------------------------

    def set_tag(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        key: str,
        value: str,
    ) -> None:
        self._update_tags(metastore_id, principal, kind, name,
                          lambda tags: tags["tags"].__setitem__(key, value))

    def unset_tag(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str,
        key: str,
    ) -> None:
        self._update_tags(metastore_id, principal, kind, name,
                          lambda tags: tags["tags"].pop(key, None))

    def set_column_tag(
        self,
        metastore_id: str,
        principal: str,
        table_name: str,
        column: str,
        key: str,
        value: str,
    ) -> None:
        def mutate(tags: dict) -> None:
            tags["column_tags"].setdefault(column, {})[key] = value

        self._update_tags(metastore_id, principal, SecurableKind.TABLE, table_name,
                          mutate, column=column)

    def _update_tags(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        mutator: Callable[[dict], None],
        column: Optional[str] = None,
    ) -> None:
        def build(view: MetastoreView):
            entity = self._resolve(view, metastore_id, kind, name)
            self._authorize(view, metastore_id, principal, entity, "apply_tag", name)
            if column is not None:
                columns = {c["name"] for c in entity.spec.get("columns") or ()}
                if column not in columns:
                    raise NotFoundError(f"no such column: {column} in {name}")
            existing = view.row(Tables.TAGS, entity.id) or {}
            tags = {
                "tags": dict(existing.get("tags", {})),
                "column_tags": {
                    c: dict(t) for c, t in existing.get("column_tags", {}).items()
                },
            }
            mutator(tags)
            ops = [WriteOp.put(Tables.TAGS, entity.id, tags)]
            events = [(ChangeType.TAG_CHANGED, entity.id, kind.value, name, {})]
            return ops, None, events

        self._mutate(metastore_id, build)

    def tags_of(
        self, metastore_id: str, principal: str, kind: SecurableKind, name: str
    ) -> dict[str, str]:
        view = self.view(metastore_id)
        entity = self._resolve(view, metastore_id, kind, name)
        self._authorize(view, metastore_id, principal, entity, "read_metadata", name)
        return self.authorizer.tags_of(view, entity.id)

    # ------------------------------------------------------------------
    # FGAC and ABAC policies
    # ------------------------------------------------------------------

    def set_row_filter(
        self,
        metastore_id: str,
        principal: str,
        table_name: str,
        filter_name: str,
        predicate_sql: str,
        exempt_principals: tuple[str, ...] = (),
    ) -> RowFilter:
        def build(view: MetastoreView):
            table = self._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
            self._authorize(
                view, metastore_id, principal, table, "manage_policies", table_name
            )
            row_filter = RowFilter(
                securable_id=table.id,
                name=filter_name,
                predicate_sql=predicate_sql,
                exempt_principals=frozenset(exempt_principals),
            )
            ops = [WriteOp.put(Tables.POLICIES, row_filter.key, row_filter.to_dict())]
            events = [
                (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
                 {"policy": "row_filter", "name": filter_name})
            ]
            return ops, row_filter, events

        return self._mutate(metastore_id, build)

    def drop_row_filter(
        self, metastore_id: str, principal: str, table_name: str, filter_name: str
    ) -> None:
        def build(view: MetastoreView):
            table = self._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
            self._authorize(
                view, metastore_id, principal, table, "manage_policies", table_name
            )
            key = f"rowfilter/{table.id}/{filter_name}"
            if view.row(Tables.POLICIES, key) is None:
                raise NotFoundError(f"no row filter {filter_name!r} on {table_name}")
            ops = [WriteOp.delete(Tables.POLICIES, key)]
            events = [
                (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
                 {"policy": "row_filter", "name": filter_name, "dropped": True})
            ]
            return ops, None, events

        self._mutate(metastore_id, build)

    def set_column_mask(
        self,
        metastore_id: str,
        principal: str,
        table_name: str,
        column: str,
        mask_sql: str,
        exempt_principals: tuple[str, ...] = (),
    ) -> ColumnMask:
        def build(view: MetastoreView):
            table = self._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
            self._authorize(
                view, metastore_id, principal, table, "manage_policies", table_name
            )
            columns = {c["name"] for c in table.spec.get("columns") or ()}
            if column not in columns:
                raise NotFoundError(f"no such column: {column} in {table_name}")
            mask = ColumnMask(
                securable_id=table.id,
                column=column,
                mask_sql=mask_sql,
                exempt_principals=frozenset(exempt_principals),
            )
            ops = [WriteOp.put(Tables.POLICIES, mask.key, mask.to_dict())]
            events = [
                (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
                 {"policy": "column_mask", "column": column})
            ]
            return ops, mask, events

        return self._mutate(metastore_id, build)

    def drop_column_mask(
        self, metastore_id: str, principal: str, table_name: str, column: str
    ) -> None:
        def build(view: MetastoreView):
            table = self._resolve(view, metastore_id, SecurableKind.TABLE, table_name)
            self._authorize(
                view, metastore_id, principal, table, "manage_policies", table_name
            )
            key = f"columnmask/{table.id}/{column}"
            if view.row(Tables.POLICIES, key) is None:
                raise NotFoundError(f"no column mask on {table_name}.{column}")
            ops = [WriteOp.delete(Tables.POLICIES, key)]
            events = [
                (ChangeType.POLICY_CHANGED, table.id, "TABLE", table_name,
                 {"policy": "column_mask", "column": column, "dropped": True})
            ]
            return ops, None, events

        self._mutate(metastore_id, build)

    def create_abac_policy(
        self,
        metastore_id: str,
        principal: str,
        *,
        name: str,
        scope_kind: SecurableKind,
        scope_name: Optional[str],
        condition: TagCondition,
        effect: AbacEffect,
        privilege: Optional[Privilege] = None,
        mask_sql: Optional[str] = None,
        predicate_sql: Optional[str] = None,
        principals: tuple[str, ...] = (),
        exempt_principals: tuple[str, ...] = (),
    ) -> AbacPolicy:
        """Define an ABAC policy at metastore/catalog/schema scope."""

        def build(view: MetastoreView):
            if scope_kind is SecurableKind.METASTORE:
                scope = view.entity_by_id(metastore_id)
            else:
                scope = self._resolve(view, metastore_id, scope_kind, scope_name)
            self._authorize(
                view, metastore_id, principal, scope, "manage_policies",
                scope_name or "<metastore>",
            )
            policy = AbacPolicy(
                policy_id=new_entity_id(),
                name=name,
                scope_id=scope.id,
                condition=condition,
                effect=effect,
                privilege=privilege,
                mask_sql=mask_sql,
                predicate_sql=predicate_sql,
                principals=frozenset(principals),
                exempt_principals=frozenset(exempt_principals),
            )
            ops = [WriteOp.put(Tables.POLICIES, policy.key, policy.to_dict())]
            events = [
                (ChangeType.POLICY_CHANGED, scope.id, scope_kind.value,
                 scope_name or "<metastore>", {"policy": "abac", "name": name})
            ]
            return ops, policy, events

        return self._mutate(metastore_id, build)

    def drop_abac_policy(self, metastore_id: str, principal: str, policy_id: str) -> None:
        def build(view: MetastoreView):
            key = f"abac/{policy_id}"
            value = view.row(Tables.POLICIES, key)
            if value is None:
                raise NotFoundError(f"no such ABAC policy: {policy_id}")
            scope = view.entity_by_id(value["scope_id"])
            if scope is None:
                scope = view.entity_by_id(metastore_id)
            self._authorize(
                view, metastore_id, principal, scope, "manage_policies", scope.name
            )
            ops = [WriteOp.delete(Tables.POLICIES, key)]
            events = [
                (ChangeType.POLICY_CHANGED, scope.id, scope.kind.value, scope.name,
                 {"policy": "abac", "dropped": True})
            ]
            return ops, None, events

        self._mutate(metastore_id, build)

    # ------------------------------------------------------------------
    # credential vending and path-based access (section 4.3.1)
    # ------------------------------------------------------------------

    def vend_credentials(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        name: str,
        level: AccessLevel,
    ) -> TemporaryCredential:
        """Name-based access: authorize, then mint a downscoped token."""
        with self._observed("vend_credentials"):
            view = self.view(metastore_id)
            entity = self._resolve(view, metastore_id, kind, name)
            return self._vend(view, metastore_id, principal, entity, name, level)

    def access_by_path(
        self,
        metastore_id: str,
        principal: str,
        url: str,
        level: AccessLevel,
    ) -> tuple[Entity, TemporaryCredential]:
        """Path-based access: resolve the governing asset first, then apply
        exactly the same policy as name-based access — the paper's uniform
        access control guarantee."""
        with self._observed("access_by_path"):
            view = self.view(metastore_id)
            path = StoragePath.parse(url)
            entity = view.resolve_path(path)
            if entity is None:
                self._audit(metastore_id, principal, "access_by_path", url, False,
                            reason="no asset governs this path")
                raise PermissionDeniedError(f"no catalog asset governs {url}")
            credential = self._vend(
                view, metastore_id, principal, entity, view.full_name(entity), level
            )
            return entity, credential

    def _vend(
        self,
        view: MetastoreView,
        metastore_id: str,
        principal: str,
        entity: Entity,
        name: str,
        level: AccessLevel,
    ) -> TemporaryCredential:
        operation = "read_data" if level is AccessLevel.READ else "write_data"
        self._authorize(view, metastore_id, principal, entity, operation, name)
        # FGAC-protected tables may only be read through trusted engines
        if entity.kind is SecurableKind.TABLE:
            rules = self.authorizer.fgac_rules_for(
                view, entity, principal, self._hot_caches_for(metastore_id, view)
            )
            if not rules.is_empty and not self.directory.is_trusted_engine(principal):
                self._audit(metastore_id, principal, "vend_credentials", name, False,
                            reason="FGAC requires a trusted engine")
                raise UntrustedEngineError(
                    f"table {name} has fine-grained policies; direct storage "
                    "access is restricted to trusted engines"
                )
        credential = self.vendor.vend(view, entity, level)
        self._audit(metastore_id, principal, "vend_credentials", name, True,
                    level=level.value)
        return credential

    # ------------------------------------------------------------------
    # workspace bindings (section 3.2)
    # ------------------------------------------------------------------

    def check_workspace_binding(
        self, metastore_id: str, entity: Entity, workspace: Optional[str]
    ) -> None:
        """Enforce catalog→workspace bindings.

        "Administrators can define 'bindings' to restrict a catalog's
        access to specific Databricks workspaces." A catalog without
        bindings is reachable from every workspace; a bound catalog only
        from the listed ones.
        """
        if workspace is None:
            return
        view = self.view(metastore_id)
        current: Optional[Entity] = entity
        while current is not None:
            if current.kind is SecurableKind.CATALOG:
                bindings = current.spec.get("workspace_bindings")
                if bindings and workspace not in bindings:
                    raise PermissionDeniedError(
                        f"catalog {current.name!r} is not bound to "
                        f"workspace {workspace!r}"
                    )
                return
            current = (
                view.entity_by_id(current.parent_id)
                if current.parent_id else None
            )

    # ------------------------------------------------------------------
    # information schema (section 4.2.2: metadata query API with
    # filter pushdown)
    # ------------------------------------------------------------------

    def query_information_schema(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        *,
        catalog: Optional[str] = None,
        schema: Optional[str] = None,
        where: tuple[tuple[str, str, Any], ...] = (),
        limit: Optional[int] = None,
    ) -> list[dict[str, Any]]:
        """Relational view over catalog metadata, with pushdown.

        ``where`` is a conjunction of ``(attribute, op, literal)`` with op
        in ``= != < <= > >=``; attributes are the returned column names.
        Results are filtered to what the caller may see, like any listing.
        """
        with self._observed("query_information_schema"):
            return self._query_information_schema(
                metastore_id, principal, kind,
                catalog=catalog, schema=schema, where=where, limit=limit,
            )

    def _query_information_schema(
        self,
        metastore_id: str,
        principal: str,
        kind: SecurableKind,
        *,
        catalog: Optional[str] = None,
        schema: Optional[str] = None,
        where: tuple[tuple[str, str, Any], ...] = (),
        limit: Optional[int] = None,
    ) -> list[dict[str, Any]]:
        view = self.view(metastore_id)
        rows: list[dict[str, Any]] = []
        identities = self.authorizer.identities(principal)
        cache = self._hot_caches_for(metastore_id, view)
        operators: dict[str, Callable[[Any, Any], bool]] = {
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a is not None and a < b,
            "<=": lambda a, b: a is not None and a <= b,
            ">": lambda a, b: a is not None and a > b,
            ">=": lambda a, b: a is not None and a >= b,
        }
        for entity in view.entities(kind):
            full_name = view.full_name(entity)
            segments = full_name.split(".")
            row = {
                "name": entity.name,
                "full_name": full_name,
                "catalog_name": segments[0] if len(segments) > 1 else None,
                "schema_name": segments[1] if len(segments) > 2 else None,
                "kind": entity.kind.value,
                "owner": entity.owner,
                "comment": entity.comment,
                "created_at": entity.created_at,
                "updated_at": entity.updated_at,
                "storage_path": entity.storage_path,
                "table_type": entity.spec.get("table_type"),
                "format": entity.spec.get("format"),
            }
            if catalog is not None and row["catalog_name"] != catalog:
                continue
            if schema is not None and row["schema_name"] != schema:
                continue
            matched = True
            for attribute, op, literal in where:
                if op not in operators:
                    raise InvalidRequestError(f"unsupported operator {op!r}")
                if attribute not in row:
                    raise InvalidRequestError(
                        f"unknown information_schema column {attribute!r}"
                    )
                if not operators[op](row[attribute], literal):
                    matched = False
                    break
            if not matched:
                continue
            if not self.authorizer.visible(view, entity, identities, cache):
                continue
            rows.append(row)
            if limit is not None and len(rows) >= limit:
                break
        self._audit(metastore_id, principal, "information_schema",
                    kind.value, True, returned=len(rows))
        return sorted(rows, key=lambda r: r["full_name"])

    # ------------------------------------------------------------------
    # batched query resolution (sections 3.4, 4.5)
    # ------------------------------------------------------------------

    def resolve_for_query(
        self,
        metastore_id: str,
        principal: str,
        table_names: list[str],
        *,
        write_tables: tuple[str, ...] = (),
        function_names: tuple[str, ...] = (),
        include_credentials: bool = True,
        engine_trusted: Optional[bool] = None,
        workspace: Optional[str] = None,
    ):
        """One batched API call returning the full metadata closure for a
        query (see :mod:`repro.core.service.batch`)."""
        from repro.core.service.batch import QueryResolver

        with self._observed("resolve_for_query"):
            return QueryResolver(self).resolve(
                metastore_id,
                principal,
                table_names,
                write_tables=write_tables,
                function_names=function_names,
                include_credentials=include_credentials,
                engine_trusted=engine_trusted,
                workspace=workspace,
            )

    # ------------------------------------------------------------------
    # discovery authorization API (section 4.4)
    # ------------------------------------------------------------------

    def filter_visible_entities(
        self, metastore_id: str, principal: str, entities: list[Entity]
    ) -> list[Entity]:
        view = self.view(metastore_id)
        cache = self._hot_caches_for(metastore_id, view)
        return self.authorizer.filter_visible(view, entities, principal, cache)

    # ------------------------------------------------------------------
    # lineage API (section 4.4)
    # ------------------------------------------------------------------

    def record_lineage(
        self,
        metastore_id: str,
        principal: str,
        sources: list[str],
        target: str,
        operation: str,
        columns: tuple[str, ...] = (),
    ) -> None:
        """Engines submit lineage during query processing."""
        self.lineage.record(
            metastore_id, principal, sources, target, operation,
            self.clock.now(), columns,
        )
        self._audit(metastore_id, principal, "record_lineage", target, True,
                    sources=len(sources), operation=operation)

    def lineage_downstream(
        self, metastore_id: str, principal: str, asset: str
    ) -> set[str]:
        """Downstream closure, filtered to assets the caller may see."""
        closure = self.lineage.downstream(metastore_id, asset)
        return self._filter_lineage_names(metastore_id, principal, closure)

    def lineage_upstream(
        self, metastore_id: str, principal: str, asset: str
    ) -> set[str]:
        closure = self.lineage.upstream(metastore_id, asset)
        return self._filter_lineage_names(metastore_id, principal, closure)

    def _filter_lineage_names(
        self, metastore_id: str, principal: str, names: set[str]
    ) -> set[str]:
        view = self.view(metastore_id)
        identities = self.authorizer.identities(principal)
        cache = self._hot_caches_for(metastore_id, view)
        visible = set()
        for name in names:
            try:
                entity = self._resolve(view, metastore_id, SecurableKind.TABLE, name)
            except NotFoundError:
                continue
            if self.authorizer.visible(view, entity, identities, cache):
                visible.add(name)
        return visible
