"""Storage-path governance: the one-asset-per-path principle.

The paper (sections 1, 4.2.1) requires that no two assets in a metastore
have overlapping storage paths, so that any cloud path resolves to at most
one asset and access-control decisions are unambiguous. This module
implements the URL-trie index the production system uses for "finding
assets with storage paths overlapping with a given path" (section 5) and
for resolving a path-based access request to its governing asset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cloudstore.object_store import StoragePath
from repro.core.model.entity import SecurableKind
from repro.errors import NotFoundError, PathConflictError

#: Kinds whose storage paths participate in the one-asset-per-path trie.
#: External locations are *containers* of asset paths (assets are created
#: inside them), and model versions live under their registered model's
#: path — so neither registers its own trie entry; path-based access to
#: either resolves to the governing asset instead.
PATH_GOVERNED_KINDS = frozenset(
    {SecurableKind.TABLE, SecurableKind.VOLUME, SecurableKind.REGISTERED_MODEL}
)


@dataclass
class _TrieNode:
    children: dict[str, "_TrieNode"] = field(default_factory=dict)
    #: asset id registered exactly at this node, if any
    asset_id: Optional[str] = None

    def has_descendant_assets(self) -> bool:
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            if node.asset_id is not None:
                return True
            stack.extend(node.children.values())
        return False

    def descendant_assets(self) -> list[str]:
        found = []
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            if node.asset_id is not None:
                found.append(node.asset_id)
            stack.extend(node.children.values())
        return found


def _segments(path: StoragePath) -> list[str]:
    head = [f"{path.scheme}://{path.bucket}"]
    if path.key:
        head.extend(path.key.split("/"))
    return head


class PathTrie:
    """Maps registered storage paths to asset ids, rejecting overlaps.

    One trie exists per metastore (the invariant is metastore-scoped).
    """

    def __init__(self):
        self._root = _TrieNode()
        self._paths: dict[str, StoragePath] = {}  # asset id -> registered path

    def __len__(self) -> int:
        return len(self._paths)

    def register(self, path: StoragePath, asset_id: str) -> None:
        """Register ``path`` for ``asset_id``.

        Raises :class:`PathConflictError` if the path equals, contains, or
        is contained by any already-registered path — the
        one-asset-per-path invariant.
        """
        conflict = self.find_overlapping(path)
        if conflict:
            raise PathConflictError(
                f"path {path.url()} overlaps asset(s) {sorted(conflict)}"
            )
        node = self._root
        for segment in _segments(path):
            node = node.children.setdefault(segment, _TrieNode())
        node.asset_id = asset_id
        self._paths[asset_id] = path

    def unregister(self, asset_id: str) -> None:
        """Remove an asset's registration (asset deleted or path changed)."""
        path = self._paths.pop(asset_id, None)
        if path is None:
            raise NotFoundError(f"no path registered for asset {asset_id}")
        parents: list[tuple[_TrieNode, str]] = []
        node = self._root
        for segment in _segments(path):
            parents.append((node, segment))
            node = node.children[segment]
        node.asset_id = None
        # prune now-empty chains
        for parent, segment in reversed(parents):
            child = parent.children[segment]
            if child.asset_id is None and not child.children:
                del parent.children[segment]
            else:
                break

    def path_of(self, asset_id: str) -> Optional[StoragePath]:
        return self._paths.get(asset_id)

    def resolve(self, path: StoragePath) -> Optional[str]:
        """The asset governing ``path``: the registered path that equals or
        contains it. At most one can exist, by the invariant."""
        node = self._root
        best: Optional[str] = None
        for segment in _segments(path):
            node = node.children.get(segment)
            if node is None:
                break
            if node.asset_id is not None:
                best = node.asset_id
        return best

    def find_overlapping(self, path: StoragePath) -> list[str]:
        """All asset ids whose registered paths overlap ``path``.

        Overlap means equality or containment in either direction. Used at
        asset-creation time; on a healthy trie the result has length <= 1
        for the ancestor direction but may list several descendants when
        probing a broad prefix.
        """
        found: list[str] = []
        node = self._root
        walked_all = True
        for segment in _segments(path):
            child = node.children.get(segment)
            if child is None:
                walked_all = False
                break
            node = child
            if node.asset_id is not None:
                found.append(node.asset_id)
        if walked_all:
            # ``path`` is a prefix of deeper registrations
            for asset_id in node.descendant_assets():
                if asset_id not in found:
                    found.append(asset_id)
        return found

    def all_registrations(self) -> dict[str, StoragePath]:
        return dict(self._paths)
