"""Audit logging (paper section 4.2.1).

"The Unity Catalog service maintains an audit trail for API requests,
object life cycle changes, access control decisions and other important
events for all asset types."

Every service-level API call appends exactly one record, including denied
requests — auditing denials is part of what distinguishes catalog-level
governance from raw cloud-storage ACLs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class AuditRecord:
    """One audited event."""

    sequence: int
    timestamp: float
    metastore_id: str
    principal: str
    action: str
    securable: str
    allowed: bool
    details: dict[str, Any] = field(default_factory=dict)


class AuditLog:
    """An append-only audit trail with simple filtered reads."""

    def __init__(self, max_records: Optional[int] = None):
        self._lock = threading.RLock()
        self._records: list[AuditRecord] = []
        self._sequence = 0
        self._max_records = max_records

    def record(
        self,
        timestamp: float,
        metastore_id: str,
        principal: str,
        action: str,
        securable: str,
        allowed: bool,
        details: Optional[dict[str, Any]] = None,
    ) -> AuditRecord:
        with self._lock:
            record = AuditRecord(
                sequence=self._sequence,
                timestamp=timestamp,
                metastore_id=metastore_id,
                principal=principal,
                action=action,
                securable=securable,
                allowed=allowed,
                details=dict(details or {}),
            )
            self._sequence += 1
            self._records.append(record)
            if self._max_records is not None and len(self._records) > self._max_records:
                # drop oldest; sequence numbers stay stable
                overflow = len(self._records) - self._max_records
                del self._records[:overflow]
            return record

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def query(
        self,
        *,
        principal: Optional[str] = None,
        action: Optional[str] = None,
        securable: Optional[str] = None,
        allowed: Optional[bool] = None,
        predicate: Optional[Callable[[AuditRecord], bool]] = None,
    ) -> list[AuditRecord]:
        """Filtered scan over the retained trail."""
        with self._lock:
            records = list(self._records)
        out = []
        for record in records:
            if principal is not None and record.principal != principal:
                continue
            if action is not None and record.action != action:
                continue
            if securable is not None and record.securable != securable:
                continue
            if allowed is not None and record.allowed != allowed:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def tail(self, n: int = 20) -> list[AuditRecord]:
        with self._lock:
            return list(self._records[-n:])

    def __iter__(self) -> Iterator[AuditRecord]:
        with self._lock:
            return iter(list(self._records))
