"""Multi-table, multi-statement transactions (paper section 6.3).

"While ACID table formats like Delta Lake support single-table
transactions by relying on storage layer atomic operations, extending
this to multi-table and multi-statement transactions is more complex ...
As the centralized metadata store, UC plays a critical role in enabling
such transactions via ... Catalog-owned Delta tables."

Protocol implemented here:

* a *catalog-owned* table's authoritative version pointer lives in the
  catalog's ``commits`` table, not in the storage log listing;
* a transaction records the version of every table it reads (snapshot),
  stages its writes as data files (invisible until a log entry references
  them), and at commit time performs **one** catalog metastore commit
  that CAS-checks every participant's version pointer and advances them
  all together — atomicity and serializability across tables come from
  the metastore-version CAS of section 4.5;
* after the catalog commit succeeds, the log entries are written out;
  version slots were allocated by the catalog, so those writes cannot
  race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.cloudstore.client import StorageClient
from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel
from repro.core.events import ChangeType
from repro.core.model.entity import Entity, SecurableKind
from repro.core.persistence.store import Tables, WriteOp
from repro.deltalog.actions import Action, CommitInfo, RemoveFile
from repro.deltalog.files import write_data_file
from repro.deltalog.log import DeltaLog
from repro.errors import (
    InvalidRequestError,
    TransactionConflictError,
)


@dataclass
class _Participant:
    """One table enlisted in the transaction."""

    full_name: str
    entity: Entity
    log: DeltaLog
    client: StorageClient
    root: StoragePath
    read_version: int
    level: AccessLevel
    staged_actions: list[Action] = field(default_factory=list)
    is_written: bool = False


class MultiTableTransaction:
    """One ACID transaction spanning catalog-owned tables."""

    def __init__(self, coordinator: "TransactionCoordinator", principal: str):
        self._coordinator = coordinator
        self._principal = principal
        self._participants: dict[str, _Participant] = {}
        self._state = "OPEN"

    # -- enlistment --------------------------------------------------------

    def _require_open(self) -> None:
        if self._state != "OPEN":
            raise InvalidRequestError(f"transaction is {self._state}")

    def _enlist(self, table_name: str, for_write: bool) -> _Participant:
        participant = self._participants.get(table_name)
        if participant is None:
            participant = self._coordinator._enlist(self._principal, table_name,
                                                    for_write)
            self._participants[table_name] = participant
        if for_write:
            if participant.level is AccessLevel.READ:
                # read-enlisted first, now written: authorize the write and
                # upgrade the storage credential
                self._coordinator._upgrade_to_write(self._principal, participant)
            participant.is_written = True
        return participant

    # -- statements ---------------------------------------------------------------

    def read(self, table_name: str, filters=None) -> list[dict]:
        """Snapshot read: pinned at the version this transaction first saw."""
        self._require_open()
        participant = self._enlist(table_name, for_write=False)
        from repro.deltalog.table import DeltaTable

        table = DeltaTable(participant.client, participant.root,
                           clock=self._coordinator._service.clock)
        if participant.read_version < 0:
            return []
        snapshot_rows = list(
            table.scan(filters, version=participant.read_version)
        )
        return snapshot_rows

    def append(self, table_name: str, rows: list[dict]) -> None:
        """Stage an append: files written now, published at commit."""
        self._require_open()
        if not rows:
            raise InvalidRequestError("nothing to append")
        participant = self._enlist(table_name, for_write=True)
        add = write_data_file(participant.client, participant.root, rows)
        participant.staged_actions.append(add)

    def overwrite(self, table_name: str, rows: list[dict]) -> None:
        """Stage a full replacement of the table's content."""
        self._require_open()
        participant = self._enlist(table_name, for_write=True)
        now = self._coordinator._service.clock.now()
        if participant.read_version >= 0:
            snapshot = participant.log.snapshot(participant.read_version)
            for path in snapshot.active_files:
                participant.staged_actions.append(
                    RemoveFile(path=path, deletion_timestamp=now)
                )
        if rows:
            participant.staged_actions.append(
                write_data_file(participant.client, participant.root, rows)
            )

    # -- outcome ---------------------------------------------------------------------

    def commit(self) -> dict[str, int]:
        """Atomically publish all staged writes; returns the new version of
        every written table. Raises TransactionConflictError if any
        participant moved since this transaction read it."""
        self._require_open()
        result = self._coordinator._commit(self._principal, self._participants)
        self._state = "COMMITTED"
        return result

    def rollback(self) -> None:
        """Abandon staged writes (orphaned files await VACUUM)."""
        self._require_open()
        self._state = "ROLLED_BACK"


class TransactionCoordinator:
    """The catalog-side arbiter for catalog-owned table commits."""

    def __init__(self, service, metastore_id: str):
        self._service = service
        self._metastore_id = metastore_id

    def begin(self, principal: str) -> MultiTableTransaction:
        return MultiTableTransaction(self, principal)

    # -- version pointers ---------------------------------------------------------

    def table_version(self, table_id: str) -> int:
        """The catalog-owned version pointer (-1 = no commits yet)."""
        view = self._service.view(self._metastore_id)
        row = view.row(Tables.COMMITS, table_id)
        return row["version"] if row else -1

    def _enlist(self, principal: str, table_name: str, for_write: bool) -> _Participant:
        service = self._service
        view = service.view(self._metastore_id)
        entity = service._resolve(view, self._metastore_id, SecurableKind.TABLE,
                                  table_name)
        if not entity.spec.get("catalog_owned"):
            raise InvalidRequestError(
                f"{table_name} is not catalog-owned; multi-table transactions "
                "require catalog-owned tables"
            )
        operation = "write_data" if for_write else "read_data"
        service._authorize(view, self._metastore_id, principal, entity,
                           operation, table_name)
        level = AccessLevel.READ_WRITE if for_write else AccessLevel.READ
        credential = service.vendor.vend(view, entity, level)
        client = service.governed_client(credential)
        root = StoragePath.parse(entity.storage_path)
        row = view.row(Tables.COMMITS, entity.id)
        read_version = row["version"] if row else DeltaLog(client, root).latest_version()
        return _Participant(
            full_name=table_name,
            entity=entity,
            log=DeltaLog(client, root),
            client=client,
            root=root,
            read_version=read_version,
            level=level,
        )

    def _upgrade_to_write(self, principal: str, participant: _Participant) -> None:
        """Re-authorize and swap in a READ_WRITE credential."""
        service = self._service
        view = service.view(self._metastore_id)
        service._authorize(view, self._metastore_id, principal,
                           participant.entity, "write_data",
                           participant.full_name)
        credential = service.vendor.vend(view, participant.entity,
                                         AccessLevel.READ_WRITE)
        participant.client.refresh(credential)
        participant.level = AccessLevel.READ_WRITE

    def _commit(
        self, principal: str, participants: dict[str, _Participant]
    ) -> dict[str, int]:
        service = self._service
        written = {
            name: p for name, p in participants.items() if p.is_written
        }
        if not written:
            return {}

        new_versions: dict[str, int] = {}

        def build(view):
            ops = []
            events = []
            new_versions.clear()
            for name, participant in participants.items():
                row = view.row(Tables.COMMITS, participant.entity.id)
                current = row["version"] if row else participant.log.latest_version()
                if current != participant.read_version:
                    raise TransactionConflictError(
                        f"table {name} moved from version "
                        f"{participant.read_version} to {current}"
                    )
            for name, participant in written.items():
                new_version = participant.read_version + 1
                new_versions[name] = new_version
                ops.append(
                    WriteOp.put(
                        Tables.COMMITS,
                        participant.entity.id,
                        {"version": new_version, "committed_by": principal},
                    )
                )
                events.append(
                    (ChangeType.COMMIT, participant.entity.id, "TABLE", name,
                     {"version": new_version})
                )
            return ops, dict(new_versions), events

        result = service._mutate(self._metastore_id, build)

        # catalog commit succeeded: publish the log entries in the slots
        # the catalog allocated (no other writer can hold these slots)
        now = service.clock.now()
        for name, participant in written.items():
            actions = list(participant.staged_actions)
            actions.append(
                CommitInfo(
                    operation="TXN COMMIT",
                    timestamp=now,
                    engine="txn-coordinator",
                    details={"tables": sorted(written)},
                )
            )
            participant.log.commit(result[name], actions)
        service._audit(
            self._metastore_id, principal, "multi_table_commit",
            ",".join(sorted(written)), True, tables=len(written),
        )
        return result
