"""Read views over one metastore's metadata.

Both the uncached (snapshot-scanning) and cached (indexed) read paths
expose the same :class:`MetastoreView` interface, so the service, the
authorizer, and the batch resolver are oblivious to whether a request is
served from the write-through cache or straight from the backing store —
the paper's layering, where "caching [is] fully implemented within the
persistence layer, as long as consistency guarantees are maintained".
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

from repro.cloudstore.object_store import StoragePath
from repro.core.auth.privileges import PrivilegeGrant
from repro.core.model.entity import Entity, SecurableKind
from repro.core.paths import PATH_GOVERNED_KINDS, PathTrie
from repro.core.persistence.store import Snapshot, Tables


class MetastoreView(abc.ABC):
    """A consistent read view over one metastore at a known version."""

    #: branch key (``catalog@branch``) when the view reads a branch's
    #: overlay; None on the trunk. Set by the kernel's view constructor.
    branch: Optional[str] = None

    @property
    @abc.abstractmethod
    def version(self) -> int:
        """The metastore version this view observes."""

    @abc.abstractmethod
    def entity_by_id(self, entity_id: str) -> Optional[Entity]:
        """Look up an active entity by id."""

    @abc.abstractmethod
    def entity_by_name(
        self, parent_id: Optional[str], namespace_group: str, name: str
    ) -> Optional[Entity]:
        """Look up an active entity by (parent, namespace group, name)."""

    @abc.abstractmethod
    def children(
        self, parent_id: str, kind: Optional[SecurableKind] = None
    ) -> list[Entity]:
        """Active direct children of a container, optionally by kind."""

    @abc.abstractmethod
    def entities(self, kind: Optional[SecurableKind] = None) -> Iterator[Entity]:
        """All active entities, optionally filtered by kind."""

    @abc.abstractmethod
    def resolve_path(self, path: StoragePath) -> Optional[Entity]:
        """The active entity governing ``path`` (one-asset-per-path)."""

    @abc.abstractmethod
    def overlapping_assets(self, path: StoragePath) -> list[str]:
        """Asset ids whose storage paths overlap ``path``."""

    @abc.abstractmethod
    def grants_on(self, securable_id: str) -> list[PrivilegeGrant]:
        """Direct grants on one securable."""

    @abc.abstractmethod
    def row(self, table: str, key: str) -> Optional[dict]:
        """Raw row access for auxiliary tables (tags, policies, commits)."""

    @abc.abstractmethod
    def rows(self, table: str) -> Iterator[tuple[str, dict]]:
        """Raw scan of an auxiliary table."""

    # -- shared helpers (implemented on the interface) -----------------------

    def prefetch_rows(self, table: str, keys: list[str]) -> None:
        """Hint that ``row`` will soon be called for each key, letting the
        backing store satisfy them with one batched read. Purely an
        optimization — the default does nothing."""

    def ancestors(self, entity: Entity) -> list[Entity]:
        """Parent chain from direct parent up to (excluding) the metastore."""
        chain: list[Entity] = []
        current = entity
        while current.parent_id is not None:
            parent = self.entity_by_id(current.parent_id)
            if parent is None:
                break
            chain.append(parent)
            current = parent
        return chain

    def full_name(self, entity: Entity) -> str:
        """Fully qualified dotted name of an entity."""
        names = [entity.name]
        for ancestor in self.ancestors(entity):
            if ancestor.kind is not SecurableKind.METASTORE:
                names.append(ancestor.name)
        return ".".join(reversed(names))


class SnapshotView(MetastoreView):
    """The uncached read path: every lookup scans the backing snapshot.

    Deliberately does no indexing — this is the "without caching" system
    configuration the paper's Figure 10(b) contrasts, where each request
    pays database reads proportional to the metastore size.
    """

    def __init__(self, snapshot: Snapshot, registry):
        self._snapshot = snapshot
        self._registry = registry
        #: rows pulled in by prefetch_rows; absent keys memoized as None
        self._prefetched: dict[tuple[str, str], Optional[dict]] = {}
        #: path trie built lazily, once — snapshots are immutable
        self._trie: Optional[PathTrie] = None

    @property
    def version(self) -> int:
        return self._snapshot.version

    def _iter_entities(self) -> Iterator[Entity]:
        for _, value in self._snapshot.scan(Tables.ENTITIES):
            entity = Entity.from_dict(value)
            if entity.is_active:
                yield entity

    def entity_by_id(self, entity_id: str) -> Optional[Entity]:
        value = self._snapshot.get(Tables.ENTITIES, entity_id)
        if value is None:
            return None
        entity = Entity.from_dict(value)
        return entity if entity.is_active else None

    def entity_by_name(
        self, parent_id: Optional[str], namespace_group: str, name: str
    ) -> Optional[Entity]:
        if self._snapshot.has_tree_index:
            # one point-range read per kind sharing the namespace group
            for manifest in self._registry:
                if manifest.namespace_group != namespace_group:
                    continue
                child = self._snapshot.child_id(
                    parent_id, manifest.kind.value, name
                )
                if child is not None:
                    return self.entity_by_id(child)
            return None
        for entity in self._iter_entities():
            if entity.parent_id != parent_id or entity.name != name:
                continue
            manifest = self._registry.maybe_get(entity.kind)
            if manifest is not None and manifest.namespace_group == namespace_group:
                return entity
        return None

    def children(
        self, parent_id: str, kind: Optional[SecurableKind] = None
    ) -> list[Entity]:
        child_ids = self._snapshot.children_ids(
            parent_id, kind.value if kind is not None else None
        )
        if child_ids is not None:
            rows = self._snapshot.multi_get(Tables.ENTITIES, child_ids)
            return [
                entity
                for entity in (Entity.from_dict(v) for v in rows.values())
                if entity.is_active
            ]
        return [
            entity
            for entity in self._iter_entities()
            if entity.parent_id == parent_id and (kind is None or entity.kind is kind)
        ]

    def entities(self, kind: Optional[SecurableKind] = None) -> Iterator[Entity]:
        for entity in self._iter_entities():
            if kind is None or entity.kind is kind:
                yield entity

    def _build_trie(self) -> PathTrie:
        if self._trie is None:
            trie = PathTrie()
            for entity in self._iter_entities():
                if entity.storage_path and entity.kind in PATH_GOVERNED_KINDS:
                    trie.register(StoragePath.parse(entity.storage_path), entity.id)
            self._trie = trie
        return self._trie

    def resolve_path(self, path: StoragePath) -> Optional[Entity]:
        asset_id = self._build_trie().resolve(path)
        return self.entity_by_id(asset_id) if asset_id else None

    def overlapping_assets(self, path: StoragePath) -> list[str]:
        return self._build_trie().find_overlapping(path)

    def grants_on(self, securable_id: str) -> list[PrivilegeGrant]:
        # one range read on prefix-ordered backends (grant keys start with
        # the securable id); a filtered full scan on flat ones
        return [
            PrivilegeGrant.from_dict(value)
            for _, value in self._snapshot.scan_prefix(
                Tables.GRANTS, f"{securable_id}/"
            )
        ]

    def prefetch_rows(self, table: str, keys: list[str]) -> None:
        missing = [k for k in keys if (table, k) not in self._prefetched]
        if not missing:
            return
        fetched = self._snapshot.multi_get(table, missing)
        for key in missing:
            self._prefetched[(table, key)] = fetched.get(key)

    def row(self, table: str, key: str) -> Optional[dict]:
        try:
            return self._prefetched[(table, key)]
        except KeyError:
            return self._snapshot.get(table, key)

    def rows(self, table: str) -> Iterator[tuple[str, dict]]:
        return self._snapshot.scan(table)
