"""Principals: users, groups, and service principals.

Group membership may be nested; :meth:`PrincipalDirectory.expand` computes
the transitive closure of groups a principal belongs to, which the
authorizer uses when matching grants. The directory is the kind of
weak-consistency metadata the paper serves through TTL caches (user/group
information, section 1) — so the directory exposes a monotonically
increasing ``generation`` that TTL caches key on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AlreadyExistsError, InvalidRequestError, NotFoundError

#: The implicit group every principal belongs to.
ALL_USERS_GROUP = "account users"


class PrincipalKind(enum.Enum):
    USER = "USER"
    GROUP = "GROUP"
    SERVICE_PRINCIPAL = "SERVICE_PRINCIPAL"


@dataclass(frozen=True)
class Principal:
    """An identity known to the catalog.

    ``trusted_engine`` marks *machine* identities of engines that are
    isolated from user code and therefore allowed to receive FGAC
    enforcement rules (paper section 4.3.2).
    """

    name: str
    kind: PrincipalKind
    trusted_engine: bool = False


class PrincipalDirectory:
    """An in-memory identity provider with nested groups."""

    def __init__(self):
        self._principals: dict[str, Principal] = {}
        self._members: dict[str, set[str]] = {}  # group -> direct members
        self.generation = 0

    # -- management ----------------------------------------------------------

    def add_user(self, name: str) -> Principal:
        return self._add(Principal(name, PrincipalKind.USER))

    def add_group(self, name: str) -> Principal:
        principal = self._add(Principal(name, PrincipalKind.GROUP))
        self._members.setdefault(name, set())
        return principal

    def add_service_principal(self, name: str, *, trusted_engine: bool = False) -> Principal:
        return self._add(
            Principal(name, PrincipalKind.SERVICE_PRINCIPAL, trusted_engine=trusted_engine)
        )

    def _add(self, principal: Principal) -> Principal:
        if principal.name in self._principals:
            raise AlreadyExistsError(f"principal exists: {principal.name}")
        if principal.name == ALL_USERS_GROUP:
            raise InvalidRequestError(f"{ALL_USERS_GROUP!r} is a reserved group")
        self._principals[principal.name] = principal
        self.generation += 1
        return principal

    def get(self, name: str) -> Principal:
        try:
            return self._principals[name]
        except KeyError:
            raise NotFoundError(f"no such principal: {name}")

    def exists(self, name: str) -> bool:
        return name in self._principals

    def add_member(self, group: str, member: str) -> None:
        """Add ``member`` (user, SP, or group) to ``group``."""
        if self.get(group).kind is not PrincipalKind.GROUP:
            raise InvalidRequestError(f"not a group: {group}")
        self.get(member)  # must exist
        if member == group:
            raise InvalidRequestError("a group cannot contain itself")
        self._members[group].add(member)
        if self._creates_cycle(group):
            self._members[group].discard(member)
            raise InvalidRequestError("group membership cycle")
        self.generation += 1

    def remove_member(self, group: str, member: str) -> None:
        members = self._members.get(group)
        if members is None or member not in members:
            raise NotFoundError(f"{member} is not a member of {group}")
        members.discard(member)
        self.generation += 1

    def _creates_cycle(self, start: str) -> bool:
        seen: set[str] = set()
        stack = [start]
        while stack:
            group = stack.pop()
            if group in seen:
                continue
            seen.add(group)
            for member in self._members.get(group, ()):
                if member == start:
                    return True
                if member in self._members:
                    stack.append(member)
        return False

    # -- queries --------------------------------------------------------------

    def expand(self, principal: str) -> frozenset[str]:
        """All identities grants can match for ``principal``: itself plus
        every group it transitively belongs to, plus the all-users group."""
        self.get(principal)
        identities = {principal, ALL_USERS_GROUP}
        changed = True
        while changed:
            changed = False
            for group, members in self._members.items():
                if group in identities:
                    continue
                if identities & members:
                    identities.add(group)
                    changed = True
        return frozenset(identities)

    def is_trusted_engine(self, principal: str) -> bool:
        try:
            return self.get(principal).trusted_engine
        except NotFoundError:
            return False
