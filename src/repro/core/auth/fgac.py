"""Fine-grained access control policies (paper section 4.3.2).

Row filters and column masks restrict access *within* a table. The
catalog stores and serves the policies; a **trusted engine** interprets
and enforces them (defense-in-depth on top of securable-level control).
The catalog never evaluates the predicate itself — it only decides which
rules apply to the calling principal and whether the calling engine is
allowed to receive them at all.

Predicates and mask expressions are SQL expression strings in the small
dialect implemented by :mod:`repro.engine.expressions`; they may reference
table columns and the builtin ``current_user()`` / ``is_account_group_member``
functions.
"""

from __future__ import annotations

from dataclasses import dataclass

@dataclass(frozen=True)
class RowFilter:
    """A row-level policy on a table.

    Principals listed in ``exempt_principals`` (plus owners/admins when the
    service decides so) see unfiltered rows; everyone else's scans have
    ``predicate_sql`` conjoined by the trusted engine.
    """

    securable_id: str
    name: str
    predicate_sql: str
    exempt_principals: frozenset[str] = frozenset()

    def to_dict(self) -> dict:
        return {
            "policy_type": "ROW_FILTER",
            "securable_id": self.securable_id,
            "name": self.name,
            "predicate_sql": self.predicate_sql,
            "exempt_principals": sorted(self.exempt_principals),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RowFilter":
        return cls(
            securable_id=data["securable_id"],
            name=data["name"],
            predicate_sql=data["predicate_sql"],
            exempt_principals=frozenset(data.get("exempt_principals", ())),
        )

    @property
    def key(self) -> str:
        return f"rowfilter/{self.securable_id}/{self.name}"


@dataclass(frozen=True)
class ColumnMask:
    """A column-masking policy on one column of a table.

    For non-exempt principals the trusted engine replaces the column with
    ``mask_sql`` (e.g. ``'***'`` or ``substr(ssn, 8, 4)``).
    """

    securable_id: str
    column: str
    mask_sql: str
    exempt_principals: frozenset[str] = frozenset()

    def to_dict(self) -> dict:
        return {
            "policy_type": "COLUMN_MASK",
            "securable_id": self.securable_id,
            "column": self.column,
            "mask_sql": self.mask_sql,
            "exempt_principals": sorted(self.exempt_principals),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnMask":
        return cls(
            securable_id=data["securable_id"],
            column=data["column"],
            mask_sql=data["mask_sql"],
            exempt_principals=frozenset(data.get("exempt_principals", ())),
        )

    @property
    def key(self) -> str:
        return f"columnmask/{self.securable_id}/{self.column}"


@dataclass(frozen=True)
class FgacRuleSet:
    """The enforcement rules attached to one table resolution response.

    Empty rule sets mean the caller sees the table unrestricted. A
    non-empty rule set is only ever handed to trusted engines; untrusted
    engines must delegate to the data-filtering service instead.
    """

    row_filters: tuple[RowFilter, ...] = ()
    column_masks: tuple[ColumnMask, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.row_filters and not self.column_masks

    def to_dict(self) -> dict:
        return {
            "row_filters": [f.to_dict() for f in self.row_filters],
            "column_masks": [m.to_dict() for m in self.column_masks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FgacRuleSet":
        return cls(
            row_filters=tuple(RowFilter.from_dict(f) for f in data.get("row_filters", ())),
            column_masks=tuple(ColumnMask.from_dict(m) for m in data.get("column_masks", ())),
        )

    def applicable_to(self, identities: frozenset[str]) -> "FgacRuleSet":
        """Drop rules the caller is exempt from."""
        return FgacRuleSet(
            row_filters=tuple(
                f for f in self.row_filters if not (identities & f.exempt_principals)
            ),
            column_masks=tuple(
                m for m in self.column_masks if not (identities & m.exempt_principals)
            ),
        )

    def merged_with(self, other: "FgacRuleSet") -> "FgacRuleSet":
        return FgacRuleSet(
            row_filters=self.row_filters + other.row_filters,
            column_masks=self.column_masks + other.column_masks,
        )
