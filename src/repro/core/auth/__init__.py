"""Governance: principals, privileges, inheritance, FGAC, ABAC."""

from repro.core.auth.privileges import Privilege, PrivilegeGrant, SYSTEM_PRINCIPAL
from repro.core.auth.principals import Principal, PrincipalDirectory, PrincipalKind

__all__ = [
    "Principal",
    "PrincipalDirectory",
    "PrincipalKind",
    "Privilege",
    "PrivilegeGrant",
    "SYSTEM_PRINCIPAL",
]
