"""Attribute-based access control (paper section 3.3, "ABAC").

ABAC policies are defined at container scope (metastore, catalog, or
schema) and apply *dynamically* to every current and future securable in
scope whose tags match the policy condition. Two effects are supported,
matching the paper's examples:

* ``GRANT`` — dynamically grant a privilege (e.g. SELECT on everything
  tagged ``tier=gold``),
* ``MASK_COLUMNS`` / ``FILTER_ROWS`` — dynamically attach FGAC rules
  (e.g. redact all columns tagged ``PII`` for unprivileged users).

Policies are evaluated at authorization / resolution time against the
securable's (and its columns') tags, so no per-asset grant rows exist —
that is what makes the mechanism scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.auth.fgac import ColumnMask, RowFilter
from repro.core.auth.privileges import Privilege
from repro.errors import InvalidRequestError


class AbacEffect(enum.Enum):
    GRANT = "GRANT"
    MASK_COLUMNS = "MASK_COLUMNS"
    FILTER_ROWS = "FILTER_ROWS"


@dataclass(frozen=True)
class TagCondition:
    """Matches a tag ``key`` (and optionally a specific ``value``).

    ``on_columns=True`` matches column tags instead of securable tags —
    used by column-masking policies like "mask every column tagged PII".
    """

    key: str
    value: Optional[str] = None
    on_columns: bool = False

    def matches(self, tags: dict[str, str]) -> bool:
        if self.key not in tags:
            return False
        return self.value is None or tags[self.key] == self.value

    def to_dict(self) -> dict:
        return {"key": self.key, "value": self.value, "on_columns": self.on_columns}

    @classmethod
    def from_dict(cls, data: dict) -> "TagCondition":
        return cls(
            key=data["key"],
            value=data.get("value"),
            on_columns=bool(data.get("on_columns", False)),
        )


@dataclass(frozen=True)
class AbacPolicy:
    """One ABAC policy row.

    ``scope_id`` is the securable id of the container the policy hangs on;
    it applies to all securables whose ancestor chain includes the scope.
    ``principals`` limits who the policy affects (empty = everyone); for
    GRANT policies these are beneficiaries, for mask/filter policies these
    are the *subjects* being restricted, with ``exempt_principals`` carved
    out.
    """

    policy_id: str
    name: str
    scope_id: str
    condition: TagCondition
    effect: AbacEffect
    privilege: Optional[Privilege] = None
    mask_sql: Optional[str] = None
    predicate_sql: Optional[str] = None
    principals: frozenset[str] = frozenset()
    exempt_principals: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.effect is AbacEffect.GRANT and self.privilege is None:
            raise InvalidRequestError("GRANT policies need a privilege")
        if self.effect is AbacEffect.MASK_COLUMNS and not self.mask_sql:
            raise InvalidRequestError("MASK_COLUMNS policies need mask_sql")
        if self.effect is AbacEffect.FILTER_ROWS and not self.predicate_sql:
            raise InvalidRequestError("FILTER_ROWS policies need predicate_sql")
        if self.effect is AbacEffect.MASK_COLUMNS and not self.condition.on_columns:
            raise InvalidRequestError(
                "MASK_COLUMNS policies must use a column-tag condition"
            )

    def affects(self, identities: frozenset[str]) -> bool:
        """Whether the calling principal is subject to / benefits from it."""
        if not self.principals:
            return True
        return bool(identities & self.principals)

    def exempts(self, identities: frozenset[str]) -> bool:
        return bool(identities & self.exempt_principals)

    def to_dict(self) -> dict:
        return {
            "policy_type": "ABAC",
            "policy_id": self.policy_id,
            "name": self.name,
            "scope_id": self.scope_id,
            "condition": self.condition.to_dict(),
            "effect": self.effect.value,
            "privilege": self.privilege.value if self.privilege else None,
            "mask_sql": self.mask_sql,
            "predicate_sql": self.predicate_sql,
            "principals": sorted(self.principals),
            "exempt_principals": sorted(self.exempt_principals),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AbacPolicy":
        privilege = data.get("privilege")
        return cls(
            policy_id=data["policy_id"],
            name=data["name"],
            scope_id=data["scope_id"],
            condition=TagCondition.from_dict(data["condition"]),
            effect=AbacEffect(data["effect"]),
            privilege=Privilege(privilege) if privilege else None,
            mask_sql=data.get("mask_sql"),
            predicate_sql=data.get("predicate_sql"),
            principals=frozenset(data.get("principals", ())),
            exempt_principals=frozenset(data.get("exempt_principals", ())),
        )

    @property
    def key(self) -> str:
        return f"abac/{self.policy_id}"

    # -- effect materialization -------------------------------------------

    def as_row_filter(self, securable_id: str) -> RowFilter:
        assert self.effect is AbacEffect.FILTER_ROWS
        return RowFilter(
            securable_id=securable_id,
            name=f"abac:{self.name}",
            predicate_sql=self.predicate_sql or "",
            exempt_principals=self.exempt_principals,
        )

    def as_column_mask(self, securable_id: str, column: str) -> ColumnMask:
        assert self.effect is AbacEffect.MASK_COLUMNS
        return ColumnMask(
            securable_id=securable_id,
            column=column,
            mask_sql=self.mask_sql or "",
            exempt_principals=self.exempt_principals,
        )
