"""Privilege types and grants (paper section 3.3).

UC's privilege model is SQL-grant inspired: privileges are granted on a
securable to a principal. Privileges are *inherited down the securable
hierarchy*: a grant on a catalog applies to all current and future
securables inside it. Administrative privileges (ownership / MANAGE) are
likewise inherited but confer no implicit data access — a schema owner
does not get SELECT on its tables unless they grant it to themselves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


#: Principal name used for catalog-internal actions (GC, bootstrap).
SYSTEM_PRINCIPAL = "system"


class Privilege(enum.Enum):
    """All privileges recognized by the catalog.

    ``MANAGE`` is the delegated-administration privilege: it confers the
    same authority as ownership on the securable it is granted on.
    """

    # Container usage gates
    USE_CATALOG = "USE CATALOG"
    USE_SCHEMA = "USE SCHEMA"

    # Creation rights inside containers
    CREATE_CATALOG = "CREATE CATALOG"
    CREATE_SCHEMA = "CREATE SCHEMA"
    CREATE_TABLE = "CREATE TABLE"
    CREATE_VOLUME = "CREATE VOLUME"
    CREATE_FUNCTION = "CREATE FUNCTION"
    CREATE_MODEL = "CREATE MODEL"
    CREATE_EXTERNAL_LOCATION = "CREATE EXTERNAL LOCATION"
    CREATE_STORAGE_CREDENTIAL = "CREATE STORAGE CREDENTIAL"
    CREATE_CONNECTION = "CREATE CONNECTION"
    CREATE_SHARE = "CREATE SHARE"
    CREATE_RECIPIENT = "CREATE RECIPIENT"

    # Data access
    SELECT = "SELECT"
    MODIFY = "MODIFY"
    READ_VOLUME = "READ VOLUME"
    WRITE_VOLUME = "WRITE VOLUME"
    EXECUTE = "EXECUTE"

    # Storage / connection pass-through
    READ_FILES = "READ FILES"
    WRITE_FILES = "WRITE FILES"
    USE_CONNECTION = "USE CONNECTION"

    # Administration
    MANAGE = "MANAGE"
    APPLY_TAG = "APPLY TAG"
    SET_SHARE_PERMISSION = "SET SHARE PERMISSION"

    # Metadata visibility (implied by any other grant; explicit for lists)
    BROWSE = "BROWSE"


#: Privileges that count as "administrative": they allow managing grants
#: and mutating the securable itself, but do not imply data access.
ADMIN_PRIVILEGES = frozenset({Privilege.MANAGE})

#: Privileges that grant read access to an asset's *data* (used by
#: credential vending to map a requested access level to required grants).
READ_DATA_PRIVILEGES = frozenset(
    {Privilege.SELECT, Privilege.READ_VOLUME, Privilege.READ_FILES, Privilege.EXECUTE}
)

WRITE_DATA_PRIVILEGES = frozenset(
    {Privilege.MODIFY, Privilege.WRITE_VOLUME, Privilege.WRITE_FILES}
)


@dataclass(frozen=True)
class PrivilegeGrant:
    """One (securable, principal, privilege) grant row."""

    securable_id: str
    principal: str
    privilege: Privilege
    granted_by: str
    granted_at: float

    def to_dict(self) -> dict:
        return {
            "securable_id": self.securable_id,
            "principal": self.principal,
            "privilege": self.privilege.value,
            "granted_by": self.granted_by,
            "granted_at": self.granted_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PrivilegeGrant":
        return cls(
            securable_id=data["securable_id"],
            principal=data["principal"],
            privilege=Privilege(data["privilege"]),
            granted_by=data["granted_by"],
            granted_at=data["granted_at"],
        )

    @property
    def key(self) -> str:
        """Primary key of the grant row in the metadata store."""
        return f"{self.securable_id}/{self.principal}/{self.privilege.value}"
