"""The single authorization decision point (paper sections 3.3, 4.3).

"[The Unity Catalog service] is the sole authority to make access control
decisions based on these governance metadata."

The authorizer implements:

* ownership and MANAGE with administrative inheritance down the hierarchy,
* privilege inheritance (a grant on a container covers all descendants),
* usage gates (USE CATALOG / USE SCHEMA) on the ancestor chain,
* the owner/data separation: container admins do **not** implicitly gain
  data privileges on descendants,
* dynamic ABAC GRANT policies matched against securable tags,
* FGAC rule assembly (explicit row filters / column masks plus ABAC
  mask/filter policies matched against column tags).

It also exposes the efficient ``visible``/``filter_visible`` entry points
that second-tier discovery services use to authorize search results
(section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.auth.abac import AbacEffect, AbacPolicy
from repro.core.auth.fgac import ColumnMask, FgacRuleSet, RowFilter
from repro.core.auth.principals import PrincipalDirectory
from repro.core.auth.privileges import Privilege
from repro.core.model.entity import Entity, SecurableKind
from repro.core.model.registry import AssetTypeRegistry
from repro.core.cache.decisions import HotPathCaches
from repro.core.persistence.store import Tables
from repro.core.view import MetastoreView
from repro.errors import PermissionDeniedError

#: identity memo entries kept before a wholesale clear
_IDENTITY_MEMO_CAP = 4096

#: Operations that administrative rights (ownership / MANAGE, possibly on
#: an ancestor) are sufficient for.
_ADMIN_OPERATIONS = frozenset(
    {"update", "delete", "grant", "transfer_ownership", "manage_policies",
     "apply_tag"}
)

#: Operations that touch data and therefore never fall back to *ancestor*
#: administrative rights (the paper's owner/data separation).
_DATA_OPERATIONS = frozenset({"read_data", "write_data", "execute"})

#: Container-scoped privileges that do NOT propagate metadata visibility
#: to descendants: holding USE SCHEMA (or a creation right) on a container
#: reveals the container itself, not everything inside it.
_NON_INHERITING_VISIBILITY = frozenset(
    {
        Privilege.USE_CATALOG,
        Privilege.USE_SCHEMA,
        Privilege.CREATE_CATALOG,
        Privilege.CREATE_SCHEMA,
        Privilege.CREATE_TABLE,
        Privilege.CREATE_VOLUME,
        Privilege.CREATE_FUNCTION,
        Privilege.CREATE_MODEL,
        Privilege.CREATE_EXTERNAL_LOCATION,
        Privilege.CREATE_STORAGE_CREDENTIAL,
        Privilege.CREATE_CONNECTION,
        Privilege.CREATE_SHARE,
        Privilege.CREATE_RECIPIENT,
    }
)


@dataclass(frozen=True)
class AccessDecision:
    """Outcome of one authorization check (recorded in the audit log)."""

    allowed: bool
    reason: str

    def raise_if_denied(self) -> None:
        if not self.allowed:
            raise PermissionDeniedError(self.reason)


class Authorizer:
    """Stateless decision logic over a :class:`MetastoreView`."""

    def __init__(self, registry: AssetTypeRegistry, directory: PrincipalDirectory):
        self._registry = registry
        self._directory = directory
        #: principal -> (directory generation, expanded identity set)
        self._identity_memo: dict[str, tuple[int, frozenset[str]]] = {}
        # plain-int work counters the hot-path benchmark charges simulated
        # costs against (scrape-time export; zero hot-path metrics cost)
        self.evaluations = 0
        self.identity_expansions = 0
        self.grant_rows_examined = 0
        self.policy_rows_examined = 0

    # -- identity ------------------------------------------------------------

    def identities(self, principal: str) -> frozenset[str]:
        """The principal plus its transitive group memberships.

        Memoized per directory generation: the fixed-point group expansion
        runs once per principal until the directory mutates.
        """
        generation = self._directory.generation
        memo = self._identity_memo.get(principal)
        if memo is not None and memo[0] == generation:
            return memo[1]
        self.identity_expansions += 1
        if self._directory.exists(principal):
            expanded = self._directory.expand(principal)
        else:
            expanded = frozenset({principal})
        if len(self._identity_memo) >= _IDENTITY_MEMO_CAP:
            self._identity_memo.clear()
        self._identity_memo[principal] = (generation, expanded)
        return expanded

    # -- ownership and administration -----------------------------------------

    def _owns(self, entity: Entity, identities: frozenset[str]) -> bool:
        return entity.owner in identities

    def _has_direct_grant(
        self,
        view: MetastoreView,
        securable_id: str,
        privilege: Privilege,
        identities: frozenset[str],
    ) -> bool:
        grants = view.grants_on(securable_id)
        self.grant_rows_examined += len(grants)
        for grant in grants:
            if grant.privilege is privilege and grant.principal in identities:
                return True
        return False

    def _chain(
        self,
        view: MetastoreView,
        entity: Entity,
        cache: Optional[HotPathCaches] = None,
    ) -> list[Entity]:
        """Entity followed by its ancestors (nearest first, metastore last)."""
        if cache is not None:
            return list(cache.chain(view, entity))
        return [entity] + view.ancestors(entity)

    def is_owner_or_admin(
        self,
        view: MetastoreView,
        entity: Entity,
        identities: frozenset[str],
        cache: Optional[HotPathCaches] = None,
    ) -> bool:
        """Ownership or MANAGE on the entity or any ancestor.

        Administrative rights are inherited down the hierarchy (paper 3.3).
        """
        if cache is not None:
            key = (identities, entity.id, "admin")
            hit = cache.get_decision(key)
            if hit is not None:
                return hit.allowed
        allowed = False
        for securable in self._chain(view, entity, cache):
            if self._owns(securable, identities):
                allowed = True
                break
            if self._has_direct_grant(view, securable.id, Privilege.MANAGE, identities):
                allowed = True
                break
        if cache is not None:
            cache.put_decision(
                key,
                AccessDecision(allowed, "owner-or-admin"),
                identities,
                frozenset(s.id for s in self._chain(view, entity, cache)),
                visibility=False,
            )
        return allowed

    def is_direct_owner_or_admin(
        self, view: MetastoreView, entity: Entity, identities: frozenset[str]
    ) -> bool:
        """Ownership or MANAGE on the entity itself (no inheritance)."""
        if self._owns(entity, identities):
            return True
        return self._has_direct_grant(view, entity.id, Privilege.MANAGE, identities)

    # -- privilege evaluation ----------------------------------------------------

    def tags_of(self, view: MetastoreView, securable_id: str) -> dict[str, str]:
        row = view.row(Tables.TAGS, securable_id)
        return dict(row.get("tags", {})) if row else {}

    def column_tags_of(self, view: MetastoreView, securable_id: str) -> dict[str, dict[str, str]]:
        row = view.row(Tables.TAGS, securable_id)
        return {c: dict(t) for c, t in row.get("column_tags", {}).items()} if row else {}

    def _abac_policies(self, view: MetastoreView) -> list[AbacPolicy]:
        policies = []
        for key, value in view.rows(Tables.POLICIES):
            self.policy_rows_examined += 1
            if value.get("policy_type") == "ABAC":
                policies.append(AbacPolicy.from_dict(value))
        return policies

    def _abac_granted(
        self,
        view: MetastoreView,
        entity: Entity,
        privilege: Privilege,
        identities: frozenset[str],
        cache: Optional[HotPathCaches] = None,
    ) -> bool:
        """Dynamic GRANT policies: does one grant ``privilege`` here?"""
        policies = [
            p for p in self._abac_policies(view)
            if p.effect is AbacEffect.GRANT and p.privilege is privilege
        ]
        if not policies:
            return False
        scope_ids = {securable.id for securable in self._chain(view, entity, cache)}
        tags = self.tags_of(view, entity.id)
        for policy in policies:
            if policy.scope_id not in scope_ids:
                continue
            if not policy.affects(identities) or policy.exempts(identities):
                continue
            if not policy.condition.on_columns and policy.condition.matches(tags):
                return True
        return False

    def has_privilege(
        self,
        view: MetastoreView,
        entity: Entity,
        privilege: Privilege,
        identities: frozenset[str],
        cache: Optional[HotPathCaches] = None,
    ) -> bool:
        """Privilege inheritance: a grant on the entity or any ancestor."""
        if cache is not None:
            key = (identities, entity.id, "has:" + privilege.value)
            hit = cache.get_decision(key)
            if hit is not None:
                return hit.allowed
        allowed = any(
            self._has_direct_grant(view, securable.id, privilege, identities)
            for securable in self._chain(view, entity, cache)
        ) or self._abac_granted(view, entity, privilege, identities, cache)
        if cache is not None:
            cache.put_decision(
                key,
                AccessDecision(allowed, "privilege-inheritance"),
                identities,
                frozenset(s.id for s in self._chain(view, entity, cache)),
                visibility=False,
            )
        return allowed

    # -- usage gates --------------------------------------------------------------

    def check_usage_gates(
        self,
        view: MetastoreView,
        entity: Entity,
        identities: frozenset[str],
        cache: Optional[HotPathCaches] = None,
    ) -> AccessDecision:
        """USE CATALOG / USE SCHEMA checks along the ancestor chain.

        Owning (or having MANAGE on) a container implies its usage
        privilege, since owners hold all privileges on their objects.
        """
        if cache is not None:
            key = (identities, entity.id, "gates")
            hit = cache.get_decision(key)
            if hit is not None:
                return hit
        decision = AccessDecision(True, "usage gates satisfied")
        for ancestor in self._chain(view, entity, cache)[1:]:
            if ancestor.kind is SecurableKind.CATALOG:
                needed = Privilege.USE_CATALOG
            elif ancestor.kind is SecurableKind.SCHEMA:
                needed = Privilege.USE_SCHEMA
            else:
                continue
            if self.is_owner_or_admin(view, ancestor, identities, cache):
                continue
            if not self.has_privilege(view, ancestor, needed, identities, cache):
                decision = AccessDecision(
                    False,
                    f"missing {needed.value} on {ancestor.kind.value.lower()} "
                    f"{ancestor.name!r}",
                )
                break
        if cache is not None:
            cache.put_decision(
                key,
                decision,
                identities,
                frozenset(s.id for s in self._chain(view, entity, cache)),
                visibility=False,
            )
        return decision

    # -- the main entry point --------------------------------------------------------

    def authorize(
        self,
        view: MetastoreView,
        entity: Entity,
        operation: str,
        principal: str,
        cache: Optional[HotPathCaches] = None,
    ) -> AccessDecision:
        """Decide whether ``principal`` may perform ``operation`` on ``entity``."""
        if cache is not None:
            key = (principal, entity.id, operation)
            hit = cache.get_decision(key)
            if hit is not None:
                return hit
        self.evaluations += 1
        decision = self._authorize_uncached(view, entity, operation, principal, cache)
        if cache is not None:
            identities = self.identities(principal)
            cache.put_decision(
                key,
                decision,
                identities,
                frozenset(s.id for s in self._chain(view, entity, cache)),
                visibility=(operation == "read_metadata"),
            )
        return decision

    def _authorize_uncached(
        self,
        view: MetastoreView,
        entity: Entity,
        operation: str,
        principal: str,
        cache: Optional[HotPathCaches] = None,
    ) -> AccessDecision:
        identities = self.identities(principal)

        if operation == "read_metadata":
            if self.visible(view, entity, identities, cache):
                return AccessDecision(True, "metadata visible")
            return AccessDecision(
                False, f"no privileges on {entity.name!r} or its children"
            )

        gates = self.check_usage_gates(view, entity, identities, cache)
        if not gates.allowed:
            return gates

        # Direct ownership/MANAGE of the securable itself confers all
        # privileges on it, including data access.
        if self.is_direct_owner_or_admin(view, entity, identities):
            return AccessDecision(True, "owner of securable")

        # Ancestor administrative rights cover admin operations only —
        # never data (the paper's owner/data separation).
        if operation in _ADMIN_OPERATIONS and self.is_owner_or_admin(
            view, entity, identities, cache
        ):
            return AccessDecision(True, "administrator of ancestor container")

        manifest = self._registry.maybe_get(entity.kind)
        if manifest is None:
            return AccessDecision(False, f"unknown securable kind {entity.kind}")
        if operation in _ADMIN_OPERATIONS and operation not in manifest.operation_rules:
            # purely administrative operations have no privilege fallback
            return AccessDecision(
                False,
                f"{principal!r} is not an owner or administrator of "
                f"{entity.name!r}",
            )
        required = manifest.privilege_for_operation(operation)
        if self.has_privilege(view, entity, required, identities, cache):
            return AccessDecision(True, f"{required.value} granted")
        return AccessDecision(
            False,
            f"{principal!r} lacks {required.value} on {entity.kind.value.lower()} "
            f"{entity.name!r}",
        )

    # -- visibility (discovery authorization API, section 4.4) -----------------------

    def visible(
        self,
        view: MetastoreView,
        entity: Entity,
        identities: frozenset[str],
        cache: Optional[HotPathCaches] = None,
    ) -> bool:
        """Metadata visibility: admin rights, any privilege on the entity
        or an ancestor, or any grant anywhere in the entity's subtree
        (so containers of accessible assets can be browsed)."""
        if cache is not None:
            key = (identities, entity.id, "visible")
            hit = cache.get_decision(key)
            if hit is not None:
                return hit.allowed
        allowed = self._visible_uncached(view, entity, identities, cache)
        if cache is not None:
            cache.put_decision(
                key,
                AccessDecision(allowed, "visibility"),
                identities,
                frozenset(s.id for s in self._chain(view, entity, cache)),
                visibility=True,
            )
        return allowed

    def _visible_uncached(
        self,
        view: MetastoreView,
        entity: Entity,
        identities: frozenset[str],
        cache: Optional[HotPathCaches] = None,
    ) -> bool:
        if self.is_owner_or_admin(view, entity, identities, cache):
            return True
        for securable in self._chain(view, entity, cache):
            grants = view.grants_on(securable.id)
            self.grant_rows_examined += len(grants)
            for grant in grants:
                if grant.principal not in identities:
                    continue
                if securable.id == entity.id:
                    return True  # any privilege on the entity itself
                if grant.privilege not in _NON_INHERITING_VISIBILITY:
                    return True  # inheritable privileges reveal descendants
        # grants on descendants make the container browsable
        for key, value in view.rows(Tables.GRANTS):
            self.grant_rows_examined += 1
            if value.get("principal") not in identities:
                continue
            granted_entity = view.entity_by_id(value["securable_id"])
            while granted_entity is not None:
                if granted_entity.id == entity.id:
                    return True
                if granted_entity.parent_id is None:
                    break
                granted_entity = view.entity_by_id(granted_entity.parent_id)
        # ABAC GRANT policies can also make an asset visible
        for privilege in (Privilege.SELECT, Privilege.READ_VOLUME,
                          Privilege.EXECUTE, Privilege.BROWSE):
            if self._abac_granted(view, entity, privilege, identities, cache):
                return True
        return False

    def filter_visible(
        self,
        view: MetastoreView,
        entities: list[Entity],
        principal: str,
        cache: Optional[HotPathCaches] = None,
    ) -> list[Entity]:
        """Authorization API for second-tier services: keep only entities
        whose metadata ``principal`` may see (used by search)."""
        identities = self.identities(principal)
        return [e for e in entities if self.visible(view, e, identities, cache)]

    # -- FGAC rule assembly (section 4.3.2) ---------------------------------------------

    def fgac_rules_for(
        self,
        view: MetastoreView,
        table: Entity,
        principal: str,
        cache: Optional[HotPathCaches] = None,
    ) -> FgacRuleSet:
        """All row filters / column masks applying to ``principal`` on a table."""
        if cache is not None:
            key = (principal, table.id, "fgac")
            hit = cache.get_decision(key)
            if hit is not None:
                return hit
        rules = self._fgac_rules_uncached(view, table, principal, cache)
        if cache is not None:
            cache.put_decision(
                key,
                rules,
                self.identities(principal),
                frozenset(s.id for s in self._chain(view, table, cache)),
                visibility=False,
            )
        return rules

    def _fgac_rules_uncached(
        self,
        view: MetastoreView,
        table: Entity,
        principal: str,
        cache: Optional[HotPathCaches] = None,
    ) -> FgacRuleSet:
        identities = self.identities(principal)

        row_filters: list[RowFilter] = []
        column_masks: list[ColumnMask] = []

        # explicit per-table policies
        for key, value in view.rows(Tables.POLICIES):
            self.policy_rows_examined += 1
            policy_type = value.get("policy_type")
            if policy_type == "ROW_FILTER" and value["securable_id"] == table.id:
                row_filters.append(RowFilter.from_dict(value))
            elif policy_type == "COLUMN_MASK" and value["securable_id"] == table.id:
                column_masks.append(ColumnMask.from_dict(value))

        # ABAC mask/filter policies in scope
        scope_ids = {securable.id for securable in self._chain(view, table, cache)}
        table_tags = self.tags_of(view, table.id)
        column_tags = self.column_tags_of(view, table.id)
        for policy in self._abac_policies(view):
            if policy.scope_id not in scope_ids:
                continue
            if not policy.affects(identities):
                continue
            if policy.effect is AbacEffect.FILTER_ROWS:
                if not policy.condition.on_columns and policy.condition.matches(table_tags):
                    row_filters.append(policy.as_row_filter(table.id))
            elif policy.effect is AbacEffect.MASK_COLUMNS:
                for column, tags in column_tags.items():
                    if policy.condition.matches(tags):
                        column_masks.append(policy.as_column_mask(table.id, column))

        rules = FgacRuleSet(
            row_filters=tuple(row_filters), column_masks=tuple(column_masks)
        )
        return rules.applicable_to(identities)
