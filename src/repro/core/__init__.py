"""Unity Catalog core: the paper's primary contribution.

Subpackages:

* ``model`` — generic entity-relationship data model and asset-type registry
* ``persistence`` — ACID metadata stores (in-memory MVCC, SQLite)
* ``cache`` — write-through multi-version cache and TTL caches
* ``auth`` — principals, privileges, inheritance, FGAC, ABAC
* ``assets`` — built-in asset-type manifests (tables, volumes, models, ...)
* ``service`` — the Unity Catalog service facade and REST API layer
"""
