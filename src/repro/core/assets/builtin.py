"""Manifests for every built-in securable kind (paper section 3.2).

Each manifest is purely declarative: the catalog service derives CRUD
validation, authorization, lifecycle, namespace and path behaviour from
it. Adding a new asset type means writing one more manifest — the
extension path the paper demonstrates with MLflow registered models.
"""

from __future__ import annotations

from repro.core.auth.privileges import Privilege
from repro.core.model.entity import SecurableKind
from repro.core.model.manifest import AssetTypeManifest, FieldSpec
from repro.core.model.registry import AssetTypeRegistry
from repro.errors import InvalidRequestError

# -- table vocabulary ---------------------------------------------------------

TABLE_TYPES = frozenset(
    {"MANAGED", "EXTERNAL", "VIEW", "MATERIALIZED_VIEW", "FOREIGN", "SHALLOW_CLONE"}
)

TABLE_FORMATS = frozenset({"DELTA", "ICEBERG", "PARQUET", "CSV", "JSON", "AVRO", "ORC"})

#: Foreign-table source systems (paper: "UC currently supports 26 foreign
#: table types"); a representative subset including the three cloud data
#: warehouses Figure 8(c) alludes to.
FOREIGN_TABLE_SOURCES = frozenset(
    {
        "HIVE_METASTORE",
        "SNOWFLAKE",
        "BIGQUERY",
        "REDSHIFT",
        "MYSQL",
        "POSTGRESQL",
        "SQLSERVER",
        "ORACLE",
        "TERADATA",
        "SAP_HANA",
        "DATABRICKS",
        "GLUE",
        "SALESFORCE",
        "MONGODB",
    }
)

VOLUME_TYPES = frozenset({"MANAGED", "EXTERNAL"})

CONNECTION_TYPES = frozenset(
    {"HIVE_METASTORE", "MYSQL", "POSTGRESQL", "SNOWFLAKE", "BIGQUERY", "REDSHIFT",
     "SQLSERVER", "GLUE", "DATABRICKS"}
)

CATALOG_TYPES = frozenset({"STANDARD", "FOREIGN", "DELTASHARING"})


def _validate_columns(columns: object) -> None:
    """Columns are a list of {name, type, nullable?, comment?} dicts."""
    if not isinstance(columns, list):
        raise InvalidRequestError("columns must be a list")
    seen = set()
    for column in columns:
        if not isinstance(column, dict) or "name" not in column or "type" not in column:
            raise InvalidRequestError(
                "each column needs at least 'name' and 'type'"
            )
        name = column["name"]
        if name in seen:
            raise InvalidRequestError(f"duplicate column name: {name!r}")
        seen.add(name)


# -- container manifests -------------------------------------------------------

METASTORE_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.METASTORE,
    parent_kind=None,
    namespace_group="metastore",
    supported_privileges=frozenset(
        {
            Privilege.CREATE_CATALOG,
            Privilege.CREATE_STORAGE_CREDENTIAL,
            Privilege.CREATE_EXTERNAL_LOCATION,
            Privilege.CREATE_CONNECTION,
            Privilege.CREATE_SHARE,
            Privilege.CREATE_RECIPIENT,
            Privilege.BROWSE,
            # inheritable privileges grantable metastore-wide
            Privilege.USE_CATALOG,
            Privilege.USE_SCHEMA,
            Privilege.SELECT,
            Privilege.MODIFY,
            Privilege.READ_VOLUME,
            Privilege.WRITE_VOLUME,
            Privilege.EXECUTE,
            Privilege.APPLY_TAG,
        }
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "create_catalog": Privilege.CREATE_CATALOG,
        "create_storage_credential": Privilege.CREATE_STORAGE_CREDENTIAL,
        "create_external_location": Privilege.CREATE_EXTERNAL_LOCATION,
        "create_connection": Privilege.CREATE_CONNECTION,
        "create_share": Privilege.CREATE_SHARE,
        "create_recipient": Privilege.CREATE_RECIPIENT,
    },
    child_kinds=(SecurableKind.CATALOG,),
    fields=(
        FieldSpec("region", default="us-west"),
    ),
)

CATALOG_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.CATALOG,
    parent_kind=SecurableKind.METASTORE,
    namespace_group="catalog",
    create_privilege=Privilege.CREATE_CATALOG,
    supported_privileges=frozenset(
        {
            Privilege.USE_CATALOG,
            Privilege.CREATE_SCHEMA,
            Privilege.BROWSE,
            # inheritable data privileges grantable at container scope
            Privilege.SELECT,
            Privilege.MODIFY,
            Privilege.READ_VOLUME,
            Privilege.WRITE_VOLUME,
            Privilege.EXECUTE,
            Privilege.CREATE_TABLE,
            Privilege.CREATE_VOLUME,
            Privilege.CREATE_FUNCTION,
            Privilege.CREATE_MODEL,
            Privilege.APPLY_TAG,
        }
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "use": Privilege.USE_CATALOG,
        "create_schema": Privilege.CREATE_SCHEMA,
    },
    child_kinds=(SecurableKind.SCHEMA,),
    fields=(
        FieldSpec("catalog_type", choices=CATALOG_TYPES, default="STANDARD",
                  updatable=False),
        FieldSpec("connection_name", required=False, updatable=False),
        FieldSpec("foreign_database", required=False, updatable=False),
        FieldSpec("share_name", required=False, updatable=False),
        FieldSpec("provider_name", required=False, updatable=False),
        FieldSpec("workspace_bindings", types=(list,), default=None),
        FieldSpec("options", types=(dict,), default=None),
    ),
)

SCHEMA_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.SCHEMA,
    parent_kind=SecurableKind.CATALOG,
    namespace_group="schema",
    create_privilege=Privilege.CREATE_SCHEMA,
    supported_privileges=frozenset(
        {
            Privilege.USE_SCHEMA,
            Privilege.CREATE_TABLE,
            Privilege.CREATE_VOLUME,
            Privilege.CREATE_FUNCTION,
            Privilege.CREATE_MODEL,
            Privilege.BROWSE,
            Privilege.SELECT,
            Privilege.MODIFY,
            Privilege.READ_VOLUME,
            Privilege.WRITE_VOLUME,
            Privilege.EXECUTE,
            Privilege.APPLY_TAG,
        }
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "use": Privilege.USE_SCHEMA,
        "create_table": Privilege.CREATE_TABLE,
        "create_volume": Privilege.CREATE_VOLUME,
        "create_function": Privilege.CREATE_FUNCTION,
        "create_model": Privilege.CREATE_MODEL,
    },
    child_kinds=(
        SecurableKind.TABLE,
        SecurableKind.VOLUME,
        SecurableKind.FUNCTION,
        SecurableKind.REGISTERED_MODEL,
    ),
    fields=(),
)

# -- data & AI asset manifests ---------------------------------------------------

TABLE_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.TABLE,
    parent_kind=SecurableKind.SCHEMA,
    namespace_group="tabular",
    has_storage=True,
    allows_managed_storage=True,
    create_privilege=Privilege.CREATE_TABLE,
    supported_privileges=frozenset(
        {Privilege.SELECT, Privilege.MODIFY, Privilege.BROWSE, Privilege.APPLY_TAG}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "read_data": Privilege.SELECT,
        "write_data": Privilege.MODIFY,
        "update": Privilege.MODIFY,
    },
    read_privilege=Privilege.SELECT,
    write_privilege=Privilege.MODIFY,
    fields=(
        FieldSpec("table_type", choices=TABLE_TYPES, required=True, updatable=False),
        FieldSpec("format", choices=TABLE_FORMATS, default="DELTA", updatable=False),
        FieldSpec("columns", types=(list,), default=None, validator=_validate_columns),
        FieldSpec("view_definition", required=False, max_length=65536),
        FieldSpec("view_dependencies", types=(list,), default=None),
        FieldSpec("base_table", required=False, updatable=False),
        FieldSpec("foreign_source", choices=FOREIGN_TABLE_SOURCES, required=False,
                  updatable=False),
        FieldSpec("uniform_enabled", types=(bool,), default=False),
        FieldSpec("catalog_owned", types=(bool,), default=False, updatable=False),
        FieldSpec("row_count_estimate", types=(int,), default=None),
    ),
)

VOLUME_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.VOLUME,
    parent_kind=SecurableKind.SCHEMA,
    namespace_group="volume",
    has_storage=True,
    allows_managed_storage=True,
    create_privilege=Privilege.CREATE_VOLUME,
    supported_privileges=frozenset(
        {Privilege.READ_VOLUME, Privilege.WRITE_VOLUME, Privilege.BROWSE,
         Privilege.APPLY_TAG}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "read_data": Privilege.READ_VOLUME,
        "write_data": Privilege.WRITE_VOLUME,
        "update": Privilege.WRITE_VOLUME,
    },
    read_privilege=Privilege.READ_VOLUME,
    write_privilege=Privilege.WRITE_VOLUME,
    fields=(
        FieldSpec("volume_type", choices=VOLUME_TYPES, required=True, updatable=False),
    ),
)

FUNCTION_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.FUNCTION,
    parent_kind=SecurableKind.SCHEMA,
    namespace_group="function",
    create_privilege=Privilege.CREATE_FUNCTION,
    supported_privileges=frozenset(
        {Privilege.EXECUTE, Privilege.BROWSE, Privilege.APPLY_TAG}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "execute": Privilege.EXECUTE,
        "update": Privilege.EXECUTE,
    },
    fields=(
        FieldSpec("definition", required=True, max_length=65536),
        FieldSpec("parameters", types=(list,), default=None),
        FieldSpec("return_type", default="STRING"),
        FieldSpec("function_dependencies", types=(list,), default=None),
    ),
)

REGISTERED_MODEL_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.REGISTERED_MODEL,
    parent_kind=SecurableKind.SCHEMA,
    namespace_group="model",
    has_storage=True,
    allows_managed_storage=True,
    create_privilege=Privilege.CREATE_MODEL,
    supported_privileges=frozenset(
        {Privilege.EXECUTE, Privilege.BROWSE, Privilege.APPLY_TAG}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "read_data": Privilege.EXECUTE,
        "write_data": Privilege.EXECUTE,
        "update": Privilege.EXECUTE,
        "create_model_version": Privilege.EXECUTE,
    },
    read_privilege=Privilege.EXECUTE,
    write_privilege=Privilege.EXECUTE,
    child_kinds=(SecurableKind.MODEL_VERSION,),
    fields=(),
)

MODEL_VERSION_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.MODEL_VERSION,
    parent_kind=SecurableKind.REGISTERED_MODEL,
    namespace_group="model_version",
    has_storage=True,
    allows_managed_storage=True,
    create_privilege=Privilege.EXECUTE,
    supported_privileges=frozenset({Privilege.EXECUTE, Privilege.BROWSE}),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "read_data": Privilege.EXECUTE,
        "write_data": Privilege.EXECUTE,
        "update": Privilege.EXECUTE,
    },
    read_privilege=Privilege.EXECUTE,
    write_privilege=Privilege.EXECUTE,
    fields=(
        FieldSpec("version", types=(int,), required=True, updatable=False),
        FieldSpec("run_id", required=False),
        FieldSpec("source", required=False),
        FieldSpec("status", choices=frozenset(
            {"PENDING_REGISTRATION", "READY", "FAILED_REGISTRATION"}),
            default="PENDING_REGISTRATION"),
        FieldSpec("aliases", types=(list,), default=None),
    ),
)

# -- configuration securables ----------------------------------------------------

STORAGE_CREDENTIAL_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.STORAGE_CREDENTIAL,
    parent_kind=SecurableKind.METASTORE,
    namespace_group="storage_credential",
    create_privilege=Privilege.CREATE_STORAGE_CREDENTIAL,
    supported_privileges=frozenset(
        {Privilege.READ_FILES, Privilege.WRITE_FILES, Privilege.BROWSE,
         Privilege.CREATE_EXTERNAL_LOCATION}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "use": Privilege.CREATE_EXTERNAL_LOCATION,
    },
    fields=(
        FieldSpec("provider", choices=frozenset({"s3", "abfss", "gs", "sim"}),
                  default="sim", updatable=False),
        # In production this is an encrypted cloud principal (IAM role etc.);
        # here it is the STS issuer's root secret, visible only to the catalog.
        FieldSpec("root_secret", required=True),
    ),
)

EXTERNAL_LOCATION_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.EXTERNAL_LOCATION,
    parent_kind=SecurableKind.METASTORE,
    namespace_group="external_location",
    has_storage=True,
    create_privilege=Privilege.CREATE_EXTERNAL_LOCATION,
    supported_privileges=frozenset(
        {Privilege.READ_FILES, Privilege.WRITE_FILES, Privilege.CREATE_TABLE,
         Privilege.BROWSE}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "read_data": Privilege.READ_FILES,
        "write_data": Privilege.WRITE_FILES,
        "create_table": Privilege.CREATE_TABLE,
    },
    read_privilege=Privilege.READ_FILES,
    write_privilege=Privilege.WRITE_FILES,
    fields=(
        FieldSpec("credential_name", required=True),
    ),
)

CONNECTION_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.CONNECTION,
    parent_kind=SecurableKind.METASTORE,
    namespace_group="connection",
    create_privilege=Privilege.CREATE_CONNECTION,
    supported_privileges=frozenset(
        {Privilege.USE_CONNECTION, Privilege.BROWSE, Privilege.CREATE_CATALOG}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "use": Privilege.USE_CONNECTION,
    },
    fields=(
        FieldSpec("connection_type", choices=CONNECTION_TYPES, required=True,
                  updatable=False),
        FieldSpec("options", types=(dict,), default=None),
    ),
)

SHARE_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.SHARE,
    parent_kind=SecurableKind.METASTORE,
    namespace_group="share",
    create_privilege=Privilege.CREATE_SHARE,
    supported_privileges=frozenset(
        {Privilege.SET_SHARE_PERMISSION, Privilege.SELECT, Privilege.BROWSE}
    ),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
        "update": Privilege.SET_SHARE_PERMISSION,
        "read_data": Privilege.SELECT,
    },
    fields=(),
)

RECIPIENT_MANIFEST = AssetTypeManifest(
    kind=SecurableKind.RECIPIENT,
    parent_kind=SecurableKind.METASTORE,
    namespace_group="recipient",
    create_privilege=Privilege.CREATE_RECIPIENT,
    supported_privileges=frozenset({Privilege.BROWSE}),
    operation_rules={
        "read_metadata": Privilege.BROWSE,
        "apply_tag": Privilege.APPLY_TAG,
    },
    fields=(
        FieldSpec("bearer_token", required=True, updatable=False),
        FieldSpec("authentication_type", choices=frozenset({"TOKEN", "OIDC"}),
                  default="TOKEN", updatable=False),
    ),
)


_ALL_MANIFESTS = (
    METASTORE_MANIFEST,
    CATALOG_MANIFEST,
    SCHEMA_MANIFEST,
    TABLE_MANIFEST,
    VOLUME_MANIFEST,
    FUNCTION_MANIFEST,
    REGISTERED_MODEL_MANIFEST,
    MODEL_VERSION_MANIFEST,
    STORAGE_CREDENTIAL_MANIFEST,
    EXTERNAL_LOCATION_MANIFEST,
    CONNECTION_MANIFEST,
    SHARE_MANIFEST,
    RECIPIENT_MANIFEST,
)


def builtin_registry() -> AssetTypeRegistry:
    """A registry pre-loaded with every built-in asset type."""
    registry = AssetTypeRegistry()
    for manifest in _ALL_MANIFESTS:
        registry.register(manifest)
    return registry
