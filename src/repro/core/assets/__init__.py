"""Built-in asset types, all defined through declarative manifests."""

from repro.core.assets.builtin import (
    FOREIGN_TABLE_SOURCES,
    TABLE_FORMATS,
    TABLE_TYPES,
    VOLUME_TYPES,
    builtin_registry,
)

__all__ = [
    "FOREIGN_TABLE_SOURCES",
    "TABLE_FORMATS",
    "TABLE_TYPES",
    "VOLUME_TYPES",
    "builtin_registry",
]
