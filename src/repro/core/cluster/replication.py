"""Replica groups: a replicated change log, lease-based follower reads,
and fenced leader failover for each shard of the catalog cluster.

Each shard of a :class:`~repro.core.cluster.cluster.CatalogCluster` is
upgraded from one :class:`UnityCatalogService` to a :class:`ReplicaGroup`:

* the **leader** accepts writes. Its metadata store is wrapped in a
  :class:`ReplicatingStore` that intercepts the CAS ``commit`` — after the
  inner store accepts the write, the committed ops are appended to the
  group's bounded :class:`ReplicatedChangeLog` (the same version/CAS
  contract the MVCC store already exposes, so the log *is* the change
  stream, not a second source of truth);
* **followers** replay log entries in version order into their own full
  service stack (store + cache node + fast-path caches) and serve
  lease-based reads: within a read lease a follower answers from its
  possibly-slightly-stale state; when the lease lapses — or a
  read-your-writes session demands a version the follower has not applied
  yet — it first catches up from the log (*wait*), and if it cannot, the
  router moves on to the next candidate (*proxy*);
* **failover** is deterministic and clock-driven: the leader holds a
  lease with seeded jittered expiry, renewed on every accepted write.
  When the leader is down *and* its lease has expired, the freshest live
  follower is promoted — but only after catching up to the end of the
  log, and only under a fencing token (the group **epoch**) that is
  checked on every write and 2PC leg, so a deposed leader's in-flight
  mutations are rejected with :class:`~repro.errors.FencingTokenError`
  instead of forking history;
* a **restored** replica re-enters the group as a follower: it drains the
  log, or — when the bounded log has been truncated past its cursor —
  rebuilds from the leader via ``changes_since`` snapshots, exactly the
  catch-up path a cold standby would use.

Locking order (outermost first): replica cache-node RLock →
``_commit_lock`` → group ``_lock`` → log lock. Follower application runs
under the replica's ``apply_lock`` with the wrapper in *applying* mode,
which bypasses fencing and logging (the entry is already in the log).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Any, Iterator, Optional

from repro.clock import Clock
from repro.core.persistence.store import MetadataStore, Tables, WriteOp
from repro.errors import (
    FencingTokenError,
    InvalidRequestError,
    LeaseExpiredError,
    NotFoundError,
    StorageUnavailableError,
    TransientError,
)

#: read preferences a dispatch may request (`_read_preference` kwarg)
READ_PREFERENCES = ("leader", "follower", "nearest_fresh")


@dataclass(frozen=True)
class LogEntry:
    """One replicated mutation: a slot creation or a committed CAS write."""

    index: int
    kind: str  # "slot" | "commit"
    metastore_id: str
    version: int
    ops: tuple[WriteOp, ...]


class ReplicatedChangeLog:
    """The leader's committed change stream, bounded to ``capacity``.

    Entries are indexed from 0 and never renumbered; truncation advances
    ``first_index`` so a follower whose cursor fell off the tail learns it
    must resync (``entries_since`` returns ``None``) instead of silently
    missing writes.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise InvalidRequestError("log capacity must be >= 1")
        self._capacity = capacity
        self._entries: deque[LogEntry] = deque()
        self._first = 0
        self._lock = threading.Lock()

    def append(self, kind: str, metastore_id: str, version: int,
               ops: tuple[WriteOp, ...]) -> LogEntry:
        with self._lock:
            entry = LogEntry(self._first + len(self._entries), kind,
                             metastore_id, version, tuple(ops))
            self._entries.append(entry)
            while len(self._entries) > self._capacity:
                self._entries.popleft()
                self._first += 1
            return entry

    def length(self) -> int:
        """The index one past the newest entry (0 when empty)."""
        with self._lock:
            return self._first + len(self._entries)

    @property
    def first_index(self) -> int:
        with self._lock:
            return self._first

    def entries_since(self, cursor: int) -> Optional[list[LogEntry]]:
        """Entries with index >= ``cursor``; ``None`` when the log has
        been truncated past the cursor (the caller must resync)."""
        with self._lock:
            if cursor < self._first:
                return None
            return list(self._entries)[cursor - self._first:]


class ReplicatingStore(MetadataStore):
    """A :class:`MetadataStore` wrapper that fences writes and feeds the
    group's change log.

    Reads delegate straight through. Writes (``commit`` and
    ``create_metastore_slot``) pass through the group, which checks the
    caller's fencing token and lease before touching the inner store and
    appends the committed entry to the log afterwards — unless the
    thread is in *applying* mode (follower replay / resync), where both
    the fence and the log are bypassed.
    """

    def __init__(self, inner: MetadataStore, group: "ReplicaGroup",
                 replica_name: str):
        self.inner = inner
        self._group = group
        self._replica_name = replica_name
        self._local = threading.local()

    @contextmanager
    def applying(self) -> Iterator[None]:
        """Mark this thread as replaying log entries (no fence, no log)."""
        self._local.applying = True
        try:
            yield
        finally:
            self._local.applying = False

    @property
    def is_applying(self) -> bool:
        return getattr(self._local, "applying", False)

    # -- writes (fenced + logged) ---------------------------------------

    def create_metastore_slot(self, metastore_id: str) -> None:
        if self.is_applying or not self._group.replicated:
            self.inner.create_metastore_slot(metastore_id)
            return
        self._group.slot_through(self._replica_name, self.inner, metastore_id)

    def commit(self, metastore_id: str, expected_version: int,
               ops: list[WriteOp]) -> int:
        if self.is_applying or not self._group.replicated:
            return self.inner.commit(metastore_id, expected_version, ops)
        return self._group.commit_through(
            self._replica_name, self.inner, metastore_id, expected_version, ops
        )

    # -- reads (pass-through) -------------------------------------------

    def metastore_ids(self) -> list[str]:
        return self.inner.metastore_ids()

    def current_version(self, metastore_id: str) -> int:
        return self.inner.current_version(metastore_id)

    def snapshot(self, metastore_id: str, at_version: Optional[int] = None):
        return self.inner.snapshot(metastore_id, at_version)

    def changes_since(self, metastore_id: str, from_version: int):
        return self.inner.changes_since(metastore_id, from_version)

    def compact(self, metastore_id: str, min_version: int) -> int:
        return self.inner.compact(metastore_id, min_version)

    def __getattr__(self, name: str) -> Any:
        # backend extras and diagnostics counters (read_count, …) that
        # benches and tests read off the raw store
        return getattr(self.inner, name)


class Replica:
    """One member of a replica group: a full service stack plus the
    group-side replication state (log cursor, fencing epoch, leases)."""

    __slots__ = ("index", "name", "worker", "store", "service", "breaker",
                 "applied", "crashed", "epoch", "lease_deadline", "apply_lock")

    def __init__(self, index: int, name: str, worker: str,
                 store: ReplicatingStore, service, breaker):
        self.index = index
        self.name = name
        #: serving-tier worker this replica's work runs on
        self.worker = worker
        self.store = store
        self.service = service
        self.breaker = breaker
        #: log index one past the newest applied entry
        self.applied = 0
        self.crashed = False
        #: fencing token held; writes require it to equal the group epoch
        self.epoch = 0
        #: follower read lease: reads past this must catch up first
        self.lease_deadline = 0.0
        #: serializes log replay / resync into this replica
        self.apply_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Replica({self.name!r}, applied={self.applied})"


@dataclass
class LeaderLease:
    """The write lease: who leads, under which epoch, until when."""

    holder: str
    epoch: int
    expires_at: float


class ReadSession:
    """Read-your-writes token: remembers, per (metastore, shard), the
    newest version this session has written; follower reads carrying the
    session never serve anything older."""

    def __init__(self):
        self._lock = threading.Lock()
        self._versions: dict[tuple[str, str], int] = {}

    def note_write(self, metastore_id: str, shard: str, version: int) -> None:
        with self._lock:
            key = (metastore_id, shard)
            if version > self._versions.get(key, 0):
                self._versions[key] = version

    def min_version(self, metastore_id: Optional[str],
                    shard: str) -> Optional[int]:
        if metastore_id is None:
            return None
        with self._lock:
            return self._versions.get((metastore_id, shard))


class ReplicaGroup:
    """Leader/followers for one shard, with fenced clock-driven failover."""

    def __init__(
        self,
        shard_name: str,
        *,
        clock: Clock,
        metrics=None,
        tracer=None,
        faults=None,
        lease_duration: float = 2.0,
        lease_jitter: float = 0.25,
        seed: int = 0,
        log_capacity: int = 4096,
    ):
        self.shard_name = shard_name
        self._clock = clock
        self._tracer = tracer
        self._faults = faults
        self._lease_duration = lease_duration
        self._lease_jitter = lease_jitter
        #: group-local RNG: lease jitter never perturbs any other stream
        self._rng = Random(seed)
        self.log = ReplicatedChangeLog(log_capacity)
        self._replicas: list[Replica] = []
        self._by_name: dict[str, Replica] = {}
        self._leader_index = 0
        #: the fencing token; promotion is the only thing that bumps it
        self._epoch = 1
        self._lease: Optional[LeaderLease] = None
        self._lock = threading.RLock()
        #: serializes inner-commit + log-append (and promotion) so log
        #: order always matches per-metastore version order
        self._commit_lock = threading.Lock()
        self._failovers = self._fenced = self._renewals = None
        self._log_entries = self._applied_metric = None
        if metrics is not None:
            self._failovers = metrics.counter(
                "uc_replica_failovers_total",
                "Leader failovers completed, by shard.",
                ("shard",),
            ).labels(shard=shard_name)
            self._fenced = metrics.counter(
                "uc_replica_fenced_writes_total",
                "Writes rejected for carrying a stale fencing token.",
                ("shard",),
            ).labels(shard=shard_name)
            self._renewals = metrics.counter(
                "uc_replica_lease_renewals_total",
                "Leader lease renewals, by shard.",
                ("shard",),
            ).labels(shard=shard_name)
            self._log_entries = metrics.counter(
                "uc_replica_log_entries_total",
                "Entries appended to the replicated change log.",
                ("shard",),
            ).labels(shard=shard_name)
            self._applied_metric = metrics.counter(
                "uc_replica_applied_entries_total",
                "Log entries applied by followers.",
                ("shard", "replica"),
            )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_replica(self, name: str, worker: str, store: ReplicatingStore,
                    service, breaker) -> Replica:
        with self._lock:
            replica = Replica(len(self._replicas), name, worker, store,
                              service, breaker)
            if replica.index == 0:
                replica.epoch = self._epoch
            self._replicas.append(replica)
            self._by_name[name] = replica
            return replica

    def seal(self) -> None:
        """Finish construction: grant the initial leader lease (only a
        multi-replica group needs one — and only then is the RNG drawn)."""
        with self._lock:
            if self.replicated:
                self._grant_lease_locked(self._replicas[self._leader_index])

    @property
    def replicated(self) -> bool:
        return len(self._replicas) > 1

    @property
    def replicas(self) -> list[Replica]:
        with self._lock:
            return list(self._replicas)

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def replica_named(self, name: str) -> Replica:
        with self._lock:
            try:
                return self._by_name[name]
            except KeyError:
                raise InvalidRequestError(
                    f"no replica {name!r} in shard {self.shard_name}"
                )

    def leader(self) -> Replica:
        """The current leader (no health or lease checks)."""
        with self._lock:
            return self._replicas[self._leader_index]

    # ------------------------------------------------------------------
    # the write path: fencing + lease + log
    # ------------------------------------------------------------------

    def _is_down(self, replica: Replica) -> bool:
        if replica.crashed:
            return True
        return self._faults is not None and self._faults.crashed(
            f"replica.{self.shard_name}.{replica.name}.serve"
        )

    def _grant_lease_locked(self, replica: Replica) -> None:
        duration = self._lease_duration * (
            1.0 + self._lease_jitter * self._rng.random()
        )
        self._lease = LeaderLease(replica.name, self._epoch,
                                  self._clock.now() + duration)

    def check_write(self, replica_name: str) -> None:
        """Gate one mutation: fencing token, liveness, lease renewal.

        Raises :class:`FencingTokenError` for a deposed leader (stale
        epoch), :class:`StorageUnavailableError` for a down leader, and
        :class:`LeaseExpiredError` when the lease lapsed and cannot be
        renewed (a lease-expiry storm keeps the renewal op throttled).
        """
        if not self.replicated:
            return
        with self._lock:
            replica = self._by_name[replica_name]
            leader = self._replicas[self._leader_index]
            if replica is not leader or replica.epoch != self._epoch:
                if self._fenced is not None:
                    self._fenced.inc()
                raise FencingTokenError(
                    f"replica {replica_name} of shard {self.shard_name} "
                    f"holds fencing token {replica.epoch} but the group is "
                    f"at epoch {self._epoch}: it is no longer the leader"
                )
            if self._is_down(replica):
                raise StorageUnavailableError(
                    f"shard {self.shard_name} leader {replica_name} is down"
                )
            if self._faults is not None:
                try:
                    self._faults.raise_for(
                        f"replica.{self.shard_name}.{replica_name}.lease.renew"
                    )
                except TransientError as exc:
                    lease = self._lease
                    if lease is None or lease.expires_at <= self._clock.now():
                        raise LeaseExpiredError(
                            f"shard {self.shard_name} leader lease expired "
                            "and renewal is failing",
                            retry_after_seconds=self._lease_duration,
                        ) from exc
                    # renewal failed but the current lease still covers
                    # this write; skip the renewal, accept the write
                    return
            self._grant_lease_locked(replica)
            if self._renewals is not None:
                self._renewals.inc()

    def commit_through(self, replica_name: str, inner: MetadataStore,
                       metastore_id: str, expected_version: int,
                       ops: list[WriteOp]) -> int:
        """Fence, commit on the inner store, append to the log — one
        critical section, so the log's entry order always matches the
        per-metastore version order and promotion can never interleave."""
        with self._commit_lock:
            self.check_write(replica_name)
            version = inner.commit(metastore_id, expected_version, ops)
            self.log.append("commit", metastore_id, version, tuple(ops))
            if self._log_entries is not None:
                self._log_entries.inc()
            return version

    def slot_through(self, replica_name: str, inner: MetadataStore,
                     metastore_id: str) -> None:
        with self._commit_lock:
            self.check_write(replica_name)
            inner.create_metastore_slot(metastore_id)
            self.log.append("slot", metastore_id, 0, ())
            if self._log_entries is not None:
                self._log_entries.inc()

    def leader_for_write(self) -> Replica:
        """The replica a mutation should be dispatched to.

        Runs the failover check first; if the leader is down and no
        successor can be promoted yet (lease unexpired, or no live
        follower), fails fast with :class:`LeaseExpiredError` — before
        any clock time is charged, so the write-unavailability window is
        exactly the lease window.
        """
        self.maybe_failover()
        with self._lock:
            leader = self._replicas[self._leader_index]
            if self.replicated and self._is_down(leader):
                lease = self._lease
                remaining = 0.0
                if lease is not None:
                    remaining = max(0.0, lease.expires_at - self._clock.now())
                raise LeaseExpiredError(
                    f"shard {self.shard_name} leader {leader.name} is down "
                    f"({remaining:.3f}s left on its lease; no successor yet)",
                    retry_after_seconds=remaining or self._lease_duration,
                )
            return leader

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def maybe_failover(self) -> bool:
        """Promote the freshest live follower if the leader is down and
        its lease has expired. Returns True when a promotion happened.

        Double-checked: the candidate catches up to the log *outside* the
        group state lock (applying takes the candidate's cache-node lock,
        which must never nest inside ours), then the promotion re-checks
        every precondition — epoch unchanged, leader still down, lease
        still expired, candidate alive and fully caught up — before
        bumping the epoch.
        """
        if not self.replicated:
            return False
        with self._lock:
            leader = self._replicas[self._leader_index]
            if not self._is_down(leader):
                return False
            lease = self._lease
            if lease is not None and self._clock.now() < lease.expires_at:
                return False
            epoch = self._epoch
            candidates = [r for r in self._replicas
                          if r is not leader and not self._is_down(r)]
            if not candidates:
                return False
            candidate = max(candidates, key=lambda r: (r.applied, -r.index))
        try:
            with candidate.apply_lock:
                self._drain(candidate)
        except TransientError:
            return False  # catch-up failed; retry on a later write
        with self._commit_lock:
            with self._lock:
                if self._epoch != epoch:
                    return False  # someone else promoted already
                leader = self._replicas[self._leader_index]
                if not self._is_down(leader):
                    return False
                lease = self._lease
                if lease is not None and self._clock.now() < lease.expires_at:
                    return False
                if self._is_down(candidate):
                    return False
                if candidate.applied < self.log.length():
                    return False  # new entries slipped in; try again later
                self._epoch += 1
                candidate.epoch = self._epoch
                self._leader_index = candidate.index
                self._grant_lease_locked(candidate)
                if self._failovers is not None:
                    self._failovers.inc()
                if self._tracer is not None:
                    with self._tracer.span(
                        "uc.replica.failover", shard=self.shard_name,
                        leader=candidate.name, epoch=self._epoch,
                    ):
                        pass
                return True

    def crash(self, replica_name: str) -> Replica:
        """Mark a replica down (test/bench hook; the fault injector's
        ``crash("replica.<shard>.<name>.serve")`` is the chaos-rule way)."""
        with self._lock:
            replica = self._by_name[replica_name]
            replica.crashed = True
            return replica

    def crash_leader(self) -> Replica:
        return self.crash(self.leader().name)

    def restore(self, replica_name: str) -> Replica:
        """Bring a crashed replica back as a follower: catch up from the
        log (or resync from the leader when the log was truncated past
        its cursor) *before* clearing the crashed flag, so it never
        serves a read from its pre-crash past."""
        with self._lock:
            replica = self._by_name[replica_name]
            if not replica.crashed:
                return replica
        with replica.apply_lock:
            self._drain(replica)
        with self._lock:
            replica.crashed = False
            replica.lease_deadline = 0.0  # first read must re-verify
            return replica

    # ------------------------------------------------------------------
    # the read path: leases + read-your-writes
    # ------------------------------------------------------------------

    def read_candidates(self, preference: str = "leader") -> list[Replica]:
        """Live replicas to try for a read, in preference order.

        ``leader`` (default): leader first, then followers. ``follower``:
        followers first (offload), leader as last resort.
        ``nearest_fresh``: by replication lag (the leader counts as lag
        0), ties broken by index. May be empty when every replica is
        down — the cluster then degrades to its stale-read cache.
        """
        if preference not in READ_PREFERENCES:
            raise InvalidRequestError(
                f"unknown read preference: {preference!r}"
            )
        with self._lock:
            leader = self._replicas[self._leader_index]
            live = [r for r in self._replicas if not self._is_down(r)]
            if preference == "nearest_fresh":
                log_len = self.log.length()
                return sorted(
                    live,
                    key=lambda r: (0 if r is leader
                                   else max(0, log_len - r.applied), r.index),
                )
            followers = [r for r in live if r is not leader]
            leader_live = [leader] if leader in live else []
            if preference == "follower":
                return followers + leader_live
            return leader_live + followers

    def check_read(self, replica: Replica, metastore_id: Optional[str],
                   min_version: Optional[int]) -> None:
        """Gate one read on ``replica``: liveness, read lease, session.

        A follower whose lease lapsed — or that has not yet applied the
        session's ``min_version`` — catches up from the log first
        (*wait*); if catch-up fails transiently the error propagates and
        the router falls through to the next candidate (*proxy*).
        """
        if not self.replicated:
            return
        if self._is_down(replica):
            raise StorageUnavailableError(
                f"replica {replica.name} of shard {self.shard_name} is down"
            )
        if self._faults is not None:
            self._faults.raise_for(
                f"replica.{self.shard_name}.{replica.name}.serve"
            )
        with self._lock:
            is_leader = replica is self._replicas[self._leader_index]
        if is_leader:
            return
        behind = self._behind(replica, metastore_id, min_version)
        if behind or self._clock.now() >= replica.lease_deadline:
            self._pull(replica)
            if self._behind(replica, metastore_id, min_version):
                raise StorageUnavailableError(
                    f"replica {replica.name} of shard {self.shard_name} "
                    f"cannot reach version {min_version} of {metastore_id}"
                )

    def _behind(self, replica: Replica, metastore_id: Optional[str],
                min_version: Optional[int]) -> bool:
        if metastore_id is None or min_version is None:
            return False
        try:
            return replica.store.inner.current_version(metastore_id) < min_version
        except NotFoundError:
            return True

    # ------------------------------------------------------------------
    # log replay
    # ------------------------------------------------------------------

    def replicate(self) -> None:
        """Stream new log entries to every live follower (called by the
        cluster after each mutation; a follower that fails transiently is
        skipped and will catch up on its next read)."""
        if not self.replicated:
            return
        with self._lock:
            leader = self._replicas[self._leader_index]
            targets = [r for r in self._replicas
                       if r is not leader and not self._is_down(r)]
        for replica in targets:
            try:
                self._pull(replica)
            except TransientError:
                continue

    def _pull(self, follower: Replica) -> None:
        """Catch ``follower`` up to the end of the log and renew its read
        lease. The fault injector can fail the pull (partitioned
        follower); the resulting transient propagates to the caller."""
        with follower.apply_lock:
            if self._faults is not None:
                self._faults.raise_for(
                    f"replica.{self.shard_name}.{follower.name}.pull"
                )
            self._drain(follower)
            follower.lease_deadline = self._clock.now() + self._lease_duration

    def _drain(self, replica: Replica) -> None:
        """Apply every log entry past the replica's cursor (caller holds
        ``apply_lock``); fall back to a full resync when the bounded log
        no longer reaches back to the cursor."""
        entries = self.log.entries_since(replica.applied)
        if entries is None:
            self._resync(replica)
            return
        for entry in entries:
            self._apply(replica, entry)
            replica.applied = entry.index + 1
            if self._applied_metric is not None:
                self._applied_metric.inc(shard=self.shard_name,
                                         replica=replica.name)

    def _apply(self, replica: Replica, entry: LogEntry) -> None:
        """Apply one log entry to a replica's store (idempotent: entries
        at or below the store's current version are skipped, which makes
        overlapping resync + replay safe)."""
        store = replica.store
        with store.applying():
            if entry.kind == "slot":
                try:
                    store.inner.current_version(entry.metastore_id)
                except NotFoundError:
                    store.inner.create_metastore_slot(entry.metastore_id)
                return
            current = store.inner.current_version(entry.metastore_id)
            if current >= entry.version:
                return
            node = replica.service.cache_node(entry.metastore_id)
            if node is not None and node.known_version == entry.version - 1:
                # write-through: the follower's cache node stays hot
                node.commit(list(entry.ops))
            else:
                store.inner.commit(entry.metastore_id, entry.version - 1,
                                   list(entry.ops))
                if node is not None:
                    node.reconcile()
        self._maybe_install(replica, entry)

    def _maybe_install(self, replica: Replica, entry: LogEntry) -> None:
        """A replicated metastore-root creation must also register the
        metastore with the follower's service (name → id map, cache node,
        fast-path bundle) — the follower never ran ``create_metastore``."""
        for op in entry.ops:
            if (op.table == Tables.ENTITIES and op.value is not None
                    and op.value.get("kind") == "METASTORE"):
                service = replica.service
                with service._lock:
                    if op.value["name"] not in service._metastore_names:
                        service._install_metastore(op.value["name"],
                                                   op.value["id"])

    def _resync(self, replica: Replica) -> None:
        """Rebuild a replica from the leader's store via ``changes_since``
        (the log was truncated past the replica's cursor). Commits are
        re-derived per version from pinned snapshots, so the replica ends
        byte-identical, version-for-version, with the leader."""
        with self._lock:
            source = self._replicas[self._leader_index]
        pre_len = self.log.length()
        src = source.store.inner
        dst = replica.store
        for metastore_id in src.metastore_ids():
            with dst.applying():
                try:
                    current = dst.inner.current_version(metastore_id)
                except NotFoundError:
                    dst.inner.create_metastore_slot(metastore_id)
                    current = 0
                by_version: dict[int, list] = {}
                for record in src.changes_since(metastore_id, current):
                    by_version.setdefault(record.version, []).append(record)
                for version in sorted(by_version):
                    snap = src.snapshot(metastore_id, version)
                    ops = []
                    for record in by_version[version]:
                        value = snap.get(record.table, record.key)
                        if record.deleted or value is None:
                            ops.append(WriteOp.delete(record.table, record.key))
                        else:
                            ops.append(WriteOp.put(record.table, record.key,
                                                   value))
                    dst.inner.commit(metastore_id, version - 1, ops)
                node = replica.service.cache_node(metastore_id)
                if node is not None:
                    node.reconcile()
            root = src.snapshot(metastore_id).get(Tables.ENTITIES, metastore_id)
            if root is not None and root.get("kind") == "METASTORE":
                service = replica.service
                with service._lock:
                    if root["name"] not in service._metastore_names:
                        service._install_metastore(root["name"], metastore_id)
        # overlap with entries logged mid-resync is absorbed by the
        # idempotent version check in _apply
        replica.applied = pre_len

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def status(self) -> list[dict]:
        """Per-replica role/lag/liveness (scrape-time, also test hook)."""
        with self._lock:
            leader = self._replicas[self._leader_index]
            log_len = self.log.length()
            return [
                {
                    "replica": r.name,
                    "role": "leader" if r is leader else "follower",
                    "lag": 0 if r is leader else max(0, log_len - r.applied),
                    "crashed": r.crashed,
                    "epoch": r.epoch,
                }
                for r in self._replicas
            ]


__all__ = [
    "LeaderLease",
    "LogEntry",
    "READ_PREFERENCES",
    "ReadSession",
    "Replica",
    "ReplicaGroup",
    "ReplicatedChangeLog",
    "ReplicatingStore",
]
