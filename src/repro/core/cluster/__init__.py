"""Sharded catalog cluster: routing, two-phase commit, rebalancing."""

from repro.core.cluster.cluster import CatalogCluster, ShardNode
from repro.core.cluster.rebalance import (
    CatalogMigration,
    SubtreeExport,
    export_subtree,
)
from repro.core.cluster.replication import (
    ReadSession,
    Replica,
    ReplicaGroup,
    ReplicatedChangeLog,
    ReplicatingStore,
)
from repro.core.cluster.routing import ShardRouter, route_key
from repro.core.cluster.twophase import (
    CatalogMove,
    TwoPhaseCoordinator,
    TxnRecord,
)

__all__ = [
    "CatalogCluster",
    "CatalogMigration",
    "CatalogMove",
    "ReadSession",
    "Replica",
    "ReplicaGroup",
    "ReplicatedChangeLog",
    "ReplicatingStore",
    "ShardNode",
    "ShardRouter",
    "SubtreeExport",
    "TwoPhaseCoordinator",
    "TxnRecord",
    "export_subtree",
    "route_key",
]
