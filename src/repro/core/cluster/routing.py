"""Shard routing: catalog route keys to owning shard nodes.

The router wraps the best-effort :class:`~repro.core.sharding.ShardingService`
(rendezvous hashing + explicit pins) with the two pieces of state the
cluster needs on every request:

* the composite route key — ``{metastore_id}:{catalog}`` — so two
  metastores that both own a catalog called ``sales`` shard
  independently, and a pin or fence on one never moves the other;
* cutover **fences**: while a catalog subtree migrates between shards,
  its key is fenced. Reads keep flowing to the source shard (the copy is
  not authoritative yet); a write arriving at a fenced key *cooperates*
  — it completes the migration's cutover first, then lands on the new
  owner. Single writers therefore never observe an error during a
  rebalance, which is the "readable throughout, writable modulo one
  cutover" contract the rebalance tests pin down.
"""

from __future__ import annotations

import threading
from typing import Optional, Protocol

from repro.core.cluster.replication import READ_PREFERENCES
from repro.core.sharding import ShardingService
from repro.errors import InvalidRequestError


class _Completable(Protocol):  # a CatalogMigration, structurally
    def complete(self) -> None: ...


def route_key(metastore_id: str, catalog_key: str) -> str:
    """The composite sharding key for one catalog of one metastore."""
    return f"{metastore_id}:{catalog_key}"


class ShardRouter:
    """Maps route keys to shard names; tracks pins and cutover fences.

    ``read_preference`` is the cluster-wide default for which replica of
    a shard's group serves a read — ``leader`` (strongest), ``follower``
    (offload the leader), or ``nearest_fresh`` (lowest replication lag).
    A single dispatch can override it with the ``_read_preference``
    kwarg.
    """

    def __init__(self, shard_names: list[str],
                 read_preference: str = "leader"):
        if read_preference not in READ_PREFERENCES:
            raise InvalidRequestError(
                f"unknown read preference: {read_preference!r} "
                f"(expected one of {', '.join(READ_PREFERENCES)})"
            )
        self._sharding = ShardingService()
        for name in shard_names:
            self._sharding.add_node(name)
        self.read_preference = read_preference
        #: guards the fence table; parallel writers racing a cutover must
        #: each observe either the fence or the post-cutover routing
        self._lock = threading.Lock()
        self._fences: dict[str, _Completable] = {}

    @property
    def sharding(self) -> ShardingService:
        return self._sharding

    def owner_for(self, metastore_id: str, catalog_key: str) -> str:
        return self._sharding.owner_of(route_key(metastore_id, catalog_key))

    def pin(self, metastore_id: str, catalog_key: str, shard_name: str) -> None:
        self._sharding.pin(route_key(metastore_id, catalog_key), shard_name)

    def unpin(self, metastore_id: str, catalog_key: str) -> None:
        self._sharding.unpin(route_key(metastore_id, catalog_key))

    # -- cutover fences --------------------------------------------------

    def fence(self, metastore_id: str, catalog_key: str,
              migration: _Completable) -> None:
        with self._lock:
            self._fences[route_key(metastore_id, catalog_key)] = migration

    def unfence(self, metastore_id: str, catalog_key: str) -> None:
        with self._lock:
            self._fences.pop(route_key(metastore_id, catalog_key), None)

    def fence_for(self, metastore_id: str,
                  catalog_key: str) -> Optional[_Completable]:
        with self._lock:
            return self._fences.get(route_key(metastore_id, catalog_key))

    def resolve_for_write(self, metastore_id: str, catalog_key: str) -> str:
        """The shard a *write* should land on: completes any in-flight
        migration of the key first (cooperative cutover), then routes."""
        fence = self.fence_for(metastore_id, catalog_key)
        if fence is not None:
            fence.complete()
        return self.owner_for(metastore_id, catalog_key)
