"""A sharded Unity Catalog cluster.

``CatalogCluster`` partitions securables across N shard nodes by
**catalog**: a securable's route key is the first segment of its full
name, hashed through the best-effort sharding directory (rendezvous
hashing + explicit pins). Each shard is a complete
:class:`~repro.core.service.catalog_service.UnityCatalogService` with
its own metadata store, cache node and fast-path caches; the cluster
owns what spans shards:

* **routing** — every endpoint declares its placement via the
  :class:`~repro.core.service.registry.ClusterBinding` on its
  descriptor; the cluster interprets the resulting
  :class:`~repro.core.service.registry.RouteDecision` generically
  (single shard, home, scatter-gather, broadcast, probe, partition,
  catalog move);
* **replication** — metastore-scope state (the metastore root,
  credentials, locations, connections, shares, recipients, lineage,
  metastore-scope policies) is broadcast to every shard under the
  two-phase coordinator, so each shard can validate and authorize
  locally;
* **degradation** — every shard sits behind a circuit breaker; when a
  shard goes dark, ``stale_ok`` reads fall back to the router's
  last-known-good response cache instead of erroring, while writes fail
  fast with the breaker's retryable error;
* **invalidation** — after any cross-shard mutation the cluster relays
  the involved shards' change events onto a cluster-wide bus and drops
  the stale-read entries for those shards.
"""

from __future__ import annotations

import inspect
import threading
from typing import Any, Callable, Iterator, Optional

from repro.clock import Clock, SimClock
from repro.cloudstore.object_store import ObjectStore
from repro.cloudstore.sts import StsTokenIssuer
from repro.core.auth.principals import PrincipalDirectory
from repro.core.events import ChangeEventBus
from repro.core.model.entity import Entity, new_entity_id
from repro.core.persistence.memory import InMemoryMetadataStore
from repro.core.persistence.store import MetadataStore, Tables
from repro.core.service.catalog_service import UnityCatalogService
from repro.core.service.pipeline import extract_branch_params
from repro.core.service.qos import QosConfig, QosScheduler, work_snapshot
from repro.core.service.registry import (
    ClusterBinding,
    EndpointDescriptor,
    RouteDecision,
)
from repro.errors import (
    CircuitOpenError,
    InvalidRequestError,
    NotFoundError,
    PartialBroadcastError,
    StorageUnavailableError,
    TransientError,
)
from repro.obs import Observability
from repro.resilience import CircuitBreaker, Retrier, RetryPolicy, charge

from .rebalance import CatalogMigration
from .replication import ReadSession, ReplicaGroup, ReplicatingStore
from .routing import ShardRouter
from .twophase import CatalogMove, TwoPhaseCoordinator


def _freeze(value: Any) -> Any:
    """A hashable rendering of request params (stale-read cache keys)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(v) for v in value))
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


class ShardNode:
    """One shard: a replica group of full catalog services.

    ``service`` and ``breaker`` resolve to the *current leader's*, so
    every existing call site (2PC legs, probes, migrations) follows a
    failover transparently; reads may additionally fan out over the
    group's followers via the cluster's read path.
    """

    __slots__ = ("name", "group")

    def __init__(self, name: str, group: ReplicaGroup):
        self.name = name
        self.group = group

    @property
    def service(self) -> UnityCatalogService:
        return self.group.leader().service

    @property
    def breaker(self) -> CircuitBreaker:
        return self.group.leader().breaker

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardNode({self.name!r})"


class CatalogCluster:
    """N catalog shards behind one request router."""

    def __init__(
        self,
        shard_count: int = 1,
        *,
        clock: Optional[Clock] = None,
        store_factory: Optional[Callable[[int], MetadataStore]] = None,
        directory: Optional[PrincipalDirectory] = None,
        obs: Optional[Observability] = None,
        faults=None,
        retry_policy: Optional[RetryPolicy] = None,
        enable_cache: bool = True,
        enable_fast_path: Optional[bool] = None,
        read_version_check: bool = False,
        request_timeout: Optional[float] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: float = 30.0,
        breaker_half_open_max_probes: int = 1,
        stale_cache_size: int = 1024,
        replicas_per_shard: int = 1,
        read_preference: str = "leader",
        lease_duration: float = 2.0,
        lease_jitter: float = 0.25,
        replica_log_capacity: int = 4096,
        txn_log_retention: int = 1024,
        qos=None,
    ):
        if shard_count < 1:
            raise InvalidRequestError("shard_count must be >= 1")
        if replicas_per_shard < 1:
            raise InvalidRequestError("replicas_per_shard must be >= 1")
        self.clock = clock or SimClock()
        self.obs = obs or Observability(clock=self.clock)
        self.faults = faults
        self.directory = directory or PrincipalDirectory()
        self.retry_policy = retry_policy or RetryPolicy()
        metrics = self.obs.metrics
        # shared dependencies: one object store and one STS issuer, so a
        # subtree migrated between shards keeps governing the same data
        self.object_store = ObjectStore(faults=faults)
        self.sts = StsTokenIssuer(
            clock=self.clock, faults=faults,
            retrier=Retrier(self.retry_policy, self.clock, metrics=metrics,
                            tracer=self.obs.tracer, component="sts",
                            seed=0x57A7),
        )
        # a 1-arg factory is called once per replica (each call must
        # return a fresh store); a 2-arg factory also sees the replica
        # index, for backends that need distinct paths per replica
        factory_arity = 0
        if store_factory is not None:
            try:
                factory_arity = len(
                    inspect.signature(store_factory).parameters
                )
            except (TypeError, ValueError):  # pragma: no cover - builtins
                factory_arity = 1
        self._shards: list[ShardNode] = []
        for index in range(shard_count):
            name = f"shard-{index}"
            group = ReplicaGroup(
                name,
                clock=self.clock,
                metrics=metrics,
                tracer=self.obs.tracer,
                faults=faults,
                lease_duration=lease_duration,
                lease_jitter=lease_jitter,
                seed=0x1EA5E ^ (index * 0x9E37),
                log_capacity=replica_log_capacity,
            )
            for rindex in range(replicas_per_shard):
                rname = f"r{rindex}"
                if store_factory is None:
                    inner = InMemoryMetadataStore()
                elif factory_arity >= 2:
                    inner = store_factory(index, rindex)
                else:
                    inner = store_factory(index)
                wrapped = ReplicatingStore(inner, group, rname)
                service = UnityCatalogService(
                    store=wrapped,
                    directory=self.directory,
                    clock=self.clock,
                    object_store=self.object_store,
                    sts=self.sts,
                    obs=Observability(clock=self.clock),
                    retry_policy=self.retry_policy,
                    faults=faults,
                    enable_cache=enable_cache,
                    enable_fast_path=enable_fast_path,
                    read_version_check=read_version_check,
                    request_timeout=request_timeout,
                )
                breaker = CircuitBreaker(
                    self.clock,
                    failure_threshold=breaker_failure_threshold,
                    reset_timeout=breaker_reset_timeout,
                    metrics=metrics,
                    name=(f"shard.{name}" if rindex == 0
                          else f"shard.{name}.{rname}"),
                    failure_types=(TransientError,),
                    half_open_max_probes=breaker_half_open_max_probes,
                )
                # replica 0 serves on the shard's own worker so worker
                # placement (and worker_wrap hooks) stay shard-keyed
                worker = name if rindex == 0 else f"{name}:{rname}"
                group.add_replica(rname, worker, wrapped, service, breaker)
            group.seal()
            self._shards.append(ShardNode(name, group))
        self._by_name = {shard.name: shard for shard in self._shards}
        self.router = ShardRouter([shard.name for shard in self._shards],
                                  read_preference=read_preference)
        # one cluster-wide scheduler, one lane per shard: a tenant's
        # token bucket is global (scatter fan-outs charge once), while
        # queue accounting — depth bounds, DRR drains, saturation — is
        # per shard lane. Shard services are built with qos=None above,
        # so admission happens exactly once, here at the router.
        if isinstance(qos, QosConfig):
            qos = QosScheduler(
                qos, self.clock, metrics=metrics,
                lanes=[shard.name for shard in self._shards],
            ) if qos.enabled else None
        self.qos = qos
        self.coordinator = TwoPhaseCoordinator(
            self.clock, metrics=metrics, log_retention=txn_log_retention
        )
        self.events = ChangeEventBus()
        #: last-known-good responses for ``stale_ok`` reads, keyed by
        #: (shard, api, frozen params); consulted only when the owning
        #: shard is dark. LRU-bounded (insertion order + touch-on-use):
        #: a long-lived read-heavy router must not accumulate one entry
        #: per principal/param shape forever.
        self._stale: dict[tuple, Any] = {}
        self._stale_cache_size = max(1, stale_cache_size)
        #: guards the stale-read LRU — touched from every dispatching
        #: thread once a serving runtime fans requests out in parallel
        self._lock = threading.Lock()
        #: optional parallel serving runtime (see :mod:`repro.serve`);
        #: ``None`` keeps dispatch sequential and deterministic
        self._runtime = None
        # a dedicated retrier so shard-dispatch retry jitter never
        # perturbs the shards' own storage/STS retry streams
        self._retrier = Retrier(self.retry_policy, self.clock,
                                metrics=metrics, tracer=self.obs.tracer,
                                component="shard", seed=0x5AAD)
        self._requests = metrics.counter(
            "uc_shard_requests_total",
            "Requests dispatched to shards, by shard and routing mode.",
            ("shard", "mode"),
        )
        self._fanout = metrics.counter(
            "uc_shard_fanout_total",
            "Requests fanned out to multiple shards, by routing mode.",
            ("mode",),
        )
        self._stale_reads = metrics.counter(
            "uc_shard_stale_reads_total",
            "Reads served from the last-known-good cache (shard dark).",
            ("shard",),
        )
        self._invalidations = metrics.counter(
            "uc_shard_invalidation_events_total",
            "Cross-shard invalidation events relayed, by source shard.",
            ("shard",),
        )
        self._migration_stages = metrics.counter(
            "uc_shard_migrations_total",
            "Rebalance migration steps completed, by stage.",
            ("stage",),
        )
        self._replica_reads = metrics.counter(
            "uc_replica_reads_total",
            "Reads served per replica, by its role at serving time.",
            ("shard", "replica", "role"),
        )
        metrics.register_collector(self._collect_placement)
        metrics.register_collector(self._collect_replicas)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    @property
    def shards(self) -> list[ShardNode]:
        return list(self._shards)

    @property
    def home(self) -> ShardNode:
        """The home shard: metastore-scope reads are answered here."""
        return self._shards[0]

    def shard_named(self, name: str) -> ShardNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise InvalidRequestError(f"no such shard: {name}")

    def shard_count(self) -> int:
        return len(self._shards)

    def worker_names(self) -> list[str]:
        """Serving-tier worker names: one per replica (replica 0 of each
        shard keeps the shard's own name, so shard-keyed placement and
        ``worker_wrap`` hooks are unchanged for single-replica clusters)."""
        return [replica.worker for shard in self._shards
                for replica in shard.group.replicas]

    def read_session(self) -> ReadSession:
        """A read-your-writes session token: pass it to :meth:`dispatch`
        as ``_session`` and follower reads will never serve state older
        than the session's last write."""
        return ReadSession()

    def metastore_id(self, name: str) -> str:
        return self.home.service.metastore_id(name)

    def count_migration_stage(self, stage: str) -> None:
        self._migration_stages.labels(stage=stage).inc()

    # ------------------------------------------------------------------
    # serving runtime
    # ------------------------------------------------------------------

    def attach_runtime(self, runtime) -> None:
        """Install a parallel serving runtime (:mod:`repro.serve`).

        With a runtime attached, per-shard work executes on that shard's
        dedicated worker and scatter/broadcast fan-outs dispatch
        concurrently and join. Without one (the default), dispatch stays
        sequential and deterministic — simulated benches and the
        enumerated-interleaving tests rely on that.
        """
        self._runtime = runtime

    def detach_runtime(self) -> None:
        self._runtime = None

    def run_on_shard(self, name: str, fn: Callable[[], Any]) -> Any:
        """Execute ``fn`` on the named shard's worker (inline when no
        runtime is attached, or when already on that shard's worker)."""
        runtime = self._runtime
        if runtime is None:
            return fn()
        return runtime.run_on(name, fn)

    def _run_fanout(self, tasks, *, stop_on_error: bool = False):
        """Run ``(shard_name, thunk)`` tasks, returning ordered
        ``(ok, value_or_exc)`` pairs.

        Sequential without a runtime — short-circuiting after the first
        failure when ``stop_on_error`` so partial-broadcast semantics
        match the single-threaded cluster exactly. With a runtime, every
        task is submitted to its shard's worker up front and joined in
        task order; all legs run even if an early one fails, but the
        caller still sees failures in deterministic task order.
        """
        runtime = self._runtime
        if runtime is None:
            outcomes = []
            for name, thunk in tasks:
                try:
                    outcomes.append((True, thunk()))
                except Exception as exc:
                    outcomes.append((False, exc))
                    if stop_on_error:
                        break
            return outcomes
        futures = [runtime.submit_on(name, thunk) for name, thunk in tasks]
        outcomes = []
        for future in futures:
            try:
                outcomes.append((True, future.result()))
            except Exception as exc:
                outcomes.append((False, exc))
        return outcomes

    def _collect_placement(self) -> Iterator[tuple[str, dict, float]]:
        """Scrape-time export: active catalogs resident on each shard."""
        for shard in self._shards:
            count = 0
            for mid in shard.service.metastore_ids():
                snapshot = shard.service.store.snapshot(mid)
                # catalogs hang directly off the metastore root, so a
                # tree-indexed backend answers with one range count
                indexed = snapshot.count_children(mid, "CATALOG")
                if indexed is not None:
                    count += indexed
                else:
                    count += sum(
                        1 for _, value in snapshot.scan(Tables.ENTITIES)
                        if value.get("kind") == "CATALOG"
                        and value.get("state") == "ACTIVE"
                    )
            yield ("uc_shard_catalogs", {"shard": shard.name}, float(count))

    def _collect_replicas(self) -> Iterator[tuple[str, dict, float]]:
        """Scrape-time export of replica-group health (only when shards
        actually run replicated — single-replica clusters stay silent)."""
        for shard in self._shards:
            if not shard.group.replicated:
                continue
            for status in shard.group.status():
                labels = {"shard": shard.name, "replica": status["replica"]}
                yield ("uc_replica_role", labels,
                       1.0 if status["role"] == "leader" else 0.0)
                yield ("uc_replica_lag_entries", labels,
                       float(status["lag"]))
                yield ("uc_replica_crashed", labels,
                       1.0 if status["crashed"] else 0.0)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def dispatch(self, api: str, **params: Any) -> Any:
        """Route one endpoint call to the shard(s) that own its state.

        Two reserved kwargs thread replica-read semantics through without
        touching endpoint signatures: ``_session`` (a
        :class:`~repro.core.cluster.replication.ReadSession`, giving the
        caller read-your-writes across follower reads) and
        ``_read_preference`` (``leader`` / ``follower`` /
        ``nearest_fresh``, overriding the router's default for this call).
        """
        session = params.pop("_session", None)
        preference = params.pop("_read_preference", None)
        qos_class = params.pop("_qos_class", None)
        # normalize catalog@branch name suffixes BEFORE placement, so the
        # route key is the plain catalog and the branch context travels as
        # the explicit reserved kwarg to whichever shard owns the catalog
        branch = extract_branch_params(params)
        if branch is not None:
            params["_branch"] = branch
        descriptor = self.home.service.api_registry.get(api)
        binding = descriptor.cluster
        decision = binding.plan(params) if binding is not None \
            else RouteDecision.home()
        # QoS admission happens once per *logical* request, here at the
        # router, with the involved shards as lanes — a scatter fan-out
        # charges the tenant's (global) bucket once, split across lanes
        grant = None
        involved: Optional[list[ShardNode]] = None
        if self.qos is not None and self.qos.enabled:
            lanes = self._qos_lanes(decision, descriptor, params)
            involved = ([self._by_name[name] for name in lanes]
                        if lanes is not None else list(self._shards))
            grant = self.qos.acquire(
                params.get(descriptor.principal_param), api,
                mutation=descriptor.mutation,
                requested_class=qos_class, lanes=lanes,
            )
            if grant.wait > 0:
                charge(self.clock, grant.wait)
            before = [work_snapshot(shard.service) for shard in involved]
        try:
            result = self._route_decision(
                api, descriptor, binding, decision, params,
                session, preference,
            )
        finally:
            if grant is not None:
                after = [work_snapshot(shard.service) for shard in involved]
                measured = sum(
                    self.qos.config.measured_cost(b, a)
                    for b, a in zip(before, after)
                ) - (len(involved) - 1) * self.qos.config.cost_base
                self.qos.settle(grant, measured)
        return result

    def _qos_lanes(self, decision, descriptor,
                   params: dict[str, Any]) -> Optional[list[str]]:
        """Lane names (shards) a routed request will occupy; None = all."""
        if decision.kind == "home":
            return [self.home.name]
        if decision.kind == "catalog":
            shard = self._shard_for_key(params["metastore_id"],
                                        decision.key,
                                        write=descriptor.mutation)
            return [shard.name]
        # scatter / broadcast / probe / partition / move touch (up to)
        # every shard — charge each lane its share
        return None

    def _route_decision(self, api, descriptor, binding, decision,
                        params, session, preference):
        with self.obs.tracer.span("uc.shard.dispatch", api=api,
                                  mode=decision.kind):
            if decision.kind == "home":
                return self._single(self.home, descriptor, binding, params,
                                    mode="home", session=session,
                                    preference=preference)
            if decision.kind == "catalog":
                shard = self._shard_for_key(params["metastore_id"],
                                            decision.key,
                                            write=descriptor.mutation)
                return self._single(shard, descriptor, binding, params,
                                    mode="catalog", session=session,
                                    preference=preference)
            if decision.kind == "scatter":
                return self._scatter(descriptor, binding, params, decision,
                                     session, preference)
            if decision.kind == "broadcast":
                return self._broadcast(descriptor, binding, params, session)
            if decision.kind == "probe":
                return self._probe(descriptor, binding, params, decision,
                                   session, preference)
            if decision.kind == "partition":
                return self._partition(descriptor, binding, params, decision,
                                       session, preference)
            if decision.kind == "move":
                return CatalogMove(
                    self, params["metastore_id"], params["principal"],
                    decision.key, decision.new_key,
                ).execute()
            raise InvalidRequestError(
                f"unknown route decision: {decision.kind}"
            )  # pragma: no cover - registry invariant

    def _shard_for_key(self, metastore_id: str, key: str,
                       write: bool) -> ShardNode:
        if write:
            return self.shard_named(
                self.router.resolve_for_write(metastore_id, key)
            )
        return self.shard_named(self.router.owner_for(metastore_id, key))

    def _single(self, shard: ShardNode, descriptor: EndpointDescriptor,
                binding: Optional[ClusterBinding], params: dict,
                mode: str, session=None, preference=None) -> Any:
        """Dispatch to one shard: mutations go to the replica group's
        fenced leader, reads walk the group's read candidates and —
        when every replica is dark — ``stale_ok`` reads degrade to the
        last-known-good response."""
        self._requests.labels(shard=shard.name, mode=mode).inc()
        if descriptor.mutation:
            return self._write_single(shard, descriptor, params, session)
        return self._read_single(shard, descriptor, binding, params,
                                 session, preference)

    def _write_single(self, shard: ShardNode,
                      descriptor: EndpointDescriptor, params: dict,
                      session) -> Any:
        """One-shard mutation: dispatched to the current leader, whose
        store-level fencing token rejects it if leadership moved while it
        was in flight. When the leader is down and no successor can be
        promoted yet, this fails fast with ``LeaseExpiredError`` — the
        write-unavailability window is the lease window, not a retry
        budget. Mutations are never replayed by the router: the shard's
        own commit loop absorbs transient store faults, and a
        router-level replay could double-apply."""
        leader = shard.group.leader_for_write()

        def attempt():
            if self.faults is not None:
                self.faults.raise_for(f"shard.{shard.name}.dispatch")
            return leader.service.dispatch(descriptor.name, **params)

        def guarded():
            return leader.breaker.call(attempt)

        # with a serving runtime attached, the work runs on the leader
        # replica's dedicated worker thread
        result = self.run_on_shard(leader.worker, guarded)
        self.after_mutation([shard], params.get("metastore_id"),
                            session=session)
        return result

    def _read_single(self, shard: ShardNode,
                     descriptor: EndpointDescriptor,
                     binding: Optional[ClusterBinding], params: dict,
                     session, preference) -> Any:
        """One-shard read over the replica group.

        Candidates are tried in preference order; each gets the shard
        retrier's full transient budget (for a single-replica group this
        is byte-identical to the pre-replication read path). A follower
        candidate first passes the group's read-lease / read-your-writes
        check — waiting (catching up from the log) when it is behind, and
        failing over to the next candidate (proxy) when it cannot.
        """
        group = shard.group
        stale_ok = binding is not None and binding.stale_ok
        stale_key = (
            (shard.name, descriptor.name, _freeze(params)) if stale_ok else None
        )
        metastore_id = params.get("metastore_id")
        min_version = (session.min_version(metastore_id, shard.name)
                       if session is not None else None)
        candidates = group.read_candidates(
            preference or self.router.read_preference
        )
        last_exc: Optional[TransientError] = None
        for replica in candidates:
            def attempt(replica=replica):
                if self.faults is not None:
                    self.faults.raise_for(f"shard.{shard.name}.dispatch")
                group.check_read(replica, metastore_id, min_version)
                return replica.service.dispatch(descriptor.name, **params)

            def guarded(replica=replica, attempt=attempt):
                return replica.breaker.call(attempt)

            def placed(replica=replica, guarded=guarded):
                return self.run_on_shard(replica.worker, guarded)

            try:
                result = self._retrier.call(placed, retryable=_retryable)
            except TransientError as exc:
                last_exc = exc
                continue
            if group.replicated:
                role = ("leader" if replica is group.leader()
                        else "follower")
                self._replica_reads.labels(
                    shard=shard.name, replica=replica.name, role=role,
                ).inc()
            if stale_key is not None:
                self._stale_put(stale_key, result)
            return result
        # every candidate failed (or none was live): a stale_ok read
        # serves the last known good answer instead of surfacing the
        # outage
        if stale_key is not None:
            hit, value = self._stale_touch(stale_key)
            if hit:
                self._stale_reads.labels(shard=shard.name).inc()
                return value
        if last_exc is not None:
            raise last_exc
        raise StorageUnavailableError(
            f"shard {shard.name}: no live replicas"
        )

    def _stale_touch(self, key: tuple) -> tuple[bool, Any]:
        """Serve a cached answer (moving it to the LRU tail) if present.
        The lookup and touch are one critical section — another thread
        may evict the key between a bare check and the pop."""
        with self._lock:
            if key not in self._stale:
                return False, None
            value = self._stale.pop(key)
            self._stale[key] = value
            return True, value

    def _stale_put(self, key: tuple, value: Any) -> None:
        with self._lock:
            self._stale.pop(key, None)
            self._stale[key] = value
            while len(self._stale) > self._stale_cache_size:
                self._stale.pop(next(iter(self._stale)))

    def _scatter(self, descriptor, binding, params, decision,
                 session=None, preference=None) -> Any:
        self._fanout.labels(mode="scatter").inc()
        tasks = [
            (shard.name,
             lambda shard=shard: self._single(shard, descriptor, binding,
                                              params, mode="scatter",
                                              session=session,
                                              preference=preference))
            for shard in self._shards
        ]
        outcomes = self._run_fanout(tasks, stop_on_error=True)
        results = []
        for ok, value in outcomes:
            if not ok:
                raise value
            results.append(value)
        return decision.merge(results, params)

    def _broadcast(self, descriptor, binding, params, session=None) -> Any:
        """A replicated write: prepare on the home shard (full
        validation), commit on the rest. Ids are pre-minted so every
        shard stores identical rows. Every per-shard leg lands on that
        shard's *leader*, whose fencing token is checked at commit time."""
        if binding is not None:
            for mint in binding.mint_params:
                params.setdefault(mint, new_entity_id())
        target = params.get(descriptor.target_param or "", descriptor.name)
        txn = self.coordinator.begin(
            "broadcast", descriptor.name,
            keys=(f"broadcast:{descriptor.name}:{target}",),
            participants=tuple(shard.name for shard in self._shards),
        )
        self._fanout.labels(mode="broadcast").inc()
        try:
            self._requests.labels(shard=self.home.name, mode="broadcast").inc()
            home_leader = self.home.group.leader()
            result = self.run_on_shard(
                home_leader.worker,
                lambda: home_leader.service.dispatch(descriptor.name,
                                                     **params),
            )
        except Exception as exc:
            self.coordinator.abort(txn, f"{type(exc).__name__}: {exc}")
            raise
        # create_metastore mints its metastore id into params; every other
        # replicated write carries it, but fall back to the result in case
        # a future binding mints something else
        metastore_id = params.get("metastore_id") or getattr(
            result, "metastore_id", None
        )
        replicas = self._shards[1:]

        def leg(shard: ShardNode):
            self._requests.labels(shard=shard.name, mode="broadcast").inc()
            return shard.service.dispatch(descriptor.name, **params)

        outcomes = self._run_fanout(
            [(shard.group.leader().worker, lambda shard=shard: leg(shard))
             for shard in replicas],
            stop_on_error=True,
        )
        applied = [self.home]
        failure: Optional[tuple[ShardNode, Exception]] = None
        for shard, (ok, value) in zip(replicas, outcomes):
            if ok:
                applied.append(shard)
            elif failure is None:
                failure = (shard, value)
        if failure is not None:
            # the home shard (and possibly other replicas) committed but
            # this one did not. Roll nothing back — the applied writes
            # are durable — but abort the txn so its key lock is released
            # (later broadcasts of the key must not wedge), put the
            # partial state on the transaction record, relay the applied
            # shards' events, and surface the divergence as an explicit,
            # non-retryable error.
            shard, exc = failure
            txn.details.update(
                applied=tuple(s.name for s in applied),
                failed=shard.name,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.coordinator.abort(
                txn,
                f"partial commit: replica {shard.name} failed after "
                f"{len(applied)} shard(s): {type(exc).__name__}: {exc}",
            )
            self.after_mutation(applied, metastore_id, session=session)
            raise PartialBroadcastError(
                f"{descriptor.name}: replica {shard.name} failed after "
                f"the write applied on "
                f"{', '.join(s.name for s in applied)}: {exc}"
            ) from exc
        self.coordinator.commit(txn)
        self.after_mutation(self._shards, metastore_id, session=session)
        return result

    def _probe(self, descriptor, binding, params, decision,
               session=None, preference=None) -> Any:
        """Dispatch to the shard(s) whose local state recognises the
        request; fall back to the home shard when none do, so the caller
        gets the canonical error and exactly one error audit record."""
        self._fanout.labels(mode="probe").inc()
        metastore_id = params["metastore_id"]
        matches = [
            shard for shard in self._shards
            if decision.probe(shard.service.view(metastore_id), params)
        ]
        if not matches:
            return self._single(self.home, descriptor, binding, params,
                                mode="probe", session=session,
                                preference=preference)
        if not decision.all_matches:
            return self._single(matches[0], descriptor, binding, params,
                                mode="probe", session=session,
                                preference=preference)
        result = None
        for shard in matches:
            result = self._single(shard, descriptor, binding, params,
                                  mode="probe", session=session,
                                  preference=preference)
        return result

    def _partition(self, descriptor, binding, params, decision,
                   session=None, preference=None) -> Any:
        """Split a multi-name request into per-catalog sub-requests."""
        sub_params = decision.split(params)
        if not sub_params:
            return self._single(self.home, descriptor, binding, params,
                                mode="partition", session=session,
                                preference=preference)
        self._fanout.labels(mode="partition").inc()
        results = []
        for key in sorted(sub_params):
            shard = self._shard_for_key(params["metastore_id"], key,
                                        write=descriptor.mutation)
            results.append(
                self._single(shard, descriptor, binding, sub_params[key],
                             mode="partition", session=session,
                             preference=preference)
            )
        return decision.merge(results, params)

    # ------------------------------------------------------------------
    # cross-shard invalidation
    # ------------------------------------------------------------------

    def after_mutation(self, shards, metastore_id: Optional[str],
                       session=None) -> None:
        """Relay the involved shards' change events to the cluster bus,
        drop their stale-read cache entries, stream the new change-log
        entries to their followers, and stamp the caller's read session
        for read-your-writes."""
        names = {shard.name for shard in shards}
        with self._lock:
            if self._stale:
                self._stale = {
                    key: value for key, value in self._stale.items()
                    if key[0] not in names
                }
        for shard in shards:
            shard.group.replicate()
        if metastore_id is None:
            return
        for shard in shards:
            events = shard.service.events.poll(
                metastore_id, consumer="cluster-relay"
            )
            for event in events:
                self._invalidations.labels(shard=shard.name).inc()
                self.events.publish(
                    metastore_id, event.metastore_version, event.change,
                    event.securable_id, event.securable_kind,
                    event.securable_name, event.timestamp, event.details,
                )
        if session is not None:
            for shard in shards:
                try:
                    version = shard.group.leader().store.current_version(
                        metastore_id
                    )
                except NotFoundError:
                    continue
                session.note_write(metastore_id, shard.name, version)

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------

    def migrate_catalog(self, metastore_id: str, catalog_name: str,
                        target_shard: str) -> CatalogMigration:
        """Plan an online migration of one catalog subtree (call
        :meth:`CatalogMigration.run`, or drive the steps individually)."""
        return CatalogMigration(self, metastore_id, catalog_name, target_shard)

    def begin_catalog_move(self, metastore_id: str, principal: str,
                           name: str, new_name: str) -> CatalogMove:
        """A step-wise catalog rename (interleaving tests drive the
        prepare/commit phases explicitly)."""
        return CatalogMove(self, metastore_id, principal, name, new_name)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def create_metastore(self, name: str, owner: str,
                         region: str = "us-west") -> Entity:
        return self.dispatch("create_metastore", name=name, owner=owner,
                             region=region)


def _retryable(exc: BaseException) -> bool:
    # breaker-open must NOT be retried here: it propagates immediately so
    # stale_ok reads can degrade instead of waiting out the backoff
    return isinstance(exc, TransientError) and not isinstance(
        exc, CircuitOpenError
    )
