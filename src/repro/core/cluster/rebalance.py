"""Online shard rebalancing: migrate a catalog subtree between shards.

The migration is a small state machine built for zero read downtime:

``PLANNED → COPIED → FENCED → CUT_OVER → DONE``

* **copy** — bulk-copy a consistent snapshot of the subtree to the
  target shard while the source keeps serving reads *and* writes;
* **enter_fence** — fence the route key: reads keep hitting the source
  (the copy is not authoritative yet), and the next write cooperatively
  completes the cutover before it lands;
* **cutover** — take a second snapshot, apply the delta (rows changed
  since the copy, plus deletes) to the target, pin the route key to the
  target, and drop the fence — from here the target is authoritative;
* **cleanup** — delete the subtree rows from the source shard.

Because every step works on row-level exports keyed by stable entity
ids (ids never change across shards — replicated creates pre-mint
them), the copied rows are byte-identical to the source's and no
reference rewriting is needed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.model.entity import SecurableKind
from repro.core.persistence.store import MetadataStore, Tables, WriteOp
from repro.errors import InvalidRequestError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import CatalogCluster

#: auxiliary tables whose rows ride along with an entity subtree
_AUX_TABLES = (Tables.GRANTS, Tables.TAGS, Tables.POLICIES,
               Tables.COMMITS, Tables.SHARES)

PLANNED = "PLANNED"
COPIED = "COPIED"
FENCED = "FENCED"
CUT_OVER = "CUT_OVER"
DONE = "DONE"


@dataclass
class SubtreeExport:
    """A consistent row-level snapshot of one catalog subtree."""

    root_id: str
    version: int
    rows: list[tuple[str, str, dict]]  # (table, key, value)

    def keys(self) -> set[tuple[str, str]]:
        return {(table, key) for table, key, _ in self.rows}


def export_subtree(store: MetadataStore, metastore_id: str,
                   root_id: str) -> SubtreeExport:
    """Export every row belonging to ``root_id``'s subtree.

    Soft-deleted entities are included — they still own storage the
    garbage collector must find. Auxiliary rows are matched either by a
    key segment (grants/tags/commits/shares key by entity id) or by an
    id-valued field (ABAC policies key by policy id but reference their
    scope and securable).
    """
    snapshot = store.snapshot(metastore_id)
    rows: list[tuple[str, str, dict]] = []
    if snapshot.has_tree_index:
        # BFS over the tree index: one range read per container instead of
        # a whole-table scan per level (include_deleted — the subtree's
        # soft-deleted rows migrate too)
        ids = {root_id}
        frontier = [root_id]
        while frontier:
            next_frontier: list[str] = []
            for parent in frontier:
                for child in snapshot.children_ids(parent, include_deleted=True):
                    if child not in ids:
                        ids.add(child)
                        next_frontier.append(child)
            frontier = next_frontier
        fetched = snapshot.multi_get(Tables.ENTITIES, sorted(ids))
        rows.extend((Tables.ENTITIES, k, v) for k, v in fetched.items())
        # grants key by "<securable_id>/...": one range read per entity
        for entity_id in sorted(ids):
            rows.extend(
                (Tables.GRANTS, key, value)
                for key, value in snapshot.scan_prefix(
                    Tables.GRANTS, f"{entity_id}/"
                )
            )
        aux_tables = tuple(t for t in _AUX_TABLES if t != Tables.GRANTS)
    else:
        entity_rows = list(snapshot.scan(Tables.ENTITIES))
        ids = {root_id}
        grew = True
        while grew:  # BFS by parent_id, one pass per tree level
            grew = False
            for key, value in entity_rows:
                if key not in ids and value.get("parent_id") in ids:
                    ids.add(key)
                    grew = True
        rows.extend(
            (Tables.ENTITIES, key, value)
            for key, value in entity_rows if key in ids
        )
        aux_tables = _AUX_TABLES
    for table in aux_tables:
        for key, value in snapshot.scan(table):
            in_key = any(segment in ids for segment in key.split("/"))
            in_value = (value.get("securable_id") in ids
                        or value.get("scope_id") in ids)
            if in_key or in_value:
                rows.append((table, key, value))
    return SubtreeExport(root_id=root_id, version=snapshot.version, rows=rows)


class CatalogMigration:
    """One catalog subtree moving from its current shard to ``target``."""

    def __init__(self, cluster: "CatalogCluster", metastore_id: str,
                 catalog_name: str, target_shard: str):
        self._cluster = cluster
        self.metastore_id = metastore_id
        self.catalog_name = catalog_name
        self.source_name = cluster.router.owner_for(metastore_id, catalog_name)
        self.target_name = target_shard
        cluster.shard_named(target_shard)  # validate early
        self.state = PLANNED
        self._first: Optional[SubtreeExport] = None
        self._second: Optional[SubtreeExport] = None
        self._root_id: Optional[str] = None
        #: serializes state transitions — two parallel writers hitting a
        #: fenced key both call :meth:`complete`; the loser must observe
        #: the cutover as already done, not double-fire it. Reentrant so
        #: :meth:`run`/:meth:`complete` can drive the individual steps.
        self._lock = threading.RLock()

    def _count(self, stage: str) -> None:
        self._cluster.count_migration_stage(stage)

    def _require(self, expected: str) -> None:
        if self.state != expected:
            raise InvalidRequestError(
                f"migration of {self.catalog_name} is {self.state}, "
                f"expected {expected}"
            )

    def _resolve_root(self) -> str:
        if self._root_id is None:
            source = self._cluster.shard_named(self.source_name)
            svc = source.service
            view = svc.view(self.metastore_id)
            entity = svc._resolve(view, self.metastore_id,
                                  SecurableKind.CATALOG, self.catalog_name)
            self._root_id = entity.id
        return self._root_id

    # -- state machine ---------------------------------------------------

    def copy(self) -> "CatalogMigration":
        """Bulk-copy the subtree; source stays fully readable/writable."""
        with self._lock:
            self._require(PLANNED)
            cluster, mid = self._cluster, self.metastore_id
            root_id = self._resolve_root()
            source = cluster.shard_named(self.source_name)
            target = cluster.shard_named(self.target_name)
            self._first = export_subtree(source.service.store, mid, root_id)

            def build(view):
                ops = [WriteOp.put(t, k, v) for t, k, v in self._first.rows]
                return ops, None, []

            target.service._mutate(mid, build)
            self.state = COPIED
        self._count("copy")
        return self

    def enter_fence(self) -> "CatalogMigration":
        """Fence the key: reads stay on the source, the next write
        triggers :meth:`complete` before it lands."""
        with self._lock:
            self._require(COPIED)
            self._cluster.router.fence(self.metastore_id, self.catalog_name,
                                       self)
            self.state = FENCED
        self._count("fence")
        return self

    def cutover(self) -> "CatalogMigration":
        """Apply the delta since :meth:`copy`, repoint the route key."""
        with self._lock:
            self._require(FENCED)
            cluster, mid = self._cluster, self.metastore_id
            source = cluster.shard_named(self.source_name)
            target = cluster.shard_named(self.target_name)
            self._second = export_subtree(source.service.store, mid,
                                          self._root_id)
            vanished = self._first.keys() - self._second.keys()

            def build(view):
                ops = [WriteOp.put(t, k, v) for t, k, v in self._second.rows]
                ops.extend(WriteOp.delete(t, k) for t, k in sorted(vanished))
                return ops, None, []

            target.service._mutate(mid, build)
            cluster.router.pin(mid, self.catalog_name, self.target_name)
            cluster.router.unfence(mid, self.catalog_name)
            self.state = CUT_OVER
        self._count("cutover")
        cluster.after_mutation([target], mid)
        return self

    def cleanup(self) -> "CatalogMigration":
        """Drop the now-stale subtree rows from the source shard."""
        with self._lock:
            self._require(CUT_OVER)
            cluster, mid = self._cluster, self.metastore_id
            source = cluster.shard_named(self.source_name)
            stale = sorted(self._second.keys())

            def build(view):
                return [WriteOp.delete(t, k) for t, k in stale], None, []

            source.service._mutate(mid, build)
            self.state = DONE
        self._count("cleanup")
        cluster.after_mutation([source], mid)
        return self

    def complete(self) -> "CatalogMigration":
        """Cooperative finish, called by the write path on a fenced key.
        Under the reentrant lock the loser of a two-writer race observes
        the winner's cutover instead of double-firing it."""
        with self._lock:
            if self.state == FENCED:
                self.cutover()
                self.cleanup()
        return self

    def run(self) -> "CatalogMigration":
        """The whole migration, start to finish."""
        with self._lock:
            if self.source_name == self.target_name:
                self.state = DONE  # already where it should be
                return self
            self._resolve_root()
            self.copy()
            self.enter_fence()
        # idempotent finish: a cooperating writer may have already cut
        # over the fenced key between the two critical sections
        return self.complete()
