"""Two-phase commit for operations that span shards.

A single shard's writes are already serializable (the optimistic CAS
commit loop); what needs coordination is the small class of operations
whose *validation* and *effects* straddle shard boundaries — a
cross-catalog rename whose old and new names hash to different shards,
or a replicated metastore-scope write that must land on every shard.

The coordinator is deliberately minimal: deterministic transaction ids,
all-or-nothing **key locks** acquired at prepare, and an append-only
transaction log. A prepare that loses the lock race aborts immediately
with a record naming the conflicting key and holder — the "exactly one
winner, clean abort for the loser" contract the interleaving tests
enumerate. Since the parallel serving tier drives prepare/commit legs
from real threads, the check-and-acquire over the key-lock table is a
single critical section under the coordinator's ``_lock``: two racing
prepares can never both observe a key as free.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.events import ChangeType
from repro.core.model.entity import Entity, SecurableKind
from repro.core.model.naming import validate_identifier
from repro.core.persistence.store import Tables, WriteOp
from repro.core.service.registry import catalog_route_key
from repro.errors import (
    AlreadyExistsError,
    ConcurrentModificationError,
    InvalidRequestError,
    NotFoundError,
)

from .rebalance import export_subtree
from .routing import route_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import CatalogCluster, ShardNode

PREPARED = "prepared"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclass
class TxnRecord:
    """One cross-shard transaction in the coordinator's log."""

    txn_id: str
    kind: str                      # "catalog_move" | "broadcast"
    api: str                       # the endpoint that initiated it
    keys: tuple[str, ...]          # route keys locked at prepare
    participants: tuple[str, ...]  # shard names involved
    state: str = PREPARED
    reason: Optional[str] = None   # why it aborted, when it did
    prepared_at: float = 0.0
    finished_at: Optional[float] = None
    details: dict = field(default_factory=dict)


class TwoPhaseCoordinator:
    """Key-locked prepare/commit with a deterministic, bounded log.

    The log is append-only in spirit but bounded in memory: once more
    than ``log_retention`` *finished* (committed/aborted) records have
    accumulated, the oldest finished records are compacted away.
    ``PREPARED`` records are never compacted (they hold live key locks),
    and neither is an aborted record whose conflict attribution names a
    still-live transaction — the "who held my key" breadcrumb the
    interleaving tests rely on must outlive the loser.
    """

    def __init__(self, clock, metrics=None, log_retention: int = 1024):
        if log_retention < 1:
            raise InvalidRequestError("log_retention must be >= 1")
        self._clock = clock
        #: serializes check-and-acquire over the key-lock table and log
        #: appends — prepare legs race from real threads under the
        #: parallel serving tier.
        self._lock = threading.Lock()
        self._locks: dict[str, str] = {}   # route key -> holding txn id
        self._sequence = 0
        self.log: list[TxnRecord] = []
        self._retention = log_retention
        self.compacted_records = 0
        self._outcomes = None
        self._compactions = None
        if metrics is not None:
            self._outcomes = metrics.counter(
                "uc_shard_2pc_total",
                "Cross-shard two-phase transactions by outcome.",
                ("outcome",),
            )
            self._compactions = metrics.counter(
                "uc_2pc_log_compactions_total",
                "Compaction passes over the 2PC transaction log.",
            ).labels()

    def _count(self, outcome: str) -> None:
        if self._outcomes is not None:
            self._outcomes.labels(outcome=outcome).inc()

    def begin(
        self,
        kind: str,
        api: str,
        keys: tuple[str, ...],
        participants: tuple[str, ...],
    ) -> TxnRecord:
        """Acquire every key lock or none: a conflict aborts immediately
        with a log record naming the key and the holding transaction."""
        with self._lock:
            self._sequence += 1
            txn_id = f"txn-{self._sequence:06d}"
            for key in keys:
                holder = self._locks.get(key)
                if holder is not None:
                    record = TxnRecord(
                        txn_id=txn_id, kind=kind, api=api, keys=keys,
                        participants=participants, state=ABORTED,
                        reason=f"prepare conflict: {key} is locked by {holder}",
                        prepared_at=self._clock.now(),
                        finished_at=self._clock.now(),
                    )
                    self.log.append(record)
                    self._count(ABORTED)
                    raise ConcurrentModificationError(
                        f"{api}: {key} is locked by transaction {holder}"
                    )
            record = TxnRecord(
                txn_id=txn_id, kind=kind, api=api, keys=keys,
                participants=participants, prepared_at=self._clock.now(),
            )
            for key in keys:
                self._locks[key] = txn_id
            self.log.append(record)
            return record

    def _release(self, record: TxnRecord) -> None:
        for key in record.keys:
            if self._locks.get(key) == record.txn_id:
                del self._locks[key]

    def commit(self, record: TxnRecord) -> None:
        with self._lock:
            self._release(record)
            record.state = COMMITTED
            record.finished_at = self._clock.now()
            self._compact_locked()
        self._count(COMMITTED)

    def abort(self, record: TxnRecord, reason: str) -> None:
        with self._lock:
            self._release(record)
            record.state = ABORTED
            record.reason = reason
            record.finished_at = self._clock.now()
            self._compact_locked()
        self._count(ABORTED)

    def _compact_locked(self) -> None:
        """Drop the oldest finished records past the retention bound
        (called from commit()/abort() inside ``self._lock``).

        Never dropped: ``PREPARED`` records (their key locks are live),
        and aborted records whose conflict reason names a transaction
        that is still ``PREPARED`` — the loser's abort attribution stays
        readable until the winner finishes.
        """
        finished = sum(1 for r in self.log if r.state != PREPARED)
        excess = finished - self._retention
        if excess <= 0:
            return
        live = {r.txn_id for r in self.log if r.state == PREPARED}
        kept: list[TxnRecord] = []
        dropped = 0
        for record in self.log:
            if (dropped < excess and record.state != PREPARED
                    and not self._attributes_live(record, live)):
                dropped += 1
                continue
            kept.append(record)
        if not dropped:
            return
        self.log[:] = kept
        self.compacted_records += dropped
        if self._compactions is not None:
            self._compactions.inc()

    @staticmethod
    def _attributes_live(record: TxnRecord, live: set[str]) -> bool:
        if record.state != ABORTED or not record.reason or not live:
            return False
        return any(txn_id in record.reason for txn_id in live)

    def held_keys(self) -> dict[str, str]:
        """The key locks currently held (race tests assert emptiness)."""
        with self._lock:
            return dict(self._locks)

    def aborted(self) -> list[TxnRecord]:
        with self._lock:
            return [r for r in self.log if r.state == ABORTED]


class CatalogMove:
    """A catalog rename under the two-phase protocol.

    Catalog names *are* route keys, so a rename may need to relocate the
    whole subtree to the shard the new name hashes to. Prepare validates
    on the source shard (identifier, existence, authorization) and scans
    every shard for a name collision while holding locks on both the old
    and new keys; commit either renames the root row in place (same
    shard) or exports the subtree, imports it renamed on the target, and
    deletes it from the source. The audit trail matches the single-node
    rename exactly: one authorization record on success, one error
    record when validation fails before authorization.
    """

    def __init__(self, cluster: "CatalogCluster", metastore_id: str,
                 principal: str, name: str, new_name: str):
        self._cluster = cluster
        self.metastore_id = metastore_id
        self.principal = principal
        self.name = name
        self.new_name = new_name
        self.txn: Optional[TxnRecord] = None
        self._source: Optional["ShardNode"] = None
        self._entity_id: Optional[str] = None

    # -- phase one -------------------------------------------------------

    def prepare(self) -> "CatalogMove":
        cluster, mid, principal = self._cluster, self.metastore_id, self.principal
        old_key = catalog_route_key(self.name)
        new_key = catalog_route_key(self.new_name)
        source = cluster.shard_named(cluster.router.resolve_for_write(mid, old_key))
        self._source = source
        svc = source.service
        try:
            validate_identifier(self.new_name, what="new name")
        except InvalidRequestError as exc:
            svc._audit(mid, principal, "rename_securable", self.name, False,
                       error=exc.code)
            raise
        try:
            self.txn = cluster.coordinator.begin(
                "catalog_move", "rename_securable",
                keys=(route_key(mid, old_key), route_key(mid, new_key)),
                participants=(source.name, cluster.router.owner_for(mid, new_key)),
            )
        except ConcurrentModificationError as exc:
            svc._audit(mid, principal, "rename_securable", self.name, False,
                       error=exc.code)
            raise
        try:
            view = svc.view(mid)
            entity = svc._resolve(view, mid, SecurableKind.CATALOG, self.name)
            self._entity_id = entity.id
            svc._authorize(view, mid, principal, entity, "update", self.name)
            group = svc.registry.get(SecurableKind.CATALOG).namespace_group
            for shard in cluster.shards:
                other = shard.service.view(mid)
                if other.entity_by_name(entity.parent_id, group, self.new_name):
                    raise AlreadyExistsError(
                        f"catalog already exists: {self.new_name}"
                    )
        except NotFoundError as exc:
            svc._audit(mid, principal, "rename_securable", self.name, False,
                       error=exc.code)
            self.abort(f"{type(exc).__name__}: {exc}")
            raise
        except Exception as exc:
            self.abort(f"{type(exc).__name__}: {exc}")
            raise
        return self

    # -- phase two -------------------------------------------------------

    def commit(self) -> Entity:
        if self.txn is None or self.txn.state != PREPARED:
            raise InvalidRequestError("catalog move is not prepared")
        cluster, mid = self._cluster, self.metastore_id
        old_key = catalog_route_key(self.name)
        new_key = catalog_route_key(self.new_name)
        source = self._source
        target = cluster.shard_named(cluster.router.owner_for(mid, new_key))
        if target is source:
            result = self._rename_in_place(source)
        else:
            result = self._move_subtree(source, target)
        cluster.router.unpin(mid, old_key)
        cluster.coordinator.commit(self.txn)
        cluster.after_mutation([source, target], mid)
        return result

    def abort(self, reason: str) -> None:
        if self.txn is not None and self.txn.state == PREPARED:
            self._cluster.coordinator.abort(self.txn, reason)

    def execute(self) -> Entity:
        self.prepare()
        try:
            return self.commit()
        except Exception as exc:
            self.abort(f"{type(exc).__name__}: {exc}")
            raise

    # -- commit flavours -------------------------------------------------

    def _rename_in_place(self, source: "ShardNode") -> Entity:
        svc, mid = source.service, self.metastore_id
        name, new_name = self.name, self.new_name
        group = svc.registry.get(SecurableKind.CATALOG).namespace_group

        def build(view):
            entity = svc._resolve(view, mid, SecurableKind.CATALOG, name)
            if view.entity_by_name(entity.parent_id, group, new_name):
                raise AlreadyExistsError(f"catalog already exists: {new_name}")
            renamed = entity.with_updates(updated_at=svc.clock.now(),
                                          name=new_name)
            ops = [WriteOp.put(Tables.ENTITIES, entity.id, renamed.to_dict())]
            events = [(ChangeType.UPDATED, entity.id,
                       SecurableKind.CATALOG.value, new_name,
                       {"renamed_from": name})]
            return ops, renamed, events

        return svc._mutate(mid, build)

    def _move_subtree(self, source: "ShardNode", target: "ShardNode") -> Entity:
        cluster, mid = self._cluster, self.metastore_id
        export = export_subtree(source.service.store, mid, self._entity_id)
        now = cluster.clock.now()
        rows = []
        renamed_value = None
        for table, key, value in export.rows:
            if table == Tables.ENTITIES and key == self._entity_id:
                value = dict(value, name=self.new_name, updated_at=now)
                renamed_value = value
            rows.append((table, key, value))
        if renamed_value is None:
            raise NotFoundError(f"catalog disappeared mid-move: {self.name}")
        group = target.service.registry.get(SecurableKind.CATALOG).namespace_group

        def build_import(view):
            if view.entity_by_name(renamed_value["parent_id"], group,
                                   self.new_name):
                raise AlreadyExistsError(
                    f"catalog already exists: {self.new_name}"
                )
            ops = [WriteOp.put(t, k, v) for t, k, v in rows]
            events = [(ChangeType.UPDATED, self._entity_id,
                       SecurableKind.CATALOG.value, self.new_name,
                       {"renamed_from": self.name, "moved_from": source.name})]
            return ops, Entity.from_dict(renamed_value), events

        result = target.service._mutate(mid, build_import)

        def build_delete(view):
            ops = [WriteOp.delete(t, k) for t, k, _ in export.rows]
            return ops, None, []

        try:
            source.service._mutate(mid, build_delete)
        except Exception:
            # the import committed but the source-side delete did not: the
            # subtree would be resolvable under both names on two shards.
            # Compensate by deleting the imported rows from the target —
            # the old key is still routed to the source (commit() unpins
            # only after both legs land), so the catalog stays fully
            # usable under its old name and the abort is clean.
            def build_undo(view):
                ops = [WriteOp.delete(t, k) for t, k, _ in rows]
                return ops, None, []

            target.service._mutate(mid, build_undo)
            # the import leg already published its rename event on the
            # target's local bus; drain it so the relay consumer never
            # forwards a change that was rolled back
            target.service.events.poll(mid, consumer="cluster-relay")
            raise
        return result
