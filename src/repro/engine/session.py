"""EngineSession: the life of a SQL query (paper section 3.4).

One session = one authenticated user on one engine. For every statement
the session (1) parses and collects securable references, (2) fetches
metadata, authorization results, FGAC rules and storage credentials from
Unity Catalog in a single batched call, (3) plans and executes over the
Delta substrate using only the vended, downscoped credentials,
(4) enforces FGAC when the engine is trusted — or transparently delegates
to the data-filtering service when it is not — and (5) reports lineage
back to the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Optional

from repro.clock import Clock, WallClock
from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel
from repro.core.auth.fgac import FgacRuleSet
from repro.core.auth.privileges import Privilege
from repro.core.model.entity import SecurableKind
from repro.core.service.batch import QueryResolution, ResolvedAsset
from repro.deltalog.table import DeltaTable, Filter, ScanMetrics
from repro.engine.expressions import (
    Binary,
    Column,
    EvalContext,
    Expr,
    Literal,
    compile_expression,
)
from repro.obs.tracing import NULL_SPAN
from repro.engine.parser import (
    CreateTableStmt,
    CreateViewStmt,
    DeleteStmt,
    DescribeStmt,
    DropStmt,
    GrantStmt,
    InsertStmt,
    SelectItem,
    SelectStmt,
    ShowStmt,
    Statement,
    TableRef,
    UpdateStmt,
    parse_sql,
)
from repro.errors import (
    FederationError,
    InvalidRequestError,
    NotFoundError,
    UntrustedEngineError,
)

_KIND_MAP = {
    "TABLE": SecurableKind.TABLE,
    "VIEW": SecurableKind.TABLE,
    "SCHEMA": SecurableKind.SCHEMA,
    "CATALOG": SecurableKind.CATALOG,
    "VOLUME": SecurableKind.VOLUME,
    "FUNCTION": SecurableKind.FUNCTION,
    "MODEL": SecurableKind.REGISTERED_MODEL,
}


@dataclass
class QueryResult:
    """The engine's answer to one statement."""

    columns: list[str] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)
    rowcount: int = 0
    message: str = ""
    scan_metrics: Optional[ScanMetrics] = None
    trace_id: Optional[str] = None


def _truthy(value: Any) -> bool:
    return value is not None and bool(value)


def _timestamp_to_epoch(value: str) -> float:
    """``TIMESTAMP AS OF`` argument → epoch seconds.

    Accepts ISO-8601 (naive timestamps are read as UTC so resolution does
    not depend on the host timezone) or raw epoch seconds, which is what
    simulated clocks stamp commits with."""
    try:
        return float(value)
    except ValueError:
        pass
    try:
        parsed = datetime.fromisoformat(value)
    except ValueError:
        raise InvalidRequestError(
            f"TIMESTAMP AS OF {value!r} is neither an ISO-8601 timestamp "
            "nor epoch seconds"
        )
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.timestamp()


class EngineSession:
    """A user session on one engine, bound to one metastore."""

    def __init__(
        self,
        catalog,
        metastore_id: str,
        principal: str,
        *,
        engine_name: str = "repro-dbr",
        trusted: bool = False,
        clock: Optional[Clock] = None,
        filtering_service=None,
        foreign_reader: Optional[Callable[[ResolvedAsset], list[dict]]] = None,
        report_lineage: bool = True,
        workspace: Optional[str] = None,
        metadata_cache_ttl: Optional[float] = None,
    ):
        """``metadata_cache_ttl`` enables the client-pushed metadata cache
        (paper section 4.5: "these caches can be pushed to clients to
        further reduce latency for frequently accessed metadata"; engines
        may reuse vended credentials "across successive queries"). Cached
        resolutions are reused until the TTL lapses or any contained
        credential nears expiry."""
        self._catalog = catalog
        self._metastore_id = metastore_id
        self._principal = principal
        self._engine_name = engine_name
        self._trusted = trusted
        self._clock = clock or getattr(catalog, "clock", None) or WallClock()
        self._filtering_service = filtering_service
        self._foreign_reader = foreign_reader
        self._report_lineage = report_lineage
        self._workspace = workspace
        self._resolution_cache = None
        if metadata_cache_ttl is not None:
            from repro.core.cache.ttl import TtlCache

            self._resolution_cache = TtlCache(
                ttl_seconds=metadata_cache_ttl, clock=self._clock
            )
        self.resolve_calls = 0
        self._current_catalog: Optional[str] = None
        self._current_schema: Optional[str] = None
        groups = (
            catalog.directory.expand(principal)
            if catalog.directory.exists(principal)
            else frozenset({principal})
        )
        self._ctx = EvalContext(principal=principal, groups=groups)
        self.last_scan_metrics: Optional[ScanMetrics] = None
        # observability rides along with the catalog handle; sessions on a
        # bare catalog stub simply run untraced
        self._obs = getattr(catalog, "obs", None)
        self._metrics = self._obs.metrics if self._obs is not None else None
        self.last_trace_id: Optional[str] = None
        self._stmt_latency = None
        if self._metrics is not None:
            self._stmt_latency = self._metrics.histogram(
                "uc_engine_statement_seconds",
                "End-to-end latency of engine SQL statements.",
                ("engine",),
            ).labels(engine=engine_name)

    @property
    def principal(self) -> str:
        return self._principal

    # -- name handling -----------------------------------------------------

    def use(self, catalog: Optional[str] = None, schema: Optional[str] = None) -> None:
        """Set session defaults for relative table names."""
        if catalog is not None:
            self._current_catalog = catalog
        if schema is not None:
            self._current_schema = schema

    def _qualify(self, name: str) -> str:
        parts = name.split(".")
        if len(parts) >= 3:
            return name
        if len(parts) == 2 and self._current_catalog:
            return f"{self._current_catalog}.{name}"
        if len(parts) == 1 and self._current_catalog and self._current_schema:
            return f"{self._current_catalog}.{self._current_schema}.{name}"
        raise InvalidRequestError(
            f"cannot qualify {name!r}: set session catalog/schema via use()"
        )

    # -- entry point ------------------------------------------------------------

    def sql(self, text: str) -> QueryResult:
        """Parse and execute one statement, tracing every phase."""
        if self._obs is None:
            return self._sql(text)
        start = self._clock.now()
        with self._obs.tracer.start_trace(
            "query", principal=self._principal, engine=self._engine_name
        ) as root:
            self.last_trace_id = root.span.trace_id
            try:
                result = self._sql(text)
            finally:
                if self._stmt_latency is not None:
                    self._stmt_latency.observe(self._clock.now() - start)
            result.trace_id = root.span.trace_id
            return result

    def _span(self, name: str, **attrs: object):
        if self._obs is None:
            return NULL_SPAN
        return self._obs.tracer.span(name, **attrs)

    def _sql(self, text: str) -> QueryResult:
        with self._span("parse"):
            statement = parse_sql(text)
        try:
            return self._execute(statement, text)
        except UntrustedEngineError:
            if self._filtering_service is not None and not self._trusted:
                # paper 4.3.2: untrusted engines delegate FGAC queries to
                # the data filtering service
                return self._filtering_service.execute(self._principal, text)
            raise

    def _execute(self, statement: Statement, text: str) -> QueryResult:
        if isinstance(statement, SelectStmt):
            return self._execute_select(statement)
        if isinstance(statement, InsertStmt):
            return self._execute_insert(statement)
        if isinstance(statement, CreateTableStmt):
            return self._execute_create_table(statement)
        if isinstance(statement, CreateViewStmt):
            return self._execute_create_view(statement)
        if isinstance(statement, UpdateStmt):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStmt):
            return self._execute_delete(statement)
        if isinstance(statement, DropStmt):
            return self._execute_drop(statement)
        if isinstance(statement, GrantStmt):
            return self._execute_grant(statement)
        if isinstance(statement, ShowStmt):
            return self._execute_show(statement)
        if isinstance(statement, DescribeStmt):
            return self._execute_describe(statement)
        raise InvalidRequestError(f"unsupported statement: {type(statement).__name__}")

    # -- resolution and storage access --------------------------------------------

    def _resolve(
        self,
        table_names: list[str],
        write_tables: tuple[str, ...] = (),
    ) -> QueryResolution:
        with self._span("analyze", tables=len(table_names)):
            cache_key = (tuple(table_names), tuple(write_tables))
            if self._resolution_cache is not None:
                cached = self._resolution_cache.get(cache_key)
                if cached is not None and self._credentials_fresh(cached):
                    return cached
            resolution = self._do_resolve(table_names, write_tables)
            if self._resolution_cache is not None:
                self._resolution_cache.put(cache_key, resolution)
            return resolution

    def _credentials_fresh(self, resolution: QueryResolution) -> bool:
        """Vended tokens are reusable only within their validity window."""
        deadline = self._clock.now() + 60
        return all(
            asset.credential is None or asset.credential.expires_at > deadline
            for asset in resolution.assets.values()
        )

    def _do_resolve(
        self,
        table_names: list[str],
        write_tables: tuple[str, ...],
    ) -> QueryResolution:
        self.resolve_calls += 1
        return self._catalog.resolve_for_query(
            self._metastore_id,
            self._principal,
            table_names,
            write_tables=write_tables,
            engine_trusted=self._trusted,
            workspace=self._workspace,
        )

    def _lookup_asset(self, resolution: QueryResolution, name: str) -> ResolvedAsset:
        if name in resolution.assets:
            return resolution.assets[name]
        qualified = self._qualify(name)
        if qualified in resolution.assets:
            return resolution.assets[qualified]
        # view definitions may reference names under a different session
        # default; match by unique suffix
        suffix_matches = [
            asset for key, asset in resolution.assets.items()
            if key.endswith("." + name.rsplit(".", 1)[-1])
        ]
        if len(suffix_matches) == 1:
            return suffix_matches[0]
        raise NotFoundError(f"unresolved table reference {name!r}")

    def _delta_table(self, asset: ResolvedAsset) -> DeltaTable:
        if asset.credential is None or asset.storage_url is None:
            raise InvalidRequestError(
                f"{asset.full_name} has no storage credential in the resolution"
            )
        client = self._catalog.governed_client(asset.credential)
        return DeltaTable(
            client,
            StoragePath.parse(asset.storage_url),
            clock=self._clock,
            engine=self._engine_name,
            metrics=self._metrics,
        )

    # -- SELECT -------------------------------------------------------------------

    def _execute_select(
        self,
        stmt: SelectStmt,
        resolution: Optional[QueryResolution] = None,
        depth: int = 0,
    ) -> QueryResult:
        if depth > 16:
            raise InvalidRequestError("view recursion too deep")
        if resolution is None:
            names = [self._qualify(n) for n in stmt.table_names()]
            resolution = self._resolve(names)

        pushdown = self._pushdown_filters(stmt) if not stmt.joins else None
        rows, columns = self._table_rows(
            stmt.table, resolution, depth, filters=pushdown
        )
        for join in stmt.joins:
            right_rows, right_columns = self._table_rows(join.table, resolution, depth)
            rows = _hash_join(rows, right_rows, join.left_column, join.right_column)
            columns = columns + [c for c in right_columns if c not in columns]

        if stmt.where is not None:
            rows = [r for r in rows if _truthy(stmt.where.eval(r, self._ctx))]

        result_rows, result_columns = self._project(stmt, rows, columns)

        if stmt.distinct:
            seen = set()
            deduped = []
            for row in result_rows:
                key = tuple(sorted(row.items()))
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = result_rows = deduped

        if stmt.order_by:
            # ORDER BY may reference projected aliases or underlying columns
            aggregated = any(item.aggregate for item in stmt.items) or stmt.group_by
            paired = (
                list(zip(result_rows, result_rows))
                if aggregated or len(rows) != len(result_rows)
                else list(zip(result_rows, rows))
            )
            for column, descending in reversed(stmt.order_by):
                def sort_key(pair, column=column):
                    projected, source = pair
                    value = projected.get(column, source.get(column))
                    return (value is None, value)

                paired.sort(key=sort_key, reverse=descending)
            result_rows = [projected for projected, _ in paired]
        if stmt.limit is not None:
            result_rows = result_rows[:stmt.limit]
        return QueryResult(
            columns=result_columns,
            rows=result_rows,
            rowcount=len(result_rows),
            scan_metrics=self.last_scan_metrics,
        )

    def _pushdown_filters(self, stmt: SelectStmt) -> Optional[list[Filter]]:
        if stmt.where is None:
            return None
        return _expr_to_filters(stmt.where)

    def _table_rows(
        self,
        ref: TableRef,
        resolution: QueryResolution,
        depth: int,
        filters: Optional[list[Filter]] = None,
    ) -> tuple[list[dict], list[str]]:
        asset = self._lookup_asset(resolution, ref.name)
        raw, columns = self._asset_rows(asset, resolution, depth, filters,
                                        version=ref.version,
                                        timestamp=ref.timestamp)
        raw = self._apply_fgac(raw, asset.fgac)
        binding = ref.binding
        namespaced = [
            {**row, **{f"{binding}.{key}": value for key, value in row.items()}}
            for row in raw
        ]
        return namespaced, columns

    def _asset_rows(
        self,
        asset: ResolvedAsset,
        resolution: QueryResolution,
        depth: int,
        filters: Optional[list[Filter]],
        version: Optional[int] = None,
        timestamp: Optional[str] = None,
    ) -> tuple[list[dict], list[str]]:
        if (version is not None or timestamp is not None) and (
            asset.table_type in ("VIEW", "MATERIALIZED_VIEW", "FOREIGN")
        ):
            raise InvalidRequestError(
                f"{asset.full_name} does not support VERSION AS OF"
            )
        if asset.table_type in ("VIEW", "MATERIALIZED_VIEW"):
            sub = parse_sql(asset.view_definition or "")
            if not isinstance(sub, SelectStmt):
                raise InvalidRequestError(
                    f"view {asset.full_name} has a non-SELECT definition"
                )
            result = self._execute_select(sub, resolution, depth + 1)
            return result.rows, result.columns
        if asset.table_type == "SHALLOW_CLONE":
            # a shallow clone serves the base table's data under the
            # clone's own governance (FGAC on the clone already applied)
            base_name = asset.entity.spec.get("base_table")
            base = self._lookup_asset(resolution, base_name)
            return self._asset_rows(base, resolution, depth + 1, filters)
        if asset.table_type == "FOREIGN":
            if self._foreign_reader is None:
                raise FederationError(
                    f"no foreign reader configured for {asset.full_name}"
                )
            rows = self._foreign_reader(asset)
            columns = [c["name"] for c in asset.columns] or (
                list(rows[0]) if rows else []
            )
            return rows, columns
        table = self._delta_table(asset)
        if timestamp is not None:
            version = table.version_at_timestamp(_timestamp_to_epoch(timestamp))
        metrics = ScanMetrics()
        with self._span("scan", asset=asset.full_name) as span:
            rows = list(table.scan(filters, version=version, metrics=metrics))
            span.set_attr("rows", len(rows))
        self.last_scan_metrics = metrics
        columns = [c["name"] for c in asset.columns]
        if not columns:
            schema = table.schema()
            columns = [c["name"] for c in schema]
        return rows, columns

    def _apply_fgac(self, rows: list[dict], fgac: FgacRuleSet) -> list[dict]:
        """Trusted-engine FGAC enforcement (paper 3.4 step 7)."""
        if fgac.is_empty:
            return rows
        predicates = [compile_expression(f.predicate_sql) for f in fgac.row_filters]
        masks = [
            (m.column, compile_expression(m.mask_sql)) for m in fgac.column_masks
        ]
        out = []
        for row in rows:
            if all(_truthy(p.eval(row, self._ctx)) for p in predicates):
                if masks:
                    row = dict(row)
                    for column, mask in masks:
                        if column in row:
                            row[column] = mask.eval(row, self._ctx)
                out.append(row)
        return out

    def _project(
        self, stmt: SelectStmt, rows: list[dict], columns: list[str]
    ) -> tuple[list[dict], list[str]]:
        has_aggregate = any(item.aggregate for item in stmt.items)
        if has_aggregate or stmt.group_by:
            return self._aggregate(stmt, rows)
        if len(stmt.items) == 1 and stmt.items[0].star:
            plain = [
                {c: row.get(c) for c in columns} for row in rows
            ]
            return plain, columns

        out_columns: list[str] = []
        extractors: list[tuple[str, Expr]] = []
        for i, item in enumerate(stmt.items):
            if item.star:
                raise InvalidRequestError("* must be the only projection")
            default = (
                item.expr.name if isinstance(item.expr, Column) else f"col{i}"
            )
            name = item.output_name(default)
            out_columns.append(name)
            extractors.append((name, item.expr))
        projected = [
            {name: expr.eval(row, self._ctx) for name, expr in extractors}
            for row in rows
        ]
        return projected, out_columns

    def _aggregate(
        self, stmt: SelectStmt, rows: list[dict]
    ) -> tuple[list[dict], list[str]]:
        group_columns = list(stmt.group_by)
        groups: dict[tuple, list[dict]] = {}
        for row in rows:
            key = tuple(row.get(c) for c in group_columns)
            groups.setdefault(key, []).append(row)
        if not groups and not group_columns:
            groups[()] = []

        out_columns: list[str] = []
        out_rows: list[dict] = []
        for key, members in groups.items():
            record: dict[str, Any] = {}
            for i, item in enumerate(stmt.items):
                if item.aggregate:
                    name = item.output_name(item.aggregate.lower())
                    record[name] = _aggregate_value(item, members, self._ctx)
                else:
                    if not isinstance(item.expr, Column):
                        raise InvalidRequestError(
                            "non-aggregate projections must be grouped columns"
                        )
                    column = item.expr.name
                    if column not in group_columns:
                        raise InvalidRequestError(
                            f"column {column!r} must appear in GROUP BY"
                        )
                    record[item.output_name(column)] = key[group_columns.index(column)]
            if not out_columns:
                out_columns = list(record)
            out_rows.append(record)
        return out_rows, out_columns

    # -- DML --------------------------------------------------------------------

    def _execute_insert(self, stmt: InsertStmt) -> QueryResult:
        target = self._qualify(stmt.table)
        if stmt.select is not None:
            source_names = [self._qualify(n) for n in stmt.select.table_names()]
            resolution = self._resolve(
                [target] + source_names, write_tables=(target,)
            )
            sub = self._execute_select(stmt.select, resolution)
            incoming_columns = list(stmt.columns) if stmt.columns else sub.columns
            new_rows = [
                dict(zip(incoming_columns, (row[c] for c in sub.columns)))
                for row in sub.rows
            ]
            sources = source_names
        else:
            resolution = self._resolve([target], write_tables=(target,))
            asset = resolution.assets[target]
            incoming_columns = (
                list(stmt.columns)
                if stmt.columns
                else [c["name"] for c in asset.columns]
            )
            new_rows = []
            for values in stmt.rows or ():
                if len(values) != len(incoming_columns):
                    raise InvalidRequestError(
                        f"expected {len(incoming_columns)} values, got {len(values)}"
                    )
                new_rows.append(dict(zip(incoming_columns, values)))
            sources = []
        asset = resolution.assets[target]
        if new_rows:
            self._delta_table(asset).append(new_rows)
        if sources and self._report_lineage:
            self._catalog.record_lineage(
                self._metastore_id, self._principal, sources, target, "INSERT",
            )
        return QueryResult(rowcount=len(new_rows),
                           message=f"inserted {len(new_rows)} row(s)")

    def _execute_update(self, stmt: UpdateStmt) -> QueryResult:
        target = self._qualify(stmt.table)
        resolution = self._resolve([target], write_tables=(target,))
        asset = resolution.assets[target]
        table = self._delta_table(asset)
        rows = table.read_all()
        updated = 0
        new_rows = []
        for row in rows:
            if stmt.where is None or _truthy(stmt.where.eval(row, self._ctx)):
                row = dict(row)
                for column, expr in stmt.assignments:
                    row[column] = expr.eval(row, self._ctx)
                updated += 1
            new_rows.append(row)
        if updated:
            table.overwrite(new_rows)
        return QueryResult(rowcount=updated, message=f"updated {updated} row(s)")

    def _execute_delete(self, stmt: DeleteStmt) -> QueryResult:
        target = self._qualify(stmt.table)
        resolution = self._resolve([target], write_tables=(target,))
        asset = resolution.assets[target]
        table = self._delta_table(asset)
        if stmt.where is None:
            deleted = table.row_count()
            table.overwrite([])
            return QueryResult(rowcount=deleted,
                               message=f"deleted {deleted} row(s)")
        filters = _expr_to_filters(stmt.where)
        if filters is not None:
            deleted = table.delete_where(filters)
        else:
            rows = table.read_all()
            keep = [r for r in rows if not _truthy(stmt.where.eval(r, self._ctx))]
            deleted = len(rows) - len(keep)
            if deleted:
                table.overwrite(keep)
        return QueryResult(rowcount=deleted, message=f"deleted {deleted} row(s)")

    # -- DDL --------------------------------------------------------------------

    def _execute_create_table(self, stmt: CreateTableStmt) -> QueryResult:
        name = self._qualify(stmt.name)
        if stmt.as_select is not None:
            return self._execute_ctas(name, stmt)
        columns = [{"name": n, "type": t} for n, t in stmt.columns]
        spec = {
            "table_type": "EXTERNAL" if stmt.location else "MANAGED",
            "format": stmt.format,
            "columns": columns,
        }
        try:
            entity = self._catalog.create_securable(
                self._metastore_id,
                self._principal,
                SecurableKind.TABLE,
                name,
                storage_path=stmt.location,
                spec=spec,
            )
        except Exception:
            if stmt.if_not_exists:
                return QueryResult(message=f"table {name} already exists")
            raise
        credential = self._catalog.vend_credentials(
            self._metastore_id, self._principal, SecurableKind.TABLE, name,
            AccessLevel.READ_WRITE,
        )
        client = self._catalog.governed_client(credential)
        root = StoragePath.parse(entity.storage_path)
        from repro.deltalog.log import DeltaLog

        if DeltaLog(client, root).latest_version() < 0:
            DeltaTable.create(
                client, root, entity.id, columns,
                clock=self._clock, engine=self._engine_name,
                metrics=self._metrics,
            )
        return QueryResult(message=f"created table {name}")

    def _execute_ctas(self, name: str, stmt: CreateTableStmt) -> QueryResult:
        """CREATE TABLE AS SELECT: infer the schema from the select's
        output, materialize the rows, and report lineage."""
        select = stmt.as_select
        sources = [self._qualify(n) for n in select.table_names()]
        sub = self._execute_select(select)
        columns = [{"name": c, "type": "STRING"} for c in sub.columns]
        if sub.rows:
            sample = sub.rows[0]
            for column in columns:
                value = sample.get(column["name"])
                if isinstance(value, bool):
                    column["type"] = "BOOLEAN"
                elif isinstance(value, int):
                    column["type"] = "INT"
                elif isinstance(value, float):
                    column["type"] = "DOUBLE"
        entity = self._catalog.create_securable(
            self._metastore_id, self._principal, SecurableKind.TABLE, name,
            spec={"table_type": "MANAGED", "format": stmt.format,
                  "columns": columns},
        )
        credential = self._catalog.vend_credentials(
            self._metastore_id, self._principal, SecurableKind.TABLE, name,
            AccessLevel.READ_WRITE,
        )
        client = self._catalog.governed_client(credential)
        root = StoragePath.parse(entity.storage_path)
        table = DeltaTable.create(client, root, entity.id, columns,
                                  clock=self._clock, engine=self._engine_name,
                                  metrics=self._metrics)
        if sub.rows:
            table.append(sub.rows)
        if sources and self._report_lineage:
            self._catalog.record_lineage(
                self._metastore_id, self._principal, sources, name, "CTAS",
            )
        return QueryResult(rowcount=len(sub.rows),
                           message=f"created table {name} with "
                                   f"{len(sub.rows)} row(s)")

    def _execute_create_view(self, stmt: CreateViewStmt) -> QueryResult:
        name = self._qualify(stmt.name)
        dependencies = [self._qualify(n) for n in stmt.select.table_names()]
        self._catalog.create_securable(
            self._metastore_id,
            self._principal,
            SecurableKind.TABLE,
            name,
            spec={
                "table_type": "VIEW",
                "view_definition": stmt.definition_sql,
                "view_dependencies": dependencies,
            },
        )
        if self._report_lineage:
            self._catalog.record_lineage(
                self._metastore_id, self._principal, dependencies, name,
                "CREATE VIEW",
            )
        return QueryResult(message=f"created view {name}")

    def _execute_drop(self, stmt: DropStmt) -> QueryResult:
        name = self._qualify(stmt.name)
        self._catalog.delete_securable(
            self._metastore_id, self._principal, SecurableKind.TABLE, name
        )
        return QueryResult(message=f"dropped {name}")

    def _execute_grant(self, stmt: GrantStmt) -> QueryResult:
        kind = _KIND_MAP[stmt.securable_kind]
        try:
            privilege = Privilege(stmt.privilege)
        except ValueError:
            raise InvalidRequestError(f"unknown privilege {stmt.privilege!r}")
        name = (
            self._qualify(stmt.securable_name)
            if kind in (SecurableKind.TABLE, SecurableKind.VOLUME,
                        SecurableKind.FUNCTION, SecurableKind.REGISTERED_MODEL)
            else stmt.securable_name
        )
        if stmt.revoke:
            self._catalog.revoke(
                self._metastore_id, self._principal, kind, name,
                stmt.grantee, privilege,
            )
            return QueryResult(message=f"revoked {privilege.value} on {name}")
        self._catalog.grant(
            self._metastore_id, self._principal, kind, name,
            stmt.grantee, privilege,
        )
        return QueryResult(message=f"granted {privilege.value} on {name}")

    # -- metadata statements ------------------------------------------------------

    def _execute_show(self, stmt: ShowStmt) -> QueryResult:
        if stmt.what == "CATALOGS":
            entities = self._catalog.list_securables(
                self._metastore_id, self._principal, SecurableKind.CATALOG
            )
        elif stmt.what == "SCHEMAS":
            entities = self._catalog.list_securables(
                self._metastore_id, self._principal, SecurableKind.SCHEMA,
                stmt.container,
            )
        else:
            entities = self._catalog.list_securables(
                self._metastore_id, self._principal, SecurableKind.TABLE,
                stmt.container,
            )
        rows = [{"name": e.name} for e in entities]
        return QueryResult(columns=["name"], rows=rows, rowcount=len(rows))

    def _execute_describe(self, stmt: DescribeStmt) -> QueryResult:
        name = self._qualify(stmt.name)
        entity = self._catalog.get_securable(
            self._metastore_id, self._principal, SecurableKind.TABLE, name
        )
        rows = [
            {"col_name": c["name"], "data_type": c.get("type", "")}
            for c in entity.spec.get("columns") or ()
        ]
        return QueryResult(columns=["col_name", "data_type"], rows=rows,
                           rowcount=len(rows))


# -- helpers ---------------------------------------------------------------------


def _hash_join(
    left: list[dict], right: list[dict], left_column: str, right_column: str
) -> list[dict]:
    index: dict[Any, list[dict]] = {}
    for row in right:
        key = row.get(right_column)
        if key is not None:
            index.setdefault(key, []).append(row)
    out = []
    for row in left:
        key = row.get(left_column)
        if key is None:
            continue
        for match in index.get(key, ()):
            out.append({**row, **match})
    return out


def _aggregate_value(item: SelectItem, rows: list[dict], ctx: EvalContext) -> Any:
    if item.aggregate == "COUNT" and item.aggregate_arg is None:
        return len(rows)
    values = [
        item.aggregate_arg.eval(row, ctx) for row in rows
    ]
    values = [v for v in values if v is not None]
    if item.aggregate == "COUNT":
        return len(values)
    if not values:
        return None
    if item.aggregate == "SUM":
        return sum(values)
    if item.aggregate == "AVG":
        return sum(values) / len(values)
    if item.aggregate == "MIN":
        return min(values)
    if item.aggregate == "MAX":
        return max(values)
    raise InvalidRequestError(f"unknown aggregate {item.aggregate}")


def _expr_to_filters(expr: Expr) -> Optional[list[Filter]]:
    """Convert a conjunction of simple comparisons into pushdown filters."""
    if isinstance(expr, Binary) and expr.op == "AND":
        left = _expr_to_filters(expr.left)
        right = _expr_to_filters(expr.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(expr, Binary) and expr.op in ("=", "!=", "<", "<=", ">", ">="):
        if isinstance(expr.left, Column) and isinstance(expr.right, Literal):
            if expr.right.value is None:
                return None
            return [(expr.left.name, expr.op, expr.right.value)]
        if isinstance(expr.left, Literal) and isinstance(expr.right, Column):
            if expr.left.value is None:
                return None
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            op = flipped.get(expr.op, expr.op)
            return [(expr.right.name, op, expr.left.value)]
    return None
