"""SQL statement parser.

Covers the dialect the reproduction's workloads need: SELECT with joins,
aggregates, grouping, ordering and limits; INSERT (VALUES and
INSERT-SELECT); CREATE TABLE / CREATE VIEW; UPDATE / DELETE; DROP;
GRANT / REVOKE; SHOW; DESCRIBE. The parser's only catalog-relevant job is
to surface every securable reference so the session can resolve them in
one batched Unity Catalog call (paper section 3.4, step 1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.expressions import Expr, _Token, _tokenize, parse_prefix
from repro.errors import InvalidRequestError

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

_SECURABLE_KINDS = {"TABLE", "VIEW", "SCHEMA", "CATALOG", "VOLUME", "FUNCTION", "MODEL"}


# -- statement AST -------------------------------------------------------------

@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None
    #: time travel: read the table as of this log version
    version: Optional[int] = None
    #: time travel: read the table as of this commit timestamp (ISO-8601
    #: or epoch seconds; resolved to a log version at execution time)
    timestamp: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class Join:
    table: TableRef
    left_column: str
    right_column: str


@dataclass(frozen=True)
class SelectItem:
    """One projection: ``*``, an expression, or an aggregate call."""

    star: bool = False
    expr: Optional[Expr] = None
    aggregate: Optional[str] = None  # COUNT/SUM/...
    aggregate_arg: Optional[Expr] = None  # None for COUNT(*)
    alias: Optional[str] = None

    def output_name(self, default: str) -> str:
        if self.alias:
            return self.alias
        if self.aggregate:
            return self.aggregate.lower()
        return default


@dataclass(frozen=True)
class SelectStmt:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()  # (column, descending)
    limit: Optional[int] = None
    distinct: bool = False

    def table_names(self) -> list[str]:
        return [self.table.name] + [j.table.name for j in self.joins]


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: Optional[tuple[str, ...]]
    rows: Optional[tuple[tuple[Any, ...], ...]] = None
    select: Optional[SelectStmt] = None


@dataclass(frozen=True)
class CreateTableStmt:
    name: str
    columns: tuple[tuple[str, str], ...] = ()
    format: str = "DELTA"
    location: Optional[str] = None
    if_not_exists: bool = False
    #: CTAS: populate from this select (columns inferred from its output)
    as_select: Optional[SelectStmt] = None


@dataclass(frozen=True)
class CreateViewStmt:
    name: str
    select: SelectStmt
    definition_sql: str


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class DropStmt:
    kind: str  # TABLE or VIEW
    name: str


@dataclass(frozen=True)
class GrantStmt:
    privilege: str
    securable_kind: str
    securable_name: str
    grantee: str
    revoke: bool = False


@dataclass(frozen=True)
class ShowStmt:
    what: str  # CATALOGS | SCHEMAS | TABLES
    container: Optional[str] = None


@dataclass(frozen=True)
class DescribeStmt:
    name: str


Statement = (
    SelectStmt | InsertStmt | CreateTableStmt | CreateViewStmt | UpdateStmt
    | DeleteStmt | DropStmt | GrantStmt | ShowStmt | DescribeStmt
)


# -- parser --------------------------------------------------------------------

class _SqlParser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = _tokenize(sql.rstrip().rstrip(";"))
        self._pos = 0

    # token helpers ------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Optional[_Token]:
        index = self._pos + ahead
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise InvalidRequestError("unexpected end of statement")
        self._pos += 1
        return token

    def _at_word(self, *words: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind in ("name", "keyword")
            and token.text.upper() in words
        )

    def _accept_word(self, *words: str) -> Optional[str]:
        if self._at_word(*words):
            return self._next().text.upper()
        return None

    def _expect_word(self, *words: str) -> str:
        got = self._accept_word(*words)
        if got is None:
            actual = self._peek()
            raise InvalidRequestError(
                f"expected {'/'.join(words)}, got "
                f"{actual.text if actual else 'end of statement'!r}"
            )
        return got

    def _accept_op(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text == text:
            self._pos += 1
            return True
        return False

    def _expect_op(self, text: str) -> None:
        if not self._accept_op(text):
            actual = self._peek()
            raise InvalidRequestError(
                f"expected {text!r}, got {actual.text if actual else 'end'!r}"
            )

    def _identifier(self) -> str:
        token = self._next()
        if token.kind not in ("name", "keyword"):
            raise InvalidRequestError(f"expected identifier, got {token.text!r}")
        return token.text

    def _qualified_name(self) -> str:
        parts = [self._identifier()]
        while self._accept_op("."):
            parts.append(self._identifier())
        return ".".join(parts)

    def _expression(self) -> Expr:
        expr, self._pos = parse_prefix(self._tokens, self._pos)
        return expr

    def _literal(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text in ("TRUE", "FALSE"):
            return token.text == "TRUE"
        if token.kind == "keyword" and token.text == "NULL":
            return None
        if token.kind == "op" and token.text == "-":
            return -self._literal()
        raise InvalidRequestError(f"expected a literal, got {token.text!r}")

    def _end(self) -> None:
        token = self._peek()
        if token is not None:
            raise InvalidRequestError(f"trailing input: {token.text!r}")

    # statements ------------------------------------------------------------------

    def parse(self) -> Statement:
        word = self._expect_word(
            "SELECT", "INSERT", "CREATE", "UPDATE", "DELETE", "DROP", "GRANT",
            "REVOKE", "SHOW", "DESCRIBE", "DESC",
        )
        if word == "SELECT":
            statement = self._select(consumed_select=True)
        elif word == "INSERT":
            statement = self._insert()
        elif word == "CREATE":
            statement = self._create()
        elif word == "UPDATE":
            statement = self._update()
        elif word == "DELETE":
            statement = self._delete()
        elif word == "DROP":
            statement = self._drop()
        elif word in ("GRANT", "REVOKE"):
            statement = self._grant(revoke=word == "REVOKE")
        elif word == "SHOW":
            statement = self._show()
        else:
            statement = DescribeStmt(name=self._qualified_name())
        self._end()
        return statement

    def _select(self, consumed_select: bool = False) -> SelectStmt:
        if not consumed_select:
            self._expect_word("SELECT")
        distinct = self._accept_word("DISTINCT") is not None
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        self._expect_word("FROM")
        table = self._table_ref()
        joins: list[Join] = []
        while self._accept_word("JOIN"):
            join_table = self._table_ref()
            self._expect_word("ON")
            left = self._qualified_name()
            self._expect_op("=")
            right = self._qualified_name()
            joins.append(
                Join(join_table, left_column=left, right_column=right)
            )
        where = None
        if self._accept_word("WHERE"):
            where = self._expression()
        group_by: list[str] = []
        if self._accept_word("GROUP"):
            self._expect_word("BY")
            group_by.append(self._qualified_name())
            while self._accept_op(","):
                group_by.append(self._qualified_name())
        order_by: list[tuple[str, bool]] = []
        if self._accept_word("ORDER"):
            self._expect_word("BY")
            while True:
                column = self._qualified_name()
                descending = False
                if self._accept_word("DESC"):
                    descending = True
                else:
                    self._accept_word("ASC")
                order_by.append((column, descending))
                if not self._accept_op(","):
                    break
        limit = None
        if self._accept_word("LIMIT"):
            value = self._literal()
            if not isinstance(value, int):
                raise InvalidRequestError("LIMIT takes an integer")
            limit = value
        return SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> SelectItem:
        if self._accept_op("*"):
            return SelectItem(star=True)
        token = self._peek()
        if (
            token is not None
            and token.kind == "name"
            and token.text.upper() in _AGGREGATES
        ):
            after = self._peek(1)
            if after is not None and after.kind == "op" and after.text == "(":
                aggregate = self._next().text.upper()
                self._expect_op("(")
                arg: Optional[Expr] = None
                if not self._accept_op("*"):
                    arg = self._expression()
                self._expect_op(")")
                alias = self._alias()
                return SelectItem(aggregate=aggregate, aggregate_arg=arg, alias=alias)
        expr = self._expression()
        alias = self._alias()
        return SelectItem(expr=expr, alias=alias)

    def _alias(self) -> Optional[str]:
        if self._accept_word("AS"):
            return self._identifier()
        return None

    def _table_ref(self) -> TableRef:
        name = self._qualified_name()
        version = None
        timestamp = None
        if self._accept_word("VERSION"):
            self._expect_word("AS")
            self._expect_word("OF")
            value = self._literal()
            if not isinstance(value, int):
                raise InvalidRequestError("VERSION AS OF takes an integer")
            version = value
        elif self._accept_word("TIMESTAMP"):
            self._expect_word("AS")
            self._expect_word("OF")
            value = self._literal()
            if not isinstance(value, str):
                raise InvalidRequestError(
                    "TIMESTAMP AS OF takes a quoted timestamp string"
                )
            timestamp = value
        alias = None
        if self._accept_word("AS"):
            alias = self._identifier()
        elif (
            self._peek() is not None
            and self._peek().kind == "name"
            and not self._at_word(
                "JOIN", "WHERE", "GROUP", "ORDER", "LIMIT", "ON",
                "VERSION", "TIMESTAMP",
            )
        ):
            alias = self._identifier()
        return TableRef(name=name, alias=alias, version=version,
                        timestamp=timestamp)

    def _insert(self) -> InsertStmt:
        self._expect_word("INTO")
        table = self._qualified_name()
        columns: Optional[tuple[str, ...]] = None
        if self._accept_op("("):
            names = [self._identifier()]
            while self._accept_op(","):
                names.append(self._identifier())
            self._expect_op(")")
            columns = tuple(names)
        if self._accept_word("VALUES"):
            rows: list[tuple[Any, ...]] = []
            while True:
                self._expect_op("(")
                values = [self._literal()]
                while self._accept_op(","):
                    values.append(self._literal())
                self._expect_op(")")
                rows.append(tuple(values))
                if not self._accept_op(","):
                    break
            return InsertStmt(table=table, columns=columns, rows=tuple(rows))
        select = self._select()
        return InsertStmt(table=table, columns=columns, select=select)

    def _create(self) -> Statement:
        kind = self._expect_word("TABLE", "VIEW")
        if kind == "VIEW":
            name = self._qualified_name()
            self._expect_word("AS")
            definition = _definition_after_as(self._sql)
            select = self._select()
            return CreateViewStmt(name=name, select=select, definition_sql=definition)
        if_not_exists = False
        if self._accept_word("IF"):
            self._expect_word("NOT")
            self._expect_word("EXISTS")
            if_not_exists = True
        name = self._qualified_name()
        if self._accept_word("AS"):
            return CreateTableStmt(
                name=name, as_select=self._select(),
                if_not_exists=if_not_exists,
            )
        self._expect_op("(")
        columns = [(self._identifier(), self._identifier().upper())]
        while self._accept_op(","):
            columns.append((self._identifier(), self._identifier().upper()))
        self._expect_op(")")
        fmt = "DELTA"
        if self._accept_word("USING"):
            fmt = self._identifier().upper()
        location = None
        if self._accept_word("LOCATION"):
            value = self._literal()
            if not isinstance(value, str):
                raise InvalidRequestError("LOCATION takes a string literal")
            location = value
        return CreateTableStmt(
            name=name,
            columns=tuple(columns),
            format=fmt,
            location=location,
            if_not_exists=if_not_exists,
        )

    def _update(self) -> UpdateStmt:
        table = self._qualified_name()
        self._expect_word("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_word("WHERE"):
            where = self._expression()
        return UpdateStmt(table=table, assignments=tuple(assignments), where=where)

    def _assignment(self) -> tuple[str, Expr]:
        column = self._identifier()
        self._expect_op("=")
        return column, self._expression()

    def _delete(self) -> DeleteStmt:
        self._expect_word("FROM")
        table = self._qualified_name()
        where = None
        if self._accept_word("WHERE"):
            where = self._expression()
        return DeleteStmt(table=table, where=where)

    def _drop(self) -> DropStmt:
        kind = self._expect_word("TABLE", "VIEW")
        return DropStmt(kind=kind, name=self._qualified_name())

    def _grant(self, revoke: bool) -> GrantStmt:
        words = [self._identifier()]
        while not self._at_word("ON"):
            words.append(self._identifier())
        privilege = " ".join(w.upper() for w in words)
        self._expect_word("ON")
        kind = self._expect_word(*_SECURABLE_KINDS)
        name = self._qualified_name()
        self._expect_word("FROM" if revoke else "TO")
        token = self._next()
        if token.kind == "string":
            grantee = token.text[1:-1]
        elif token.kind in ("name", "keyword"):
            grantee = token.text
        else:
            raise InvalidRequestError(f"expected principal, got {token.text!r}")
        return GrantStmt(
            privilege=privilege,
            securable_kind=kind,
            securable_name=name,
            grantee=grantee,
            revoke=revoke,
        )

    def _show(self) -> ShowStmt:
        what = self._expect_word("CATALOGS", "SCHEMAS", "TABLES")
        container = None
        if what != "CATALOGS":
            self._expect_word("IN")
            container = self._qualified_name()
        return ShowStmt(what=what, container=container)


def _definition_after_as(sql: str) -> str:
    """The raw SELECT text after the first top-level AS of a CREATE VIEW."""
    match = re.search(r"\bAS\b", sql, re.IGNORECASE)
    if match is None:
        raise InvalidRequestError("CREATE VIEW needs AS <select>")
    return sql[match.end():].strip().rstrip(";")


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement."""
    if not sql or not sql.strip():
        raise InvalidRequestError("empty statement")
    return _SqlParser(sql).parse()
