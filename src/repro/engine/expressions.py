"""A small SQL expression language.

Used in three places: WHERE clauses in the engine, FGAC row-filter
predicates, and FGAC column-mask expressions. The catalog stores these as
strings; only engines evaluate them (the trusted-engine contract of paper
section 4.3.2).

Grammar (precedence low to high)::

    expr     := or
    or       := and (OR and)*
    and      := not (AND not)*
    not      := NOT not | cmp
    cmp      := add (( = | != | <> | < | <= | > | >= ) add)?
              | add IS [NOT] NULL | add [NOT] IN ( literal, ... )
              | add [NOT] LIKE 'pattern' | add [NOT] BETWEEN add AND add
    add      := mul (( + | - ) mul)*
    mul      := unary (( * | / | % ) unary)*
    unary    := - unary | primary
    primary  := literal | column | function ( args ) | ( expr )

Builtins: ``current_user()``, ``is_account_group_member('g')``,
``substr(s, start[, len])``, ``concat(...)``, ``upper``, ``lower``,
``length``, ``coalesce(...)``, ``abs``, ``round``, ``mask_hash(x)``
(stable redaction hash), ``if(cond, a, b)``.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import InvalidRequestError


@dataclass(frozen=True)
class EvalContext:
    """Who is evaluating: drives current_user()/group membership."""

    principal: str = ""
    groups: frozenset[str] = frozenset()


# -- tokenizer ---------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|%|\(|\)|,|\.)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "IS", "IN",
             "LIKE", "BETWEEN"}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | string | op | name | keyword
    text: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise InvalidRequestError(f"bad expression at: {text[pos:pos + 20]!r}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        value = match.group()
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper()))
        else:
            tokens.append(_Token(kind, value))
    return tokens


# -- AST ----------------------------------------------------------------------

class Expr:
    """Base AST node."""

    def eval(self, row: dict, ctx: EvalContext) -> Any:  # pragma: no cover
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Column names referenced by the expression."""
        return set()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        return self.value


@dataclass(frozen=True)
class Column(Expr):
    name: str

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        return row.get(self.name)

    def columns(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Unary(Expr):
    op: str
    operand: Expr

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        value = self.operand.eval(row, ctx)
        if self.op == "-":
            return None if value is None else -value
        if self.op == "NOT":
            return None if value is None else not _truthy(value)
        raise InvalidRequestError(f"unknown unary op {self.op}")

    def columns(self) -> set[str]:
        return self.operand.columns()


def _truthy(value: Any) -> bool:
    return bool(value)


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        if self.op == "AND":
            left = self.left.eval(row, ctx)
            if left is not None and not _truthy(left):
                return False
            right = self.right.eval(row, ctx)
            if right is not None and not _truthy(right):
                return False
            if left is None or right is None:
                return None
            return True
        if self.op == "OR":
            left = self.left.eval(row, ctx)
            if left is not None and _truthy(left):
                return True
            right = self.right.eval(row, ctx)
            if right is not None and _truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        left = self.left.eval(row, ctx)
        right = self.right.eval(row, ctx)
        if left is None or right is None:
            return None
        try:
            return _BINOPS[self.op](left, right)
        except TypeError:
            raise InvalidRequestError(
                f"type error evaluating {type(left).__name__} {self.op} "
                f"{type(right).__name__}"
            )
        except ZeroDivisionError:
            return None

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negate: bool = False

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        is_null = self.operand.eval(row, ctx) is None
        return not is_null if self.negate else is_null

    def columns(self) -> set[str]:
        return self.operand.columns()


def _like_to_regex(pattern: str) -> "re.Pattern":
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: str
    negate: bool = False

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        value = self.operand.eval(row, ctx)
        if value is None:
            return None
        result = _like_to_regex(self.pattern).match(str(value)) is not None
        return not result if self.negate else result

    def columns(self) -> set[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negate: bool = False

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        value = self.operand.eval(row, ctx)
        low = self.low.eval(row, ctx)
        high = self.high.eval(row, ctx)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if self.negate else result

    def columns(self) -> set[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    values: tuple[Any, ...]
    negate: bool = False

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        value = self.operand.eval(row, ctx)
        if value is None:
            return None
        result = value in self.values
        return not result if self.negate else result

    def columns(self) -> set[str]:
        return self.operand.columns()


def _mask_hash(value: Any) -> str:
    return hashlib.sha256(str(value).encode()).hexdigest()[:12]


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...] = ()

    def eval(self, row: dict, ctx: EvalContext) -> Any:
        name = self.name.lower()
        if name == "current_user":
            return ctx.principal
        if name == "is_account_group_member":
            group = self.args[0].eval(row, ctx)
            return group in ctx.groups
        values = [arg.eval(row, ctx) for arg in self.args]
        if name == "coalesce":
            for value in values:
                if value is not None:
                    return value
            return None
        if name == "if":
            return values[1] if _truthy(values[0]) else values[2]
        if any(v is None for v in values):
            return None
        if name == "substr":
            start = int(values[1])
            length = int(values[2]) if len(values) > 2 else None
            begin = start - 1 if start > 0 else len(values[0]) + start
            end = None if length is None else begin + length
            return str(values[0])[begin:end]
        if name == "concat":
            return "".join(str(v) for v in values)
        if name == "upper":
            return str(values[0]).upper()
        if name == "lower":
            return str(values[0]).lower()
        if name == "length":
            return len(str(values[0]))
        if name == "abs":
            return abs(values[0])
        if name == "round":
            digits = int(values[1]) if len(values) > 1 else 0
            return round(values[0], digits)
        if name == "mask_hash":
            return _mask_hash(values[0])
        raise InvalidRequestError(f"unknown function {self.name!r}")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out


# -- parser ------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise InvalidRequestError("unexpected end of expression")
        self._pos += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind and (text is None or token.text == text):
            self._pos += 1
            return token
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            raise InvalidRequestError(
                f"expected {text or kind}, got {actual.text if actual else 'end'!r}"
            )
        return token

    def parse(self) -> Expr:
        expr = self._or()
        if self._peek() is not None:
            raise InvalidRequestError(
                f"trailing tokens in expression: {self._peek().text!r}"
            )
        return expr

    def _or(self) -> Expr:
        left = self._and()
        while self._accept("keyword", "OR"):
            left = Binary("OR", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self._accept("keyword", "AND"):
            left = Binary("AND", left, self._not())
        return left

    def _not(self) -> Expr:
        if self._accept("keyword", "NOT"):
            return Unary("NOT", self._not())
        return self._cmp()

    def _cmp(self) -> Expr:
        left = self._add()
        token = self._peek()
        if token is not None and token.kind == "op" and token.text in (
            "=", "!=", "<>", "<", "<=", ">", ">="
        ):
            self._next()
            op = "!=" if token.text == "<>" else token.text
            return Binary(op, left, self._add())
        if self._accept("keyword", "IS"):
            negate = self._accept("keyword", "NOT") is not None
            self._expect("keyword", "NULL")
            return IsNull(left, negate=negate)
        negate = False
        if token is not None and token.kind == "keyword" and token.text == "NOT":
            after = self._tokens[self._pos + 1] if self._pos + 1 < len(self._tokens) else None
            if after is not None and after.kind == "keyword" and after.text in (
                "IN", "LIKE", "BETWEEN"
            ):
                self._next()
                negate = True
        if self._accept("keyword", "IN"):
            self._expect("op", "(")
            values = [self._literal_value()]
            while self._accept("op", ","):
                values.append(self._literal_value())
            self._expect("op", ")")
            return InList(left, tuple(values), negate=negate)
        if self._accept("keyword", "LIKE"):
            pattern = self._literal_value()
            if not isinstance(pattern, str):
                raise InvalidRequestError("LIKE takes a string pattern")
            return Like(left, pattern, negate=negate)
        if self._accept("keyword", "BETWEEN"):
            low = self._add()
            self._expect("keyword", "AND")
            high = self._add()
            return Between(left, low, high, negate=negate)
        return left

    def _literal_value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text in ("TRUE", "FALSE"):
            return token.text == "TRUE"
        if token.kind == "keyword" and token.text == "NULL":
            return None
        raise InvalidRequestError(f"expected a literal, got {token.text!r}")

    def _add(self) -> Expr:
        left = self._mul()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.text in ("+", "-"):
                self._next()
                left = Binary(token.text, left, self._mul())
            else:
                return left

    def _mul(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.text in ("*", "/", "%"):
                self._next()
                left = Binary(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._accept("op", "-"):
            return Unary("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._next()
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword":
            if token.text == "TRUE":
                return Literal(True)
            if token.text == "FALSE":
                return Literal(False)
            if token.text == "NULL":
                return Literal(None)
            raise InvalidRequestError(f"unexpected keyword {token.text!r}")
        if token.kind == "op" and token.text == "(":
            inner = self._or()
            self._expect("op", ")")
            return inner
        if token.kind == "name":
            if self._accept("op", "("):
                args: list[Expr] = []
                if not self._accept("op", ")"):
                    args.append(self._or())
                    while self._accept("op", ","):
                        args.append(self._or())
                    self._expect("op", ")")
                return FunctionCall(token.text, tuple(args))
            # dotted (qualified) column references: alias.column
            parts = [token.text]
            while self._accept("op", "."):
                parts.append(self._expect("name").text)
            return Column(".".join(parts))
        raise InvalidRequestError(f"unexpected token {token.text!r}")


def parse_prefix(tokens: list[_Token], pos: int) -> tuple[Expr, int]:
    """Parse an expression from ``tokens[pos:]``, returning it and the
    position of the first unconsumed token (used by the SQL parser to
    embed expressions inside statements)."""
    parser = _Parser(tokens)
    parser._pos = pos
    expr = parser._or()
    return expr, parser._pos


def compile_expression(text: str) -> Expr:
    """Parse an expression string into an evaluable AST."""
    if not text or not text.strip():
        raise InvalidRequestError("empty expression")
    return _Parser(_tokenize(text)).parse()


def evaluate(text: str, row: dict, ctx: Optional[EvalContext] = None) -> Any:
    """One-shot convenience: compile and evaluate."""
    return compile_expression(text).eval(row, ctx or EvalContext())
