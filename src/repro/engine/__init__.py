"""The SQL engine substrate.

A compact SQL engine that plays the role of the Databricks Runtime in the
paper's "life of a SQL query" (section 3.4): it parses queries, finds
securable references, fetches metadata + authorization + FGAC rules +
credentials from Unity Catalog in one batched call, executes over the
Delta substrate through governed storage clients, enforces FGAC when
trusted, reports lineage, and delegates to the data-filtering service
when untrusted.
"""

from repro.engine.expressions import EvalContext, compile_expression
from repro.engine.parser import parse_sql
from repro.engine.session import EngineSession, QueryResult
from repro.engine.filtering_service import DataFilteringService

__all__ = [
    "DataFilteringService",
    "EngineSession",
    "EvalContext",
    "QueryResult",
    "compile_expression",
    "parse_sql",
]
