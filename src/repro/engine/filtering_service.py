"""The data filtering service (paper section 4.3.2).

"UC supports a data filtering service, a trusted engine to which
untrusted engines delegate queries involving FGAC policies. The data
filtering service securely executes these queries and returns the
results to the untrusted engines."

The service runs trusted sessions (its machine identity is isolated from
user code) but evaluates every query *as the delegating user*, so FGAC
rules apply to the user, not the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.clock import Clock


@dataclass
class FilteringStats:
    delegated_queries: int = 0


class DataFilteringService:
    """A trusted execution endpoint for FGAC-governed queries."""

    def __init__(self, catalog, metastore_id: str, clock: Optional[Clock] = None):
        self._catalog = catalog
        self._metastore_id = metastore_id
        self._clock = clock
        self._sessions: dict[str, object] = {}
        self.stats = FilteringStats()

    def _session_for(self, principal: str):
        session = self._sessions.get(principal)
        if session is None:
            from repro.engine.session import EngineSession

            session = EngineSession(
                self._catalog,
                self._metastore_id,
                principal,
                engine_name="data-filtering-service",
                trusted=True,
                clock=self._clock,
            )
            self._sessions[principal] = session
        return session

    def execute(self, principal: str, sql: str):
        """Run ``sql`` on behalf of ``principal`` under trusted enforcement.

        In Databricks the untrusted engine ships the query over Spark
        Connect; here it is a direct call with the same trust semantics.
        """
        self.stats.delegated_queries += 1
        return self._session_for(principal).sql(sql)
