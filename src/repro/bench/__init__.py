"""Benchmark harness utilities.

* :mod:`~repro.bench.stats` — CDFs, percentiles, histograms;
* :mod:`~repro.bench.latency` — the simulated cost model: calibrated
  per-operation costs plus a capacity-limited DB server (FIFO queue) so
  latency/throughput curves have realistic saturation behaviour;
* :mod:`~repro.bench.loadgen` — closed-loop load generation over SimClock;
* :mod:`~repro.bench.report` — text tables and paper-vs-measured rows.
"""

from repro.bench.stats import cdf, percentile, summarize
from repro.bench.latency import DbServerModel, LatencyModel
from repro.bench.loadgen import ClosedLoopResult, run_closed_loop
from repro.bench.report import (
    ascii_bar_chart,
    paper_row,
    render_metrics,
    render_table,
)

__all__ = [
    "ClosedLoopResult",
    "DbServerModel",
    "LatencyModel",
    "ascii_bar_chart",
    "cdf",
    "paper_row",
    "percentile",
    "render_metrics",
    "render_table",
    "run_closed_loop",
    "summarize",
]
