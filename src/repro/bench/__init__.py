"""Benchmark harness utilities.

* :mod:`~repro.bench.stats` — CDFs, percentiles, histograms;
* :mod:`~repro.bench.latency` — the simulated cost model: calibrated
  per-operation costs plus a capacity-limited DB server (FIFO queue) so
  latency/throughput curves have realistic saturation behaviour;
* :mod:`~repro.bench.loadgen` — closed-loop load generation over SimClock;
* :mod:`~repro.bench.chaos` — goodput/p99 under deterministic fault
  injection (the resilience layer's acceptance bench);
* :mod:`~repro.bench.report` — text tables and paper-vs-measured rows.
"""

from repro.bench.stats import cdf, percentile, summarize
from repro.bench.latency import DbServerModel, LatencyModel
from repro.bench.loadgen import ClosedLoopResult, run_closed_loop
from repro.bench.report import (
    ascii_bar_chart,
    paper_row,
    render_metrics,
    render_table,
)

_CHAOS_EXPORTS = ("ChaosReport", "check_determinism", "run_chaos_scenario")


def __getattr__(name):
    # lazy: `python -m repro.bench.chaos` would otherwise warn about the
    # package importing the module it is about to execute
    if name in _CHAOS_EXPORTS:
        from repro.bench import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChaosReport",
    "ClosedLoopResult",
    "DbServerModel",
    "LatencyModel",
    "ascii_bar_chart",
    "cdf",
    "check_determinism",
    "paper_row",
    "percentile",
    "render_metrics",
    "render_table",
    "run_chaos_scenario",
    "run_closed_loop",
    "summarize",
]
