"""The simulated latency cost model.

Wall-clock latency on the authors' AWS testbed is not reproducible on a
laptop, so benchmarks run on simulated time: every operation charges a
calibrated cost, and DB access goes through a capacity-limited FIFO
server so saturation appears where it should (Figure 10(b)'s no-cache
configuration is "bottlenecked by database reads and reaches its
throughput limit").

Cost constants are *ratios*, anchored to typical intra-region figures:
~0.5 ms network RTT, ~0.8 ms MySQL point read, in-memory cache probes in
the microseconds. Who-wins conclusions depend on these ratios, not the
absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Per-operation costs, in seconds."""

    #: one client<->service network round trip (UC is a remote service)
    network_rtt: float = 0.0005
    #: one DB point query (version check, row fetch) — service time only;
    #: queueing is added by DbServerModel
    db_point_read: float = 0.0008
    #: one batched DB read (``multi_get``): a single round trip regardless
    #: of how many keys it carries — the whole point of batching
    db_multi_get: float = 0.0008
    #: per-row cost of a DB scan (uncached reads scan entities/grants)
    db_scan_row: float = 0.0000004
    #: one in-memory cache probe
    cache_probe: float = 0.000003
    #: CPU cost of one authorization evaluation
    auth_check: float = 0.00002
    #: cloud STS token mint (remote call to the provider)
    sts_mint: float = 0.004
    #: storage GET first-byte latency (engine-side, not catalog)
    storage_get: float = 0.008
    #: per-byte storage throughput cost (~200 MB/s effective)
    storage_byte: float = 5e-9


class DbServerModel:
    """A capacity-limited FIFO database server on simulated time.

    ``capacity_qps`` bounds sustained point-read throughput (a
    db.m5.24xlarge MySQL doing simple PK reads). ``submit`` returns the
    completion time of a batch of queries issued at ``now``; latency =
    completion - now includes queueing behind earlier arrivals, which is
    what bends the latency curve upward near saturation.
    """

    def __init__(
        self,
        model: LatencyModel,
        capacity_qps: float = 10_000.0,
        response_floor: float = 0.0,
    ):
        """``response_floor`` is the fixed round-trip latency of one DB
        request batch (network + parse), experienced by the caller but not
        occupying server capacity — what separates a DB's *latency* from
        its *throughput*."""
        if capacity_qps <= 0:
            raise ValueError("capacity must be positive")
        self._model = model
        self._service_time = 1.0 / capacity_qps
        self._floor = response_floor
        self._next_free = 0.0
        self.total_queries = 0

    def submit(self, now: float, queries: int, scan_rows: int = 0) -> float:
        """Issue ``queries`` point reads (+ a scan of ``scan_rows`` rows)
        at time ``now``; returns the completion timestamp."""
        if queries <= 0 and scan_rows <= 0:
            return now
        self.total_queries += queries
        busy_until = max(now, self._next_free)
        work = queries * self._service_time + scan_rows * self._model.db_scan_row
        self._next_free = busy_until + work
        return self._next_free + self._floor

    def utilization_until(self, horizon: float) -> float:
        """Fraction of time the server was busy in [0, horizon]."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._next_free / horizon)

    def reset(self) -> None:
        self._next_free = 0.0
        self.total_queries = 0
