"""The list/resolve benchmark (``python -m repro.bench.listing``).

Drives a list-heavy workload — browse catalogs, list a catalog's
schemas, list a schema's tables, point-get and resolve tables — against
two *uncached* service instances that differ only in their metadata
backend: the flat in-memory store (every lookup is a filtered full
scan) versus the TreeCat-style hierarchical store (every lookup is a
range read over prefix-ordered keys and the tree index).

The estate comes from :mod:`repro.workloads`: a heavy-tailed synthetic
deployment (deep catalogs, wide schemas) generated once and bulk-loaded
into both backends with identical entity ids, plus a governed grant
surface (a reader group and per-securable noise grantees) that makes
the flat backend's per-child ``grants_on`` scans O(grant-table size).

Three phases:

* **performance** — a closed loop of clients on simulated time; each
  request charges costs from *measured* store work (snapshot reads,
  batched reads, range scans, rows examined), so the speedup is the
  scan work the tree index actually avoids, not a tuned constant.
* **equivalence** — a fixed, seeded op script runs against both
  backends; results (listed entities, resolved metadata, errors) and
  audit trails must be byte-identical. The tree index is an
  optimization: it must never change an answer.
* **determinism** — the equivalence script reruns with the same seed on
  fresh instances and must reproduce both backends' bytes exactly.

Writes ``BENCH_listing.json``. ``--check`` exits non-zero when the tree
backend's list/resolve throughput is below 5x the flat backend's, or
any equivalence/determinism comparison fails.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import random
import sys
from typing import Any, Optional

from repro.bench.latency import DbServerModel, LatencyModel
from repro.bench.loadgen import run_closed_loop
from repro.clock import SimClock
from repro.core.auth.privileges import Privilege, PrivilegeGrant
from repro.core.model.entity import SecurableKind
from repro.core.persistence.memory import InMemoryMetadataStore
from repro.core.persistence.store import Tables, WriteOp
from repro.core.persistence.treecat import TreeCatMetadataStore
from repro.core.service.catalog_service import UnityCatalogService
from repro.errors import UnityCatalogError

MODEL = LatencyModel()
DB_CAPACITY_QPS = 50_000.0

ADMIN = "admin"
READER = "alice"
GROUP = "analysts"

PRIVS = {
    SecurableKind.CATALOG: Privilege.USE_CATALOG,
    SecurableKind.SCHEMA: Privilege.USE_SCHEMA,
    SecurableKind.TABLE: Privilege.SELECT,
}


# ---------------------------------------------------------------------------
# estate construction (shared across backends: identical ids everywhere)


class Estate:
    """One synthetic metastore population plus the workload name pools."""

    def __init__(self, seed: int, max_tables: int):
        from repro.workloads import DeploymentConfig, generate_deployment

        config = DeploymentConfig(
            seed=seed,
            metastores=1,
            catalog_mode=6.0, catalog_cap=8,
            schema_mode=4.0, schema_cap=6,
            tables_per_catalog_mode=80.0, tables_cap=2_000,
            volumes_per_catalog_mode=2.0, volumes_cap=40,
        )
        deployment = generate_deployment(config)
        self.source_id = deployment.metastores[0].id
        # order (and truncate) by qualified NAME, never by minted id —
        # ids are fresh uuids per generation, names reproduce per seed
        self.catalogs = sorted(deployment.catalogs, key=lambda e: e.name)
        catalog_by_id = {c.id: c for c in self.catalogs}
        self.schemas = sorted(
            (s for s in deployment.schemas if s.parent_id in catalog_by_id),
            key=lambda s: (catalog_by_id[s.parent_id].name, s.name),
        )
        self.schema_names = {
            s.id: f"{catalog_by_id[s.parent_id].name}.{s.name}"
            for s in self.schemas
        }
        self.tables = sorted(
            (t for t in deployment.tables if t.parent_id in self.schema_names),
            key=lambda t: (self.schema_names[t.parent_id], t.name),
        )[:max_tables]
        self.volumes = sorted(
            (v for v in deployment.volumes if v.parent_id in self.schema_names),
            key=lambda v: (self.schema_names[v.parent_id], v.name),
        )[:max_tables // 8]

        self.catalog_names = [c.name for c in self.catalogs]
        self.table_names = {
            t.id: f"{self.schema_names[t.parent_id]}.{t.name}"
            for t in self.tables
        }
        #: tables safe to resolve with credentials disabled
        self.resolvable = sorted(
            self.table_names[t.id] for t in self.tables
            if t.spec.get("table_type") == "MANAGED"
        )

    def entities(self):
        return self.catalogs + self.schemas + self.tables + self.volumes

    def granted(self):
        """(entity, privilege) pairs the reader group and noise users get."""
        for catalog in self.catalogs:
            yield catalog, Privilege.USE_CATALOG
        for schema in self.schemas:
            yield schema, Privilege.USE_SCHEMA
        for table in self.tables:
            yield table, Privilege.SELECT


def _build_service(backend: str, estate: Estate, noise_grantees: int):
    """An uncached service over ``backend``, bulk-loaded with the estate.

    The population is committed straight through the store contract (the
    service API would re-mint ids); both backends receive byte-identical
    rows, so any later divergence is the backend's fault.
    """
    store = (TreeCatMetadataStore() if backend == "treecat"
             else InMemoryMetadataStore())
    service = UnityCatalogService(store=store, clock=SimClock(),
                                  enable_cache=False)
    directory = service.directory
    directory.add_user(ADMIN)
    directory.add_user(READER)
    directory.add_group(GROUP)
    directory.add_member(GROUP, READER)
    noise = [f"user{i:02d}" for i in range(noise_grantees)]
    for name in noise:
        directory.add_user(name)

    mid = service.create_metastore("listbench", owner=ADMIN).id
    ops: list[WriteOp] = []
    for entity in estate.entities():
        row = dict(entity.to_dict())
        row["metastore_id"] = mid
        if row.get("parent_id") == estate.source_id:
            row["parent_id"] = mid
        ops.append(WriteOp.put(Tables.ENTITIES, entity.id, row))
    for entity, privilege in estate.granted():
        for grantee in [GROUP, *noise]:
            grant = PrivilegeGrant(entity.id, grantee, privilege, ADMIN, 0.0)
            ops.append(WriteOp.put(Tables.GRANTS, grant.key, grant.to_dict()))
    store.commit(mid, store.current_version(mid), ops)
    return service, mid


# ---------------------------------------------------------------------------
# the op script (seeded, shared by every phase and backend)


def _op_script(estate: Estate, seed: int, count: int) -> list[tuple]:
    """List-heavy mix: mostly directory browsing, some point reads."""
    rng = random.Random(seed)
    schemas = sorted(estate.schema_names.values())
    tables = sorted(estate.table_names.values())
    ops: list[tuple] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.15:
            ops.append(("list_catalogs",))
        elif roll < 0.40:
            ops.append(("list_schemas", rng.choice(estate.catalog_names)))
        elif roll < 0.70:
            ops.append(("list_tables", rng.choice(schemas)))
        elif roll < 0.80:
            ops.append(("get", rng.choice(tables)))
        else:
            pool = estate.resolvable or tables
            ops.append(("resolve", sorted(
                rng.sample(pool, min(3, len(pool))))))
    return ops


def _strip_ids(value):
    """Drop minted-id fields recursively (metastore ids differ per side)."""
    if isinstance(value, dict):
        return {
            k: _strip_ids(v) for k, v in value.items()
            if not k.endswith("_id") and k != "id"
        }
    if isinstance(value, list):
        return [_strip_ids(v) for v in value]
    return value


def _execute(service, mid: str, op: tuple):
    kind = op[0]
    try:
        if kind == "list_catalogs":
            result = service.list_securables(mid, READER, SecurableKind.CATALOG)
        elif kind == "list_schemas":
            result = service.list_securables(mid, READER, SecurableKind.SCHEMA,
                                             parent_name=op[1])
        elif kind == "list_tables":
            result = service.list_securables(mid, READER, SecurableKind.TABLE,
                                             parent_name=op[1])
        elif kind == "get":
            result = service.get_securable(mid, READER, SecurableKind.TABLE,
                                           op[1])
        else:  # resolve
            result = service.resolve_for_query(
                mid, READER, list(op[1]),
                include_credentials=False, engine_trusted=True,
            )
    except UnityCatalogError as exc:
        return {"error": type(exc).__name__}
    return result


def _fingerprint(result) -> Any:
    if isinstance(result, dict):  # an error marker
        return result
    if isinstance(result, list):  # listed entities (already name-sorted)
        return [_strip_ids(e.to_dict()) for e in result]
    if hasattr(result, "assets"):  # a QueryResolution
        return {
            "assets": [
                {
                    "full_name": asset.full_name,
                    "table_type": asset.table_type,
                    "format": asset.format,
                    "columns": asset.columns,
                    "fgac": _strip_ids(asset.fgac.to_dict()),
                }
                for asset in (result.assets[k] for k in sorted(result.assets))
            ],
        }
    return _strip_ids(result.to_dict())  # a single entity


def _audit_fingerprint(service) -> list[tuple]:
    return [
        (r.principal, r.action, r.securable, r.allowed)
        for r in service.audit
    ]


def _run_script(backend: str, estate: Estate, ops: list[tuple],
                noise_grantees: int) -> dict[str, str]:
    service, mid = _build_service(backend, estate, noise_grantees)
    outcomes = [_fingerprint(_execute(service, mid, op)) for op in ops]
    return {
        "results": json.dumps(outcomes, sort_keys=True),
        "audit": json.dumps(_audit_fingerprint(service), sort_keys=True),
    }


# ---------------------------------------------------------------------------
# performance phase


def _request_fn(service, mid, ops, db):
    """One workload request; charges simulated cost from measured work."""
    counter = itertools.count()
    store = service.store

    def request(now: float) -> float:
        reads0 = store.read_count
        multi0 = getattr(store, "multi_get_count", 0)
        ranges0 = getattr(store, "range_scan_count", 0)
        rows0 = store.scan_row_count

        _execute(service, mid, ops[next(counter) % len(ops)])

        t = now + MODEL.network_rtt
        # every snapshot open, batched read, and range read is one DB
        # query; every row the backend examined is scan work
        queries = (
            (store.read_count - reads0)
            + (getattr(store, "multi_get_count", 0) - multi0)
            + (getattr(store, "range_scan_count", 0) - ranges0)
        )
        scan_rows = store.scan_row_count - rows0
        if queries or scan_rows:
            t = db.submit(t, queries=queries, scan_rows=scan_rows)
        return t

    return request


def _run_mode(backend: str, estate, ops, args) -> dict[str, Any]:
    service, mid = _build_service(backend, estate, args.noise_grantees)
    store = service.store
    db = DbServerModel(
        MODEL, capacity_qps=DB_CAPACITY_QPS, response_floor=MODEL.db_point_read
    )
    result = run_closed_loop(
        args.clients, args.duration,
        _request_fn(service, mid, ops, db),
        warmup=args.duration * 0.2,
    )
    summary = result.latency_summary()
    return {
        "backend": backend,
        "completed": result.completed,
        "throughput_qps": result.throughput,
        "p50_ms": summary["p50"] * 1000,
        "p99_ms": summary["p99"] * 1000,
        "mean_ms": summary["mean"] * 1000,
        "db_queries": db.total_queries,
        "store_scan_rows": store.scan_row_count,
        "store_range_scans": store.range_scan_count,
        "store_multi_gets": store.multi_get_count,
    }


# ---------------------------------------------------------------------------


def run_bench(args) -> dict[str, Any]:
    estate = Estate(args.seed, args.max_tables)
    ops = _op_script(estate, args.seed, args.script_ops)

    report: dict[str, Any] = {
        "bench": "listing",
        "config": {
            "seed": args.seed,
            "catalogs": len(estate.catalogs),
            "schemas": len(estate.schemas),
            "tables": len(estate.tables),
            "volumes": len(estate.volumes),
            "noise_grantees": args.noise_grantees,
            "script_ops": args.script_ops,
            "clients": args.clients,
            "duration_s": args.duration,
            "db_capacity_qps": DB_CAPACITY_QPS,
        },
        "modes": {},
    }

    report["modes"]["treecat"] = _run_mode("treecat", estate, ops, args)
    report["modes"]["memory"] = _run_mode("memory", estate, ops, args)
    flat = report["modes"]["memory"]
    tree = report["modes"]["treecat"]
    report["speedup"] = {
        "throughput_x": tree["throughput_qps"] / flat["throughput_qps"]
        if flat["throughput_qps"] else float("inf"),
        "p50_x": flat["p50_ms"] / tree["p50_ms"]
        if tree["p50_ms"] else float("inf"),
        "scan_rows_ratio": flat["store_scan_rows"] / tree["store_scan_rows"]
        if tree["store_scan_rows"] else float("inf"),
    }

    script = ops[: args.equivalence_ops]
    first = {
        backend: _run_script(backend, estate, script, args.noise_grantees)
        for backend in ("memory", "treecat")
    }
    second = {
        backend: _run_script(backend, estate, script, args.noise_grantees)
        for backend in ("memory", "treecat")
    }
    identical_results = (
        first["memory"]["results"] == first["treecat"]["results"]
    )
    identical_audits = first["memory"]["audit"] == first["treecat"]["audit"]
    deterministic = all(
        first[backend] == second[backend] for backend in first
    )
    report["equivalence"] = {
        "ops": len(script),
        "identical_results": identical_results,
        "identical_audits": identical_audits,
        "deterministic_rerun": deterministic,
    }
    report["checks"] = {
        "speedup_at_least_5x": report["speedup"]["throughput_x"] >= 5.0,
        "identical_results": identical_results,
        "identical_audits": identical_audits,
        "deterministic_rerun": deterministic,
    }
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.listing", description=__doc__
    )
    parser.add_argument("--seed", type=int, default=19)
    parser.add_argument("--max-tables", type=int, default=260)
    parser.add_argument("--noise-grantees", type=int, default=4,
                        help="extra grantees per securable (grant rows the "
                             "flat backend rescans on every visibility check)")
    parser.add_argument("--script-ops", type=int, default=64)
    parser.add_argument("--equivalence-ops", type=int, default=24)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=0.2,
                        help="simulated seconds per closed-loop run")
    parser.add_argument("--out", default="BENCH_listing.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when the 5x gate or any equivalence "
                             "comparison fails")
    args = parser.parse_args(argv)

    report = run_bench(args)
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for mode, stats in report["modes"].items():
        print(f"{mode:>8}: {stats['throughput_qps']:>10,.0f} req/s"
              f"  p50 {stats['p50_ms']:.3f} ms  p99 {stats['p99_ms']:.3f} ms"
              f"  rows scanned {stats['store_scan_rows']:,}"
              f"  range scans {stats['store_range_scans']:,}")
    s = report["speedup"]
    print(f" speedup: {s['throughput_x']:.1f}x throughput, "
          f"{s['p50_x']:.1f}x p50, "
          f"{s['scan_rows_ratio']:.0f}x fewer rows scanned")
    e = report["equivalence"]
    print(f" equivalence: {e['ops']} ops, "
          f"results identical={e['identical_results']}, "
          f"audits identical={e['identical_audits']}, "
          f"deterministic={e['deterministic_rerun']}")
    print(f"wrote {args.out}")

    if args.check:
        failed = [name for name, ok in report["checks"].items() if not ok]
        if failed:
            print(f"CHECK FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
        print("checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
