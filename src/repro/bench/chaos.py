"""Chaos benchmark: goodput and tail latency under injected faults.

The paper's service lives on infrastructure that throttles and fails;
this scenario measures how the reproduction behaves when it does. A
seeded :class:`~repro.faults.FaultInjector` degrades the object store,
the STS endpoint, and the metadata-store commit path while a mixed
catalog + Delta workload runs on :class:`~repro.clock.SimClock`. The
resilience layer (retry/backoff in the storage client, STS issuer, and
service commit loop) must absorb every injected fault: the acceptance
bar is **zero user-visible errors** at a 10% storage fault rate.

Everything is deterministic: same seed → byte-identical goodput, tail
latencies, and retry/fault/breaker counters. ``python -m
repro.bench.chaos --check-determinism`` runs every seed twice and fails
on any divergence — the CI ``chaos`` job's gate.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from random import Random
from typing import Optional

from repro.bench.report import render_table
from repro.bench.stats import summarize
from repro.clock import SimClock
from repro.cloudstore.object_store import StoragePath
from repro.cloudstore.sts import AccessLevel
from repro.core.model.entity import SecurableKind
from repro.core.service.catalog_service import UnityCatalogService
from repro.deltalog.table import DeltaTable
from repro.errors import UnityCatalogError
from repro.faults import FaultInjector
from repro.obs import Observability
from repro.resilience import RetryPolicy

#: simulated service-side cost charged per operation, seconds — gives
#: fault-free ops a nonzero latency so retry amplification is visible
#: as a p99/goodput shift rather than a divide-by-zero
_BASE_OP_COST = 0.001


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    seed: int
    operations: int
    ok: int = 0
    user_errors: int = 0
    sim_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    retries: dict[str, float] = field(default_factory=dict)
    faults: dict[str, float] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Successful operations per simulated second."""
        return self.ok / self.sim_seconds if self.sim_seconds > 0 else 0.0

    def latency_summary(self) -> dict[str, float]:
        return summarize(self.latencies)

    def fingerprint(self) -> str:
        """A byte-stable digest of every counter the run produced.

        Two runs with the same seed must produce identical fingerprints;
        the CI chaos job enforces exactly that.
        """
        return json.dumps(
            {
                "seed": self.seed,
                "ok": self.ok,
                "user_errors": self.user_errors,
                "sim_seconds": self.sim_seconds,
                "latencies": self.latencies,
                "retries": self.retries,
                "faults": self.faults,
                "metrics": self.metrics,
            },
            sort_keys=True,
        )

    def summary_row(self) -> list[object]:
        latency = self.latency_summary()
        return [
            self.seed,
            self.operations,
            self.ok,
            self.user_errors,
            round(self.goodput, 2),
            round(latency["p50"] * 1000, 3),
            round(latency["p99"] * 1000, 3),
            int(sum(self.retries.values())),
            int(sum(self.faults.values())),
        ]


def run_chaos_scenario(
    seed: int = 11,
    operations: int = 300,
    fault_rate: float = 0.10,
    tables: int = 8,
    retry_policy: Optional[RetryPolicy] = None,
) -> ChaosReport:
    """One seeded chaos run: set up a catalog, turn on faults, drive a
    mixed workload, report goodput/p99 and every resilience counter."""
    clock = SimClock()
    obs = Observability(clock=clock)
    injector = FaultInjector(clock, seed=seed, metrics=obs.metrics)
    policy = retry_policy or RetryPolicy(
        max_attempts=6, base_delay=0.02, max_delay=1.0, jitter=0.5
    )
    service = UnityCatalogService(
        clock=clock, obs=obs, faults=injector, retry_policy=policy
    )
    service.directory.add_user("admin")
    mid = service.create_metastore("chaos", owner="admin").id
    service.create_securable(mid, "admin", SecurableKind.CATALOG, "cat")
    service.create_securable(mid, "admin", SecurableKind.SCHEMA, "cat.sch")

    handles: list[tuple[str, DeltaTable]] = []
    for i in range(tables):
        name = f"cat.sch.t{i}"
        entity = service.create_securable(
            mid, "admin", SecurableKind.TABLE, name,
            spec={
                "table_type": "MANAGED",
                "columns": [{"name": "k", "type": "INT"},
                            {"name": "v", "type": "STRING"}],
            },
        )
        credential = service.vend_credentials(
            mid, "admin", SecurableKind.TABLE, name, AccessLevel.READ_WRITE
        )
        client = service.governed_client(credential)
        root = StoragePath.parse(entity.storage_path)
        table = DeltaTable.create(
            client, root, entity.id,
            [{"name": "k", "type": "INT"}, {"name": "v", "type": "STRING"}],
            clock=clock, metrics=obs.metrics,
        )
        table.append([{"k": i, "v": f"seed-{i}"}])
        handles.append((name, table))

    # setup done — degrade the infrastructure
    injector.inject("put", fault_rate, kind="throttle")
    injector.inject("get", fault_rate, kind="throttle")
    injector.inject("list", fault_rate / 2, kind="unavailable")
    injector.inject("store.commit", fault_rate / 2, kind="unavailable")
    injector.inject("sts.mint", fault_rate / 2, kind="throttle")

    rng = Random(seed ^ 0xC4A05)
    report = ChaosReport(seed=seed, operations=operations)
    started = clock.now()
    row = 0
    for _ in range(operations):
        name, table = handles[rng.randrange(len(handles))]
        op = rng.random()
        issued = clock.now()
        try:
            clock.advance(_BASE_OP_COST)
            if op < 0.40:
                service.get_securable(mid, "admin", SecurableKind.TABLE, name)
            elif op < 0.60:
                service.vend_credentials(
                    mid, "admin", SecurableKind.TABLE, name, AccessLevel.READ
                )
            elif op < 0.85:
                row += 1
                table.append([{"k": row, "v": f"row-{row}"}])
            else:
                table.read_all()
        except UnityCatalogError:
            report.user_errors += 1
        else:
            report.ok += 1
            report.latencies.append(clock.now() - issued)
    report.sim_seconds = clock.now() - started

    snapshot = obs.metrics.snapshot()
    report.metrics = snapshot
    report.retries = {
        key: value for key, value in snapshot.items()
        if key.startswith("uc_retries_total")
    }
    report.faults = {
        key: value for key, value in snapshot.items()
        if key.startswith("uc_faults_injected_total")
    }
    return report


def check_determinism(
    seeds: list[int], operations: int, fault_rate: float
) -> tuple[list[ChaosReport], list[int]]:
    """Run each seed twice; return (first-run reports, mismatched seeds)."""
    reports: list[ChaosReport] = []
    mismatched: list[int] = []
    for seed in seeds:
        first = run_chaos_scenario(seed, operations, fault_rate)
        second = run_chaos_scenario(seed, operations, fault_rate)
        if first.fingerprint() != second.fingerprint():
            mismatched.append(seed)
        reports.append(first)
    return reports, mismatched


def render_report(reports: list[ChaosReport]) -> str:
    return render_table(
        ["seed", "ops", "ok", "errors", "goodput/s", "p50 ms", "p99 ms",
         "retries", "faults"],
        [report.summary_row() for report in reports],
        title="chaos bench — goodput/p99 under injected faults",
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[11, 23, 47])
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--fault-rate", type=float, default=0.10)
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run each seed twice and fail on any counter divergence",
    )
    args = parser.parse_args(argv)

    if args.check_determinism:
        reports, mismatched = check_determinism(
            args.seeds, args.ops, args.fault_rate
        )
    else:
        reports = [
            run_chaos_scenario(seed, args.ops, args.fault_rate)
            for seed in args.seeds
        ]
        mismatched = []

    print(render_report(reports))
    failed = False
    for report in reports:
        if report.user_errors:
            print(f"FAIL: seed {report.seed} surfaced "
                  f"{report.user_errors} user-visible error(s)")
            failed = True
    if mismatched:
        print(f"FAIL: nondeterministic seeds: {mismatched}")
        failed = True
    if not failed and args.check_determinism:
        print(f"determinism OK across seeds {args.seeds} (two runs each)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
