"""Read-throughput scale-out benchmark (``python -m repro.bench.scaleout``).

Drives the same catalog-local query workload against
:class:`~repro.core.cluster.CatalogCluster` instances of 1, 2, 4 and 8
shards on simulated time. Catalogs are placed round-robin across shards
with the online rebalancer (so the hash function's placement luck never
decides the result), and each shard is modelled as a FIFO CPU server
plus a capacity-limited DB server: per-request costs come from
*measured* work deltas on the owning shard (authorization evaluations,
grant/policy rows scanned, store reads), exactly like the hotpath bench.

A single shard saturates its CPU server; adding shards splits the
catalogs — and therefore the measured work — across servers, so
throughput should scale near-linearly until the client population stops
saturating the fleet. A small scatter fraction (cross-shard
``list_securables``) keeps the fan-out path honest.

The run is deterministic end to end: same seed → byte-identical report.
``--check`` runs everything twice and fails on divergence, or when
8-shard read throughput is less than 3x the single shard's.

``run_scaleout`` is importable for the chaos determinism suite, which
re-runs the 4-shard mode at a 10% injected fault rate and requires zero
user-visible errors (dark-shard reads degrade to the router's
last-known-good cache instead of failing).

``--failover`` switches to the replica-group chaos bench: a 2-shard,
3-replica cluster serves a mixed read/write trace on simulated time; the
leader of the hot catalog's shard is killed mid-trace via a fault-rule
crash. Gates: **zero** user-visible read errors across the whole trace,
a write-unavailability window bounded by 1.5x the leader lease, a
fencing-token rejection for the deposed leader's in-flight write, and a
final state byte-identical (modulo random uuids) to a no-failure twin
run fed only the accepted writes.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import time
from random import Random
from typing import Any, Optional

from repro.bench.latency import DbServerModel, LatencyModel
from repro.bench.loadgen import run_closed_loop
from repro.bench.wallclock import run_threaded_loop
from repro.clock import SimClock
from repro.core.auth.privileges import Privilege
from repro.core.cluster import CatalogCluster
from repro.core.model.entity import SecurableKind
from repro.core.persistence.store import Tables
from repro.errors import (
    FencingTokenError,
    LeaseExpiredError,
    UnityCatalogError,
)
from repro.faults import FaultInjector
from repro.obs import Observability

MODEL = LatencyModel()
#: fixed per-request service CPU (parsing, marshalling, response build) —
#: the floor that bounds a single shard's throughput
BASE_REQUEST_CPU = 0.0001
DB_CAPACITY_QPS = 20_000.0

ADMIN = "admin"
READER = "alice"
CATALOGS = 8
SCHEMAS_PER_CATALOG = 2
TABLES_PER_SCHEMA = 3
QUERY_SETS_PER_CATALOG = 6
TABLES_PER_QUERY = 3
SCATTER_FRACTION = 0.05

#: wall-clock mode: shard counts compared, load threads, measured window
WALLCLOCK_SHARDS = (1, 4)
WALLCLOCK_THREADS = 16
WALLCLOCK_DURATION_S = 0.75
#: emulated service-time floor per unit of shard work — pure-Python CPU
#: cannot parallelize under the GIL, so the wall-clock mode sleeps each
#: request's *modeled* service time on its shard's worker; overlap
#: across shard workers is then genuine wall-clock concurrency
WALLCLOCK_SERVICE_FLOOR_S = 0.002
WALLCLOCK_MIN_SPEEDUP = 1.5

#: failover chaos mode: fleet shape, trace length and the availability gate
FAILOVER_SHARDS = 2
FAILOVER_REPLICAS = 3
FAILOVER_LEASE_S = 0.25
FAILOVER_OPS = 400
FAILOVER_CRASH_AT = 150
FAILOVER_STEP_S = 0.005
FAILOVER_WRITE_EVERY = 10
FAILOVER_SCATTER_EVERY = 16
#: the write-unavailability window may span the (jittered) remaining
#: lease plus the gap to the next write attempt, never more
FAILOVER_WINDOW_FACTOR = 1.5


class _ShardServer:
    """One shard's simulated capacity: a FIFO CPU ahead of its DB."""

    def __init__(self):
        self.cpu_free = 0.0
        self.db = DbServerModel(
            MODEL, capacity_qps=DB_CAPACITY_QPS,
            response_floor=MODEL.db_point_read,
        )
        self.requests = 0

    def submit(self, now: float, cpu: float, queries: int,
               scan_rows: int) -> float:
        self.requests += 1
        start = max(now, self.cpu_free)
        self.cpu_free = start + cpu
        done = self.cpu_free
        if queries or scan_rows:
            done = self.db.submit(done, queries=queries, scan_rows=scan_rows)
        return done


def _work_snapshot(service) -> tuple:
    auth = service.authorizer
    store = service.store
    return (
        auth.evaluations,
        auth.identity_expansions,
        auth.grant_rows_examined + auth.policy_rows_examined,
        store.read_count + getattr(store, "multi_get_count", 0),
        store.scan_row_count,
    )


def _work_cost(before: tuple, after: tuple) -> tuple[float, int, int]:
    """(cpu seconds, db queries, db scan rows) from two work snapshots."""
    evals = after[0] - before[0]
    expands = after[1] - before[1]
    rows = after[2] - before[2]
    queries = after[3] - before[3]
    scans = after[4] - before[4]
    cpu = (BASE_REQUEST_CPU
           + (evals + expands) * MODEL.auth_check
           + rows * MODEL.cache_probe)
    return cpu, queries, scans


def _build_cluster(shards: int, seed: int,
                   breaker_reset_timeout: float) -> tuple:
    """A governed namespace spread round-robin across ``shards`` shards."""
    clock = SimClock()
    obs = Observability(clock=clock)
    faults = FaultInjector(clock, seed=seed, metrics=obs.metrics)
    cluster = CatalogCluster(
        shards, clock=clock, obs=obs, faults=faults,
        read_version_check=False,
        breaker_reset_timeout=breaker_reset_timeout,
    )
    directory = cluster.directory
    directory.add_user(ADMIN)
    directory.add_user(READER)
    directory.add_group("analysts")
    directory.add_member("analysts", READER)

    mid = cluster.create_metastore("scalebench", owner=ADMIN).id
    catalog_names = [f"cat{c}" for c in range(CATALOGS)]
    for index, catalog in enumerate(catalog_names):
        cluster.dispatch("create_securable", metastore_id=mid,
                         principal=ADMIN, kind=SecurableKind.CATALOG,
                         name=catalog)
        # balanced placement via the online rebalancer, not hash luck
        cluster.migrate_catalog(
            mid, catalog, f"shard-{index % shards}"
        ).run()
        cluster.dispatch("grant", metastore_id=mid, principal=ADMIN,
                         kind=SecurableKind.CATALOG, name=catalog,
                         grantee="analysts", privilege=Privilege.USE_CATALOG)
        for s in range(SCHEMAS_PER_CATALOG):
            schema = f"{catalog}.s{s}"
            cluster.dispatch("create_securable", metastore_id=mid,
                             principal=ADMIN, kind=SecurableKind.SCHEMA,
                             name=schema)
            cluster.dispatch("grant", metastore_id=mid, principal=ADMIN,
                             kind=SecurableKind.SCHEMA, name=schema,
                             grantee="analysts", privilege=Privilege.USE_SCHEMA)
            for t in range(TABLES_PER_SCHEMA):
                table = f"{schema}.t{t}"
                cluster.dispatch(
                    "create_securable", metastore_id=mid, principal=ADMIN,
                    kind=SecurableKind.TABLE, name=table,
                    spec={
                        "table_type": "MANAGED",
                        "format": "DELTA",
                        "columns": [{"name": "id", "type": "BIGINT"},
                                    {"name": "v", "type": "STRING"}],
                    },
                )
                cluster.dispatch("grant", metastore_id=mid, principal=ADMIN,
                                 kind=SecurableKind.TABLE, name=table,
                                 grantee="analysts",
                                 privilege=Privilege.SELECT)

    rng = Random(seed)
    table_names = {
        catalog: [
            f"{catalog}.s{s}.t{t}"
            for s in range(SCHEMAS_PER_CATALOG)
            for t in range(TABLES_PER_SCHEMA)
        ]
        for catalog in catalog_names
    }
    query_sets = {
        catalog: [
            sorted(rng.sample(names, TABLES_PER_QUERY))
            for _ in range(QUERY_SETS_PER_CATALOG)
        ]
        for catalog, names in table_names.items()
    }
    return cluster, mid, catalog_names, query_sets, faults


def _warm(cluster, mid: str, catalog_names, query_sets) -> None:
    """Touch every query shape once: warms node/fast-path caches and the
    router's last-known-good cache, so later dark-shard reads degrade."""
    for catalog in catalog_names:
        for names in query_sets[catalog]:
            cluster.dispatch("resolve_for_query", metastore_id=mid,
                             principal=READER, table_names=names,
                             include_credentials=False)
    cluster.dispatch("list_securables", metastore_id=mid, principal=READER,
                     kind=SecurableKind.CATALOG)


def run_mode(
    shards: int,
    seed: int,
    *,
    clients: int = 48,
    duration: float = 0.3,
    fault_rate: float = 0.0,
    breaker_reset_timeout: float = 0.5,
) -> dict[str, Any]:
    """One cluster size: build, rebalance, warm, drive the closed loop."""
    cluster, mid, catalog_names, query_sets, faults = _build_cluster(
        shards, seed, breaker_reset_timeout
    )
    _warm(cluster, mid, catalog_names, query_sets)
    if fault_rate > 0:
        # setup and warmup ran clean; degrade the shard dispatch path now
        for shard in cluster.shards:
            faults.inject(f"shard.{shard.name}.dispatch", fault_rate,
                          kind="throttle")

    servers = {shard.name: _ShardServer() for shard in cluster.shards}
    rng = Random(seed ^ 0x5CA1E)
    clock = cluster.clock
    state = {"i": 0, "errors": 0}

    def request(now: float) -> float:
        i = state["i"]
        state["i"] = i + 1
        drift0 = clock.now()
        if rng.random() < SCATTER_FRACTION:
            before = {
                name: _work_snapshot(shard.service)
                for name, shard in cluster._by_name.items()
            }
            try:
                cluster.dispatch("list_securables", metastore_id=mid,
                                 principal=READER,
                                 kind=SecurableKind.CATALOG)
            except UnityCatalogError:
                state["errors"] += 1
                return now + MODEL.network_rtt
            drift = clock.now() - drift0
            done = now
            for name, shard in cluster._by_name.items():
                cpu, queries, scans = _work_cost(
                    before[name], _work_snapshot(shard.service)
                )
                done = max(done, servers[name].submit(
                    now + MODEL.network_rtt, cpu, queries, scans
                ))
            return done + drift
        catalog = catalog_names[i % len(catalog_names)]
        names = query_sets[catalog][i % QUERY_SETS_PER_CATALOG]
        owner = cluster.router.owner_for(mid, catalog)
        service = cluster.shard_named(owner).service
        before = _work_snapshot(service)
        try:
            cluster.dispatch("resolve_for_query", metastore_id=mid,
                             principal=READER, table_names=names,
                             include_credentials=False)
        except UnityCatalogError:
            state["errors"] += 1
            return now + MODEL.network_rtt
        drift = clock.now() - drift0
        cpu, queries, scans = _work_cost(before, _work_snapshot(service))
        return servers[owner].submit(
            now + MODEL.network_rtt, cpu, queries, scans
        ) + drift

    result = run_closed_loop(clients, duration, request,
                             warmup=duration * 0.2)
    summary = result.latency_summary()
    snapshot = cluster.obs.metrics.snapshot()
    stale_reads = sum(
        value for key, value in snapshot.items()
        if key.startswith("uc_shard_stale_reads_total")
    )
    return {
        "shards": shards,
        "completed": result.completed,
        "throughput_qps": result.throughput,
        "p50_ms": summary["p50"] * 1000,
        "p99_ms": summary["p99"] * 1000,
        "mean_ms": summary["mean"] * 1000,
        "user_errors": state["errors"],
        "stale_reads": stale_reads,
        "per_shard_requests": {
            name: server.requests for name, server in servers.items()
        },
        "faults_injected": sum(
            value for key, value in snapshot.items()
            if key.startswith("uc_faults_injected_total")
        ),
    }


def run_wallclock_mode(
    shards: int,
    seed: int,
    *,
    threads: int = WALLCLOCK_THREADS,
    duration: float = WALLCLOCK_DURATION_S,
) -> dict[str, Any]:
    """Measured req/s with real threads against a parallel serving tier.

    The cluster build, placement and warmup are identical to the
    simulated mode. Each request's service time is *calibrated* from the
    same measured work deltas the simulated mode charges (CPU model +
    DB model), then emulated as a real sleep on the owning shard's
    worker — so shard workers overlap exactly where the model says
    independent shards would, and the measured speedup is honest on a
    2-core CI runner where sleeping threads need no cores.
    """
    from repro.serve import ParallelServingTier

    cluster, mid, catalog_names, query_sets, _ = _build_cluster(
        shards, seed, breaker_reset_timeout=0.5
    )
    _warm(cluster, mid, catalog_names, query_sets)

    # calibrate the mean modeled service time over every query shape
    costs = []
    for catalog in catalog_names:
        owner = cluster.router.owner_for(mid, catalog)
        service = cluster.shard_named(owner).service
        for names in query_sets[catalog]:
            before = _work_snapshot(service)
            cluster.dispatch("resolve_for_query", metastore_id=mid,
                             principal=READER, table_names=names,
                             include_credentials=False)
            cpu, queries, scans = _work_cost(before, _work_snapshot(service))
            costs.append(cpu + queries * MODEL.db_point_read
                         + scans * MODEL.db_scan_row)
    service_time = max(sum(costs) / len(costs), WALLCLOCK_SERVICE_FLOOR_S)

    def worker_wrap(shard_name: str, fn):
        result = fn()
        time.sleep(service_time)
        return result

    def request_factory(index: int):
        rng = Random((seed << 8) ^ index)
        sequence = itertools.count(index * 7919)

        def request() -> bool:
            i = next(sequence)
            try:
                if rng.random() < SCATTER_FRACTION:
                    cluster.dispatch("list_securables", metastore_id=mid,
                                     principal=READER,
                                     kind=SecurableKind.CATALOG)
                else:
                    catalog = catalog_names[i % len(catalog_names)]
                    names = query_sets[catalog][i % QUERY_SETS_PER_CATALOG]
                    cluster.dispatch("resolve_for_query", metastore_id=mid,
                                     principal=READER, table_names=names,
                                     include_credentials=False)
            except UnityCatalogError:
                return False
            return True

        return request

    with ParallelServingTier(cluster, workers_per_shard=1,
                             front_door_workers=threads,
                             worker_wrap=worker_wrap):
        result = run_threaded_loop(threads, duration, request_factory)
    result["shards"] = shards
    result["service_time_ms"] = service_time * 1000
    return result


def run_wallclock(
    seed: int = 11,
    shard_counts: tuple[int, ...] = WALLCLOCK_SHARDS,
    *,
    threads: int = WALLCLOCK_THREADS,
    duration: float = WALLCLOCK_DURATION_S,
) -> dict[str, Any]:
    """The measured-throughput sweep reported next to the simulated one."""
    section: dict[str, Any] = {
        "threads": threads,
        "duration_s": duration,
        "shard_counts": list(shard_counts),
        "min_speedup": WALLCLOCK_MIN_SPEEDUP,
        "modes": {},
    }
    for shards in shard_counts:
        section["modes"][str(shards)] = run_wallclock_mode(
            shards, seed, threads=threads, duration=duration
        )
    base = section["modes"][str(shard_counts[0])]["throughput_qps"]
    section["speedup"] = {
        str(shards): (
            section["modes"][str(shards)]["throughput_qps"] / base
            if base else float("inf")
        )
        for shards in shard_counts
    }
    top = str(max(shard_counts))
    section["scaling_ok"] = section["speedup"][top] >= WALLCLOCK_MIN_SPEEDUP
    return section


def run_scaleout(
    seed: int = 11,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    *,
    clients: int = 48,
    duration: float = 0.3,
    fault_rate: float = 0.0,
    breaker_reset_timeout: float = 0.5,
) -> dict[str, Any]:
    """The full sweep; the returned report is byte-stable per seed."""
    report: dict[str, Any] = {
        "bench": "scaleout",
        "config": {
            "seed": seed,
            "shard_counts": list(shard_counts),
            "clients": clients,
            "duration_s": duration,
            "fault_rate": fault_rate,
            "catalogs": CATALOGS,
            "schemas_per_catalog": SCHEMAS_PER_CATALOG,
            "tables_per_schema": TABLES_PER_SCHEMA,
            "tables_per_query": TABLES_PER_QUERY,
            "scatter_fraction": SCATTER_FRACTION,
            "base_request_cpu_s": BASE_REQUEST_CPU,
            "db_capacity_qps": DB_CAPACITY_QPS,
        },
        "modes": {},
    }
    for shards in shard_counts:
        report["modes"][str(shards)] = run_mode(
            shards, seed, clients=clients, duration=duration,
            fault_rate=fault_rate,
            breaker_reset_timeout=breaker_reset_timeout,
        )
    base = report["modes"][str(shard_counts[0])]["throughput_qps"]
    report["scaling"] = {
        str(shards): (
            report["modes"][str(shards)]["throughput_qps"] / base
            if base else float("inf")
        )
        for shards in shard_counts
    }
    top = str(max(shard_counts))
    report["checks"] = {
        "linear_scaling_ok": report["scaling"][top] >= 3.0,
        "zero_user_errors": all(
            mode["user_errors"] == 0 for mode in report["modes"].values()
        ),
    }
    return report


# -- failover chaos mode -----------------------------------------------------


_FAILOVER_TABLES = (Tables.ENTITIES, Tables.GRANTS, Tables.TAGS,
                    Tables.POLICIES, Tables.COMMITS, Tables.SHARES)


def _normalized_state(replica, mid: str) -> str:
    """One replica's full governed state with every random uuid rewritten
    to a stable ``<kind:name>`` token — byte-comparable across two
    separately built clusters, and fingerprint-stable across runs."""
    store = replica.store.inner
    snap = store.snapshot(mid)
    ids = {mid: "<metastore>"}
    for _, value in snap.scan(Tables.ENTITIES):
        if isinstance(value, dict) and "id" in value and "kind" in value:
            ids[value["id"]] = f"<{value['kind']}:{value.get('name')}>"

    def norm(obj):
        if isinstance(obj, str):
            for raw, token in ids.items():
                if raw in obj:
                    obj = obj.replace(raw, token)
            return obj
        if isinstance(obj, dict):
            return {norm(k): norm(v) for k, v in sorted(obj.items())}
        if isinstance(obj, (list, tuple)):
            return [norm(v) for v in obj]
        return obj

    state = {
        "version": store.current_version(mid),
        "rows": {
            table: sorted(
                ([norm(key), norm(value)] for key, value in snap.scan(table)),
                key=lambda kv: repr(kv[0]),
            )
            for table in _FAILOVER_TABLES
        },
    }
    return json.dumps(state, sort_keys=True)


def _cluster_state(cluster, mid: str) -> str:
    """The whole cluster's governed rows, uuid-normalized and merged
    across shards. Shard placement hashes on the (random) metastore id,
    so two separately built clusters are only comparable cluster-wide —
    per-shard contents and version counters legitimately differ."""
    merged: dict[str, dict[str, Any]] = {t: {} for t in _FAILOVER_TABLES}
    for shard in cluster.shards:
        state = json.loads(_normalized_state(shard.group.leader(), mid))
        for table, rows in state["rows"].items():
            for key, value in rows:
                # broadcast rows (the metastore root) repeat identically
                # on every shard; everything else lives on exactly one
                merged[table][json.dumps(key, sort_keys=True)] = value
    return json.dumps({table: sorted(rows.items())
                       for table, rows in merged.items()}, sort_keys=True)


def _build_failover_cluster(seed: int) -> tuple:
    clock = SimClock()
    obs = Observability(clock=clock)
    faults = FaultInjector(clock, seed=seed, metrics=obs.metrics)
    cluster = CatalogCluster(
        FAILOVER_SHARDS, clock=clock, obs=obs, faults=faults,
        replicas_per_shard=FAILOVER_REPLICAS,
        lease_duration=FAILOVER_LEASE_S,
        read_preference="nearest_fresh",
    )
    directory = cluster.directory
    directory.add_user(ADMIN)
    directory.add_user(READER)
    directory.add_group("analysts")
    directory.add_member("analysts", READER)
    # a seeded metastore id: placement hashes on it, and the trace (which
    # writes land on the crashed shard, how many lease draws happen) must
    # be identical run to run and between the chaos run and its twin
    mid = cluster.dispatch("create_metastore", name="failbench",
                           owner=ADMIN, region="us-west",
                           metastore_id=f"{0xFA11BE4C ^ seed:032x}").id
    for c in range(4):
        catalog = f"cat{c}"
        cluster.dispatch("create_securable", metastore_id=mid,
                         principal=ADMIN, kind=SecurableKind.CATALOG,
                         name=catalog)
        cluster.dispatch("grant", metastore_id=mid, principal=ADMIN,
                         kind=SecurableKind.CATALOG, name=catalog,
                         grantee="analysts", privilege=Privilege.USE_CATALOG)
        cluster.dispatch("create_securable", metastore_id=mid,
                         principal=ADMIN, kind=SecurableKind.SCHEMA,
                         name=f"{catalog}.s0")
        cluster.dispatch("grant", metastore_id=mid, principal=ADMIN,
                         kind=SecurableKind.SCHEMA, name=f"{catalog}.s0",
                         grantee="analysts", privilege=Privilege.USE_SCHEMA)
        cluster.dispatch(
            "create_securable", metastore_id=mid, principal=ADMIN,
            kind=SecurableKind.TABLE, name=f"{catalog}.s0.t0",
            spec={"table_type": "MANAGED", "format": "DELTA",
                  "columns": [{"name": "id", "type": "BIGINT"}]},
        )
        cluster.dispatch("grant", metastore_id=mid, principal=ADMIN,
                         kind=SecurableKind.TABLE, name=f"{catalog}.s0.t0",
                         grantee="analysts", privilege=Privilege.SELECT)
    return cluster, mid, faults


def run_failover_trace(seed: int, *, crash: bool,
                       skip_writes: frozenset = frozenset()) -> dict[str, Any]:
    """One kill-the-leader trace on simulated time.

    ``crash=False`` with ``skip_writes`` set to a prior crash run's
    rejected writes is the *twin*: the same trace and clock advances
    minus the failure — the two runs must end byte-identical.
    """
    cluster, mid, faults = _build_failover_cluster(seed)
    target = "cat0"
    owner = cluster.router.owner_for(mid, target)
    group = cluster.shard_named(owner).group
    session = cluster.read_session()

    reads = read_errors = writes_accepted = 0
    rejected: list[str] = []
    crash_time = first_accept_time = None
    old_leader = crash_op = None

    for i in range(FAILOVER_OPS):
        if crash and i == FAILOVER_CRASH_AT:
            old_leader = group.leader()
            crash_op = f"replica.{owner}.{old_leader.name}.serve"
            faults.crash(crash_op)
            crash_time = cluster.clock.now()
        if i % FAILOVER_WRITE_EVERY == 0:
            name = f"{target}.s0.w{i}"
            if name not in skip_writes:
                try:
                    cluster.dispatch(
                        "create_securable", metastore_id=mid,
                        principal=ADMIN, kind=SecurableKind.TABLE, name=name,
                        spec={"table_type": "MANAGED", "format": "DELTA",
                              "columns": [{"name": "id", "type": "BIGINT"}]},
                        _session=session,
                    )
                    writes_accepted += 1
                    if crash_time is not None and first_accept_time is None:
                        first_accept_time = cluster.clock.now()
                except LeaseExpiredError:
                    rejected.append(name)
        elif i % FAILOVER_SCATTER_EVERY == 0:
            try:
                cluster.dispatch("list_securables", metastore_id=mid,
                                 principal=READER,
                                 kind=SecurableKind.CATALOG,
                                 _session=session)
                reads += 1
            except UnityCatalogError:
                read_errors += 1
        else:
            try:
                cluster.dispatch("get_securable", metastore_id=mid,
                                 principal=READER, kind=SecurableKind.TABLE,
                                 name=f"{target}.s0.t0", _session=session)
                reads += 1
            except UnityCatalogError:
                read_errors += 1
        cluster.clock.advance(FAILOVER_STEP_S)

    # a deposed leader's in-flight mutation must die on its stale
    # fencing token, not fork history
    fenced_rejection = False
    if old_leader is not None:
        try:
            old_leader.service.dispatch(
                "create_securable", metastore_id=mid, principal=ADMIN,
                kind=SecurableKind.CATALOG, name="zombie",
            )
        except FencingTokenError as exc:
            fenced_rejection = exc.code == "FENCED_LEADER"
        except UnityCatalogError:
            fenced_rejection = False

    # lift the crash and stream the old leader back up, then require
    # every replica of every shard to agree byte-for-byte
    if crash_op is not None:
        faults.restore(crash_op)
    converged = True
    for shard in cluster.shards:
        shard.group.replicate()
        states = {_normalized_state(replica, mid)
                  for replica in shard.group.replicas}
        converged = converged and len(states) == 1

    snapshot = cluster.obs.metrics.snapshot()

    def total(prefix: str, *needles: str) -> float:
        return sum(v for k, v in snapshot.items()
                   if k.startswith(prefix) and all(n in k for n in needles))

    window = None
    if crash_time is not None and first_accept_time is not None:
        window = first_accept_time - crash_time
    return {
        "reads": reads,
        "read_errors": read_errors,
        "writes_accepted": writes_accepted,
        "writes_rejected": rejected,
        "write_window_s": window,
        "epoch": group.epoch,
        "failovers": total("uc_replica_failovers_total"),
        "fenced_writes": total("uc_replica_fenced_writes_total"),
        "fenced_rejection": fenced_rejection,
        "replicas_converged": converged,
        "follower_reads": total("uc_replica_reads_total", 'role="follower"'),
        "state": _cluster_state(cluster, mid),
    }


def run_failover(seed: int = 11) -> dict[str, Any]:
    """Kill-the-leader chaos run + its no-failure twin, with gates."""
    chaos = run_failover_trace(seed, crash=True)
    twin = run_failover_trace(
        seed, crash=False, skip_writes=frozenset(chaos["writes_rejected"])
    )
    window_bound = FAILOVER_LEASE_S * FAILOVER_WINDOW_FACTOR
    report: dict[str, Any] = {
        "bench": "failover",
        "config": {
            "seed": seed,
            "shards": FAILOVER_SHARDS,
            "replicas_per_shard": FAILOVER_REPLICAS,
            "lease_duration_s": FAILOVER_LEASE_S,
            "ops": FAILOVER_OPS,
            "crash_at_op": FAILOVER_CRASH_AT,
            "step_s": FAILOVER_STEP_S,
            "write_window_bound_s": window_bound,
        },
        "chaos": {k: v for k, v in chaos.items() if k != "state"},
        "twin": {
            "writes_accepted": twin["writes_accepted"],
            "writes_rejected": twin["writes_rejected"],
            "read_errors": twin["read_errors"],
        },
    }
    report["checks"] = {
        "zero_read_errors": (chaos["read_errors"] == 0
                             and twin["read_errors"] == 0),
        "write_window_bounded": (chaos["write_window_s"] is not None
                                 and chaos["write_window_s"] <= window_bound),
        "failover_completed": (chaos["failovers"] == 1
                               and chaos["epoch"] == 2),
        "deposed_leader_fenced": chaos["fenced_rejection"],
        "replicas_converged": (chaos["replicas_converged"]
                               and twin["replicas_converged"]),
        "twin_state_identical": chaos["state"] == twin["state"],
        "twin_rejected_nothing": twin["writes_rejected"] == [],
    }
    return report


def fingerprint(report: dict[str, Any]) -> str:
    return json.dumps(report, sort_keys=True)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.scaleout", description=__doc__
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--clients", type=int, default=48)
    parser.add_argument("--duration", type=float, default=0.3,
                        help="simulated seconds per closed-loop run")
    parser.add_argument("--fault-rate", type=float, default=0.0)
    parser.add_argument("--out", default=None,
                        help="report path (default BENCH_scaleout.json, or "
                             "BENCH_failover.json with --failover)")
    parser.add_argument("--check", action="store_true",
                        help="run twice; fail on scaling or determinism")
    parser.add_argument("--failover", action="store_true",
                        help="run the kill-the-leader replica-group chaos "
                             "bench instead of the scale-out sweep")
    parser.add_argument("--wallclock", action="store_true",
                        help="also measure real-thread req/s at "
                             f"{WALLCLOCK_SHARDS} shards (reported in a "
                             "'wallclock' section, never fingerprinted)")
    parser.add_argument("--wallclock-threads", type=int,
                        default=WALLCLOCK_THREADS)
    parser.add_argument("--wallclock-duration", type=float,
                        default=WALLCLOCK_DURATION_S,
                        help="real seconds per wall-clock measurement")
    args = parser.parse_args(argv)

    if args.failover:
        return _main_failover(args)
    args.out = args.out or "BENCH_scaleout.json"
    report = run_scaleout(
        args.seed, tuple(args.shards), clients=args.clients,
        duration=args.duration, fault_rate=args.fault_rate,
    )
    deterministic = None
    if args.check:
        # determinism is judged on the simulated report only, before any
        # (inherently noisy) wall-clock section is attached
        second = run_scaleout(
            args.seed, tuple(args.shards), clients=args.clients,
            duration=args.duration, fault_rate=args.fault_rate,
        )
        deterministic = fingerprint(report) == fingerprint(second)
        report["checks"]["deterministic"] = deterministic

    if args.wallclock:
        report["wallclock"] = run_wallclock(
            args.seed, threads=args.wallclock_threads,
            duration=args.wallclock_duration,
        )
        report["checks"]["wallclock_scaling_ok"] = \
            report["wallclock"]["scaling_ok"]

    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for shards in args.shards:
        mode = report["modes"][str(shards)]
        print(f"{shards:>2} shard(s): {mode['throughput_qps']:>10,.0f} req/s"
              f"  p50 {mode['p50_ms']:.3f} ms  p99 {mode['p99_ms']:.3f} ms"
              f"  scaling {report['scaling'][str(shards)]:.2f}x"
              f"  errors {mode['user_errors']}")
    if "wallclock" in report:
        wc = report["wallclock"]
        for shards, mode in wc["modes"].items():
            print(f"wallclock {shards:>2} shard(s): "
                  f"{mode['throughput_qps']:>8,.0f} req/s measured"
                  f"  ({mode['completed']} requests, "
                  f"{mode['errors']} errors, "
                  f"service {mode['service_time_ms']:.2f} ms)")
        top = str(max(wc["shard_counts"]))
        print(f"wallclock speedup: {wc['speedup'][top]:.2f}x at {top} "
              f"shards (gate {wc['min_speedup']:.1f}x)")
    print(f"wrote {args.out}")

    if args.check:
        failed = [name for name, ok in report["checks"].items() if not ok]
        if failed:
            print(f"CHECK FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
        print("checks OK")
    return 0


def _main_failover(args) -> int:
    out = args.out or "BENCH_failover.json"
    report = run_failover(args.seed)
    if args.check:
        second = run_failover(args.seed)
        report["checks"]["deterministic"] = \
            fingerprint(report) == fingerprint(second)

    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    chaos = report["chaos"]
    print(f"failover: {chaos['reads']} reads, {chaos['read_errors']} read "
          f"errors, {chaos['writes_accepted']} writes accepted, "
          f"{len(chaos['writes_rejected'])} rejected in the failure window")
    print(f"write-unavailability window: {chaos['write_window_s']:.3f}s "
          f"(bound {report['config']['write_window_bound_s']:.3f}s), "
          f"epoch {chaos['epoch']}, "
          f"fenced rejection: {chaos['fenced_rejection']}")
    print(f"wrote {out}")

    failed = [name for name, ok in report["checks"].items() if not ok]
    if failed:
        print(f"CHECK FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
