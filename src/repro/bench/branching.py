"""Branching benchmark: replayable audit over zero-copy catalog branches.

The scenario the branch model exists for: fork a branch from a seeded
estate, replay a recorded workload trace (:mod:`repro.workloads.traces`)
against the branch while production keeps hammering main, then prove —
with byte-stable fingerprints — that

* **nothing leaks across the fork** in either direction: main never sees
  branch writes, the branch never sees post-fork main writes;
* the replay on the branch is **outcome- and audit-identical** to the
  same trace replayed on an untouched control copy of the estate — the
  branch is a faithful sandbox of main at the fork point;
* a **clean merge** lands every branch change on main in one atomic
  commit (single-history-equivalent: one version bump, rows byte-equal
  to the branch's), and a contended merge raises
  :class:`~repro.errors.MergeConflictError` naming the securable;
* the whole run is **deterministic**: same seed → identical fingerprint.

``python -m repro.bench.branching --check`` enforces all of the above
and writes ``BENCH_branching.json`` — the CI ``bench-branching`` gate.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from random import Random
from typing import Any, Optional

from repro.clock import SimClock
from repro.core.model.entity import Entity, SecurableKind
from repro.core.service.catalog_service import UnityCatalogService
from repro.errors import MergeConflictError, UnityCatalogError
from repro.workloads.deployment import (
    DeploymentConfig,
    SyntheticDeployment,
    generate_deployment,
    materialize_deployment,
)
from repro.workloads.traces import TraceConfig, generate_trace

#: deployment knobs for a laptop-size but non-trivial estate
_ESTATE = dict(
    metastores=1,
    catalog_mode=3.0, catalog_cap=5,
    schema_mode=2.0, schema_cap=4,
    tables_per_catalog_mode=5.0, tables_cap=40,
    volumes_per_catalog_mode=1.0, volumes_cap=3,
    models_per_schema_mode=1.0,
    functions_per_schema_mode=1.0,
)

_REPLAY_BRANCH = "replay"
_CONFLICT_BRANCH = "contended"


@dataclass
class BranchingReport:
    """Outcome of one seeded branching run."""

    seed: int
    estate_entities: int = 0
    trace_events: int = 0
    replay_ops: int = 0
    prod_ops: int = 0
    #: branch writes visible from main / post-fork main writes visible
    #: from the branch — the acceptance bar is zero for both
    leaks_into_main: int = 0
    leaks_into_branch: int = 0
    #: replayed outcomes that differ from the control replay
    outcome_mismatches: int = 0
    audit_mismatches: int = 0
    merged_changes: int = 0
    #: store versions consumed by the merge (must be 1: one atomic commit)
    merge_version_cost: int = 0
    merge_landed_rows: int = 0
    merge_missing_rows: int = 0
    conflict_raised: bool = False
    conflict_securable: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Byte-stable digest; same seed must reproduce it exactly."""
        return json.dumps(
            {
                "seed": self.seed,
                "estate_entities": self.estate_entities,
                "trace_events": self.trace_events,
                "replay_ops": self.replay_ops,
                "prod_ops": self.prod_ops,
                "leaks_into_main": self.leaks_into_main,
                "leaks_into_branch": self.leaks_into_branch,
                "outcome_mismatches": self.outcome_mismatches,
                "audit_mismatches": self.audit_mismatches,
                "merged_changes": self.merged_changes,
                "merge_version_cost": self.merge_version_cost,
                "merge_landed_rows": self.merge_landed_rows,
                "merge_missing_rows": self.merge_missing_rows,
                "conflict_raised": self.conflict_raised,
                "conflict_securable": self.conflict_securable,
                "details": self.details,
            },
            sort_keys=True,
        )

    @property
    def clean(self) -> bool:
        return (
            self.leaks_into_main == 0
            and self.leaks_into_branch == 0
            and self.outcome_mismatches == 0
            and self.audit_mismatches == 0
            and self.merge_version_cost == 1
            and self.merge_missing_rows == 0
            and self.merged_changes > 0
            and self.conflict_raised
        )


# ----------------------------------------------------------------------
# estate + trace
# ----------------------------------------------------------------------


def _name_map(deployment: SyntheticDeployment) -> dict[str, tuple[SecurableKind, str]]:
    """entity id -> (kind, live full name), mirroring materialization."""
    source = deployment.metastores[0]
    names: dict[str, str] = {source.id: ""}

    def full_name(entity: Entity) -> str:
        prefix = names[entity.parent_id]
        return f"{prefix}.{entity.name}" if prefix else entity.name

    out: dict[str, tuple[SecurableKind, str]] = {}
    for catalog in sorted(deployment.catalogs, key=lambda e: e.name):
        if catalog.metastore_id != source.id:
            continue
        names[catalog.id] = catalog.name
        out[catalog.id] = (SecurableKind.CATALOG, catalog.name)
    for schema in sorted(deployment.schemas, key=lambda e: e.name):
        if schema.metastore_id != source.id or schema.parent_id not in names:
            continue
        names[schema.id] = full_name(schema)
        out[schema.id] = (SecurableKind.SCHEMA, names[schema.id])
    for asset in deployment.assets():
        if asset.metastore_id != source.id or asset.parent_id not in names:
            continue
        if asset.spec.get("table_type") == "SHALLOW_CLONE":
            continue
        out[asset.id] = (asset.kind, full_name(asset))
    return out


def _build_estate(seed: int, clock: SimClock) -> tuple[UnityCatalogService, str]:
    service = UnityCatalogService(clock=clock)
    deployment = generate_deployment(DeploymentConfig(seed=seed, **_ESTATE))
    mid = materialize_deployment(deployment, service, owner="admin")
    return service, mid


def _record_trace(seed: int) -> list[tuple[str, SecurableKind, str, bool]]:
    """The recorded workload: (op id, kind, live name, is_read) tuples."""
    deployment = generate_deployment(DeploymentConfig(seed=seed, **_ESTATE))
    mapping = _name_map(deployment)
    events = generate_trace(
        deployment,
        TraceConfig(seed=seed ^ 0xB4A9C, duration_seconds=240.0,
                    active_fraction=0.6, max_events=240,
                    # write-heavier than the paper's 98.2% read mix: a
                    # replayed what-if workload exists to test writes
                    read_fraction=0.85),
    )
    trace = []
    for index, event in enumerate(events):
        if event.entity_id not in mapping:
            continue
        kind, name = mapping[event.entity_id]
        trace.append((f"op{index}", kind, name, event.is_read))
    return trace


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


def _entity_digest(entity: Entity) -> dict[str, Any]:
    """Identity-free digest: ids/paths differ across service instances."""
    return {
        "name": entity.name,
        "kind": entity.kind.value,
        "comment": entity.comment,
        "properties": dict(entity.properties or {}),
    }


def _branched(name: str, branch: Optional[str]) -> str:
    if branch is None:
        return name
    head, _, rest = name.partition(".")
    head = f"{head}@{branch}"
    return f"{head}.{rest}" if rest else head


def _replay(
    service: UnityCatalogService,
    mid: str,
    trace: list[tuple[str, SecurableKind, str, bool]],
    branch: Optional[str],
    catalog: str,
    prod: Optional[Random] = None,
    prod_targets: Optional[list[tuple[SecurableKind, str]]] = None,
) -> tuple[list[tuple[str, str, str]], int, int]:
    """Replay the trace (on ``branch`` when set, via name suffixes),
    optionally interleaving production writes on main. Returns the
    outcome log, replayed-op count, and production-op count."""
    outcomes: list[tuple[str, str, str]] = []
    replayed = prod_ops = 0
    for op_id, kind, name, is_read in trace:
        if name.split(".", 1)[0] != catalog:
            continue  # a branch scopes one catalog; replay stays inside it
        target = _branched(name, branch)
        try:
            if is_read:
                entity = service.get_securable(mid, "admin", kind, target)
                outcome = json.dumps(_entity_digest(entity), sort_keys=True)
            else:
                entity = service.update_securable(
                    mid, "admin", kind, target, comment=f"replay {op_id}"
                )
                outcome = json.dumps(_entity_digest(entity), sort_keys=True)
        except UnityCatalogError as exc:
            outcome = f"error:{exc.code}"
        outcomes.append((op_id, name, outcome))
        replayed += 1
        # production hammers main between replayed ops — other catalogs,
        # so the later merge is clean by construction
        if prod is not None and prod_targets and prod.random() < 0.7:
            pkind, pname = prod_targets[prod.randrange(len(prod_targets))]
            service.update_securable(
                mid, "admin", pkind, pname, comment=f"prod {prod_ops}"
            )
            prod_ops += 1
    return outcomes, replayed, prod_ops


def _audit_tail(service: UnityCatalogService, since: int) -> list[tuple[str, str, bool]]:
    """(action, securable, allowed) triples after sequence ``since``."""
    return [
        (r.action, r.securable, r.allowed)
        for r in service.audit
        if r.sequence > since
    ]


# ----------------------------------------------------------------------
# the scenario
# ----------------------------------------------------------------------


def _estate_walk(
    service: UnityCatalogService, mid: str
) -> tuple[int, dict[str, list[tuple[SecurableKind, str]]]]:
    """(total entities, catalog -> [(kind, full name)] of its assets)."""
    total = 0
    assets: dict[str, list[tuple[SecurableKind, str]]] = {}
    for cat in service.list_securables(mid, "admin", SecurableKind.CATALOG):
        total += 1
        assets[cat.name] = []
        for schema in service.list_securables(
            mid, "admin", SecurableKind.SCHEMA, cat.name
        ):
            total += 1
            for kind in (SecurableKind.TABLE, SecurableKind.VOLUME,
                         SecurableKind.FUNCTION,
                         SecurableKind.REGISTERED_MODEL):
                for asset in service.list_securables(
                    mid, "admin", kind, f"{cat.name}.{schema.name}"
                ):
                    total += 1
                    assets[cat.name].append(
                        (kind, f"{cat.name}.{schema.name}.{asset.name}")
                    )
    return total, assets


def run_branching_scenario(seed: int = 23) -> BranchingReport:
    report = BranchingReport(seed=seed)

    # two identically-seeded estates: the system under test, and an
    # untouched control the trace is replayed against directly
    clock = SimClock()
    service, mid = _build_estate(seed, clock)
    control_clock = SimClock()
    control, control_mid = _build_estate(seed, control_clock)

    trace = _record_trace(seed)
    report.trace_events = len(trace)

    report.estate_entities, assets_by_catalog = _estate_walk(service, mid)

    # the branch scopes the busiest traced catalog that owns a table
    # (the conflict scenario needs one to contend on)
    traffic: dict[str, int] = {}
    for _, _, name, _ in trace:
        top = name.split(".", 1)[0]
        traffic[top] = traffic.get(top, 0) + 1
    tables_of = {
        cat: [n for k, n in pairs if k is SecurableKind.TABLE]
        for cat, pairs in assets_by_catalog.items()
    }
    candidates = sorted(c for c in traffic if tables_of.get(c))
    if candidates:
        catalog = max(candidates, key=lambda c: traffic[c])
    else:
        catalog = max(sorted(tables_of), key=lambda c: len(tables_of[c]))
    prod_targets = [
        (kind, name)
        for cat, pairs in sorted(assets_by_catalog.items())
        if cat != catalog
        for kind, name in pairs
        if kind in (SecurableKind.TABLE, SecurableKind.VOLUME)
    ]

    # pre-fork state of everything in the branch catalog, for leak checks
    def catalog_digests(
        svc: UnityCatalogService, smid: str, suffix: str = ""
    ) -> dict[str, str]:
        digests: dict[str, str] = {}
        branched_cat = _branched(catalog, suffix or None)
        for schema in svc.list_securables(
            smid, "admin", SecurableKind.SCHEMA, branched_cat
        ):
            digests[f"schema:{schema.name}"] = json.dumps(
                _entity_digest(schema), sort_keys=True
            )
            for kind in (SecurableKind.TABLE, SecurableKind.VOLUME,
                         SecurableKind.FUNCTION,
                         SecurableKind.REGISTERED_MODEL):
                for entity in svc.list_securables(
                    smid, "admin", kind, f"{branched_cat}.{schema.name}"
                ):
                    digests[f"{kind.value}:{schema.name}.{entity.name}"] = (
                        json.dumps(_entity_digest(entity), sort_keys=True)
                    )
        return digests

    pre_fork = catalog_digests(service, mid)

    service.create_branch(mid, "admin", catalog, _REPLAY_BRANCH)

    # replay on the branch while production hammers main
    audit_mark = max((r.sequence for r in service.audit), default=0)
    outcomes, replayed, prod_ops = _replay(
        service, mid, trace, _REPLAY_BRANCH, catalog,
        prod=Random(seed ^ 0x9D0D), prod_targets=prod_targets,
    )
    report.replay_ops = replayed
    report.prod_ops = prod_ops

    def replay_audit(svc: UnityCatalogService, mark: int):
        # keep only the replayed catalog's get/update records: the
        # production stream (other catalogs) is deliberately excluded
        # from the parity diff
        return [
            entry for entry in _audit_tail(svc, mark)
            if entry[0] in ("get_securable", "update_securable")
            and entry[1].split(".", 1)[0].split("@", 1)[0] == catalog
        ]

    branch_audit = replay_audit(service, audit_mark)

    # control: the same trace, replayed directly on the untouched estate
    control_mark = max((r.sequence for r in control.audit), default=0)
    control_outcomes, _, _ = _replay(control, control_mid, trace, None, catalog)
    control_audit = replay_audit(control, control_mark)
    report.outcome_mismatches = sum(
        1 for ours, theirs in zip(outcomes, control_outcomes) if ours != theirs
    ) + abs(len(outcomes) - len(control_outcomes))
    report.audit_mismatches = sum(
        1 for ours, theirs in zip(branch_audit, control_audit) if ours != theirs
    ) + abs(len(branch_audit) - len(control_audit))

    # leak checks: main unchanged where only the branch wrote; the branch
    # blind to post-fork production writes (none target its catalog, so
    # its catalog view must equal pre-fork + its own replay writes)
    post_main = catalog_digests(service, mid)
    for key, digest in post_main.items():
        before = pre_fork.get(key)
        if before is not None and before != digest:
            report.leaks_into_main += 1
    branch_written = {
        name.split(".", 1)[1] for _, name, outcome in outcomes
        if "replay" in outcome and "." in name
    }
    branch_view = catalog_digests(service, mid, _REPLAY_BRANCH)
    for key, digest in branch_view.items():
        before = pre_fork.get(key)
        if before is None or key.split(":", 1)[1] in branch_written:
            continue
        if before != digest:
            report.leaks_into_branch += 1

    # clean merge: every overlay row lands on main in one version bump
    diff = service.diff_branch(mid, "admin", catalog, _REPLAY_BRANCH)
    version_before = service.head_version(mid)
    merge = service.merge_branch(mid, "admin", catalog, _REPLAY_BRANCH)
    report.merged_changes = merge["merged_changes"]
    report.merge_version_cost = merge["version"] - version_before
    merged_view = catalog_digests(service, mid)
    for key, digest in branch_view.items():
        if merged_view.get(key) == digest:
            report.merge_landed_rows += 1
        else:
            report.merge_missing_rows += 1
    report.details["diff_changes"] = len(diff["changes"])
    report.details["diff_conflicts"] = len(diff["conflicts"])

    # contended merge: both sides touch one securable -> MERGE_CONFLICT
    contested_kind, contested = SecurableKind.TABLE, tables_of[catalog][0]
    service.create_branch(mid, "admin", catalog, _CONFLICT_BRANCH)
    service.update_securable(
        mid, "admin", contested_kind,
        _branched(contested, _CONFLICT_BRANCH), comment="branch side"
    )
    service.update_securable(
        mid, "admin", contested_kind, contested, comment="main side"
    )
    try:
        service.merge_branch(mid, "admin", catalog, _CONFLICT_BRANCH)
    except MergeConflictError as exc:
        named = {securable for _, _, securable in exc.conflicts}
        report.conflict_raised = contested.rsplit(".", 1)[-1] in named
        report.conflict_securable = ",".join(sorted(named))
    service.delete_branch(mid, "admin", catalog, _CONFLICT_BRANCH)

    report.details["catalog"] = catalog
    report.details["final_version"] = service.head_version(mid)
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def render_report(report: BranchingReport) -> str:
    lines = [
        "branching bench — zero-copy forks, replayable audit",
        f"  seed {report.seed}: estate {report.estate_entities} entities, "
        f"trace {report.trace_events} events",
        f"  replayed {report.replay_ops} ops on branch while "
        f"{report.prod_ops} production writes hit main",
        f"  leakage: {report.leaks_into_main} into main, "
        f"{report.leaks_into_branch} into branch",
        f"  replay parity vs control: {report.outcome_mismatches} outcome / "
        f"{report.audit_mismatches} audit mismatches",
        f"  merge: {report.merged_changes} changes in "
        f"{report.merge_version_cost} commit(s), "
        f"{report.merge_missing_rows} rows missing after merge",
        f"  conflict: raised={report.conflict_raised} "
        f"on {report.conflict_securable or '<none>'}",
    ]
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the gates (leakage, merge, determinism) and write "
             "the JSON report",
    )
    parser.add_argument(
        "--out", default="BENCH_branching.json",
        help="where --check writes the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_branching_scenario(args.seed)
    print(render_report(report))

    failed = False
    if args.check:
        rerun = run_branching_scenario(args.seed)
        deterministic = report.fingerprint() == rerun.fingerprint()
        if not deterministic:
            print(f"FAIL: seed {args.seed} is not deterministic")
            failed = True
        if not report.clean:
            print("FAIL: gates violated — "
                  f"leaks=({report.leaks_into_main},"
                  f"{report.leaks_into_branch}) "
                  f"mismatches=({report.outcome_mismatches},"
                  f"{report.audit_mismatches}) "
                  f"merge=({report.merged_changes} changes, "
                  f"{report.merge_version_cost} commits, "
                  f"{report.merge_missing_rows} missing) "
                  f"conflict_raised={report.conflict_raised}")
            failed = True
        artifact = {
            "seed": report.seed,
            "deterministic": deterministic,
            "clean": report.clean,
            "replay_ops": report.replay_ops,
            "prod_ops": report.prod_ops,
            "leaks_into_main": report.leaks_into_main,
            "leaks_into_branch": report.leaks_into_branch,
            "outcome_mismatches": report.outcome_mismatches,
            "audit_mismatches": report.audit_mismatches,
            "merged_changes": report.merged_changes,
            "merge_version_cost": report.merge_version_cost,
            "conflict_raised": report.conflict_raised,
            "conflict_securable": report.conflict_securable,
            "details": report.details,
        }
        import os
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
        if not failed:
            print(f"branching gates OK (seed {args.seed}, deterministic, "
                  "zero leakage, clean merge, conflict detected)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
