"""The life-of-a-query hot-loop benchmark (``python -m repro.bench.hotpath``).

Drives a warm repeated-query workload — the same principal resolving the
same handful of tables over and over, which is what production query
traffic looks like — against two otherwise-identical service instances:
one with the version-pinned fast path (decision + resolution caches,
batched store reads), one with ``enable_fast_path=False``.

Two phases:

* **equivalence** — a fixed, seeded script of queries interleaved with
  metadata mutations (revoke/grant, rename, ownership transfer, tag and
  ABAC-policy churn) runs against both instances; per-query outcomes
  (resolved metadata, FGAC rules, errors) and the audit trail must be
  byte-identical. The fast path is an optimization: it must never change
  an answer, even immediately after an invalidating write.
* **performance** — a closed loop of clients on simulated time. Each
  request charges costs from *measured* work deltas (authorization
  evaluations, grant/policy rows scanned, cache probes, DB reads), so the
  speedup reflects work actually avoided, not a tuned constant.

Writes ``BENCH_hotpath.json``. ``--check`` exits non-zero when the warm
authorization hit rate drops below 90% or the two modes disagree.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
from typing import Any, Optional

from repro.bench.latency import DbServerModel, LatencyModel
from repro.bench.loadgen import run_closed_loop
from repro.bench.wallclock import run_threaded_loop
from repro.clock import SimClock
from repro.core.auth.abac import AbacEffect, TagCondition
from repro.core.auth.privileges import Privilege
from repro.core.model.entity import SecurableKind
from repro.core.service.catalog_service import UnityCatalogService
from repro.errors import UnityCatalogError

MODEL = LatencyModel()
DB_CAPACITY_QPS = 50_000.0

ADMIN = "admin"
READER = "alice"
#: extra grantees per securable — grant rows the slow path must scan
NOISE_USERS = 24
CATALOGS = 2
SCHEMAS_PER_CATALOG = 2


def _build_service(fast_path: bool, tables: int):
    """One service with a fully-governed namespace: nested groups, noisy
    grant lists, tags, ABAC policies, and a view per schema."""
    clock = SimClock()
    service = UnityCatalogService(
        clock=clock,
        enable_cache=True,
        read_version_check=False,
        enable_fast_path=fast_path,
    )
    directory = service.directory
    directory.add_user(ADMIN)
    directory.add_user(READER)
    directory.add_user("bob")
    noise = [f"user{i:02d}" for i in range(NOISE_USERS)]
    for name in noise:
        directory.add_user(name)
    # nested groups: alice -> analysts -> data-users -> all-users
    for group in ("all-users", "data-users", "analysts"):
        directory.add_group(group)
    directory.add_member("all-users", "data-users")
    directory.add_member("data-users", "analysts")
    directory.add_member("analysts", READER)
    for name in noise:
        directory.add_member("all-users", name)

    mid = service.create_metastore("hotbench", owner=ADMIN).id

    def grant_all(kind, name, privilege):
        service.grant(mid, ADMIN, kind, name, "analysts", privilege)
        for user in noise:
            service.grant(mid, ADMIN, kind, name, user, privilege)

    table_names: list[str] = []
    view_names: list[str] = []
    for c in range(CATALOGS):
        catalog = f"cat{c}"
        service.create_securable(mid, ADMIN, SecurableKind.CATALOG, catalog)
        grant_all(SecurableKind.CATALOG, catalog, Privilege.USE_CATALOG)
        for s in range(SCHEMAS_PER_CATALOG):
            schema = f"{catalog}.s{s}"
            service.create_securable(mid, ADMIN, SecurableKind.SCHEMA, schema)
            grant_all(SecurableKind.SCHEMA, schema, Privilege.USE_SCHEMA)
    slots = CATALOGS * SCHEMAS_PER_CATALOG
    for i in range(tables):
        c, s = (i % slots) // SCHEMAS_PER_CATALOG, (i % slots) % SCHEMAS_PER_CATALOG
        name = f"cat{c}.s{s}.t{i}"
        service.create_securable(
            mid, ADMIN, SecurableKind.TABLE, name,
            spec={
                "table_type": "MANAGED",
                "format": "DELTA",
                "columns": [
                    {"name": "id", "type": "BIGINT"},
                    {"name": "region", "type": "STRING"},
                    {"name": "amount", "type": "DOUBLE"},
                ],
            },
        )
        grant_all(SecurableKind.TABLE, name, Privilege.SELECT)
        if i % 4 == 0:
            service.set_tag(mid, ADMIN, SecurableKind.TABLE, name, "tier", "gold")
        table_names.append(name)
    for c in range(CATALOGS):
        for s in range(SCHEMAS_PER_CATALOG):
            schema = f"cat{c}.s{s}"
            deps = [t for t in table_names if t.startswith(schema + ".")][:2]
            view = f"{schema}.v"
            service.create_securable(
                mid, ADMIN, SecurableKind.TABLE, view,
                spec={
                    "table_type": "VIEW",
                    "view_definition": f"SELECT * FROM {' JOIN '.join(deps)}",
                    "view_dependencies": deps,
                    "columns": [{"name": "id", "type": "BIGINT"}],
                },
            )
            grant_all(SecurableKind.TABLE, view, Privilege.SELECT)
            view_names.append(view)
    # ABAC: a row filter on everything tagged tier=gold, plus a dynamic
    # grant — both add policy rows the slow path re-evaluates per query
    service.create_abac_policy(
        mid, ADMIN, name="gold-row-filter",
        scope_kind=SecurableKind.METASTORE, scope_name=None,
        condition=TagCondition("tier", "gold"),
        effect=AbacEffect.FILTER_ROWS, predicate_sql="region = 'emea'",
    )
    service.create_abac_policy(
        mid, ADMIN, name="gold-dynamic-select",
        scope_kind=SecurableKind.METASTORE, scope_name=None,
        condition=TagCondition("tier", "gold"),
        effect=AbacEffect.GRANT, privilege=Privilege.SELECT,
        principals=("data-users",),
    )
    return service, mid, table_names, view_names


def _query_sets(seed: int, table_names, view_names, per_query: int, count: int = 64):
    """A fixed, seeded set of query shapes shared by every phase/mode."""
    import random

    rng = random.Random(seed)
    names = table_names + view_names
    per_query = min(per_query, len(names))
    return [sorted(rng.sample(names, per_query)) for _ in range(count)]


# ---------------------------------------------------------------------------
# equivalence phase


def _strip_ids(value):
    """Drop minted-id fields (random per service instance) recursively."""
    if isinstance(value, dict):
        return {
            k: _strip_ids(v) for k, v in value.items()
            if not k.endswith("_id") and k != "id"
        }
    if isinstance(value, list):
        return [_strip_ids(v) for v in value]
    return value


def _asset_fingerprint(asset) -> dict[str, Any]:
    """Engine-visible result, minus minted ids/paths (random per service)."""
    return {
        "full_name": asset.full_name,
        "table_type": asset.table_type,
        "format": asset.format,
        "columns": asset.columns,
        "fgac": _strip_ids(asset.fgac.to_dict()),
        "view_definition": asset.view_definition,
        "dependencies": list(asset.dependencies),
        "via_view": asset.via_view,
        "has_credential": asset.credential is not None,
    }


def _run_query(service, mid: str, names: list[str]) -> dict[str, Any]:
    try:
        resolution = service.resolve_for_query(
            mid, READER, names, engine_trusted=True
        )
    except UnityCatalogError as exc:
        return {"error": type(exc).__name__, "message": str(exc)}
    return {
        "version": resolution.metastore_version,
        "assets": [
            _asset_fingerprint(resolution.assets[k])
            for k in sorted(resolution.assets)
        ],
    }


def _audit_fingerprint(service) -> list[tuple]:
    return [
        (r.principal, r.action, r.securable, r.allowed)
        for r in service.audit
    ]


def _mutation_script(table_names):
    """Deterministic invalidating writes, exercised between queries.

    Each entry is (apply_fn, description); every mutation is later undone
    so the namespace ends where it started.
    """
    t_revoke = table_names[0]
    t_rename = table_names[1]
    t_owner = table_names[2]
    t_tag = table_names[3]

    script = [
        ("revoke", lambda svc, mid, h: svc.revoke(
            mid, ADMIN, SecurableKind.TABLE, t_revoke, "analysts", Privilege.SELECT)),
        ("regrant", lambda svc, mid, h: svc.grant(
            mid, ADMIN, SecurableKind.TABLE, t_revoke, "analysts", Privilege.SELECT)),
        ("rename", lambda svc, mid, h: svc.rename_securable(
            mid, ADMIN, SecurableKind.TABLE, t_rename,
            t_rename.rsplit(".", 1)[1] + "_moved")),
        ("rename_back", lambda svc, mid, h: svc.rename_securable(
            mid, ADMIN, SecurableKind.TABLE,
            t_rename.rsplit(".", 1)[0] + "." + t_rename.rsplit(".", 1)[1] + "_moved",
            t_rename.rsplit(".", 1)[1])),
        ("chown", lambda svc, mid, h: svc.transfer_ownership(
            mid, ADMIN, SecurableKind.TABLE, t_owner, "bob")),
        ("chown_back", lambda svc, mid, h: svc.transfer_ownership(
            mid, ADMIN, SecurableKind.TABLE, t_owner, ADMIN)),
        ("tag", lambda svc, mid, h: svc.set_tag(
            mid, ADMIN, SecurableKind.TABLE, t_tag, "tier", "gold")),
        ("untag", lambda svc, mid, h: svc.unset_tag(
            mid, ADMIN, SecurableKind.TABLE, t_tag, "tier")),
        ("policy", lambda svc, mid, h: h.__setitem__("p", svc.create_abac_policy(
            mid, ADMIN, name="transient-filter",
            scope_kind=SecurableKind.METASTORE, scope_name=None,
            condition=TagCondition("tier", "gold"),
            effect=AbacEffect.FILTER_ROWS, predicate_sql="amount < 100",
        ).policy_id)),
        ("unpolicy", lambda svc, mid, h: svc.drop_abac_policy(mid, ADMIN, h.pop("p"))),
    ]
    return script


def _equivalence(args, query_sets) -> dict[str, Any]:
    """Run the same query+mutation script on both modes; compare bytes."""
    sides = {}
    for mode, fast in (("fast_path", True), ("no_fast_path", False)):
        service, mid, table_names, _ = _build_service(fast, args.tables)
        script = _mutation_script(table_names)
        handles: dict[str, str] = {}
        outcomes = []
        for i in range(args.queries):
            if i and i % 5 == 0:
                label, apply_fn = script[(i // 5 - 1) % len(script)]
                apply_fn(service, mid, handles)
                outcomes.append({"mutation": label})
            outcomes.append(_run_query(service, mid, query_sets[i % len(query_sets)]))
        sides[mode] = {
            "results": json.dumps(outcomes, sort_keys=True),
            "audit": json.dumps(_audit_fingerprint(service), sort_keys=True),
        }
    identical_results = sides["fast_path"]["results"] == sides["no_fast_path"]["results"]
    identical_audits = sides["fast_path"]["audit"] == sides["no_fast_path"]["audit"]
    return {
        "queries": args.queries,
        "identical_results": identical_results,
        "identical_audits": identical_audits,
    }


# ---------------------------------------------------------------------------
# performance phase


def _request_fn(service, mid, bundle, query_sets, db):
    """One hot-loop request; charges simulated cost from measured work."""
    counter = itertools.count()
    auth = service.authorizer
    store = service.store

    def request(now: float) -> float:
        evals0 = auth.evaluations
        rows0 = auth.grant_rows_examined + auth.policy_rows_examined
        expand0 = auth.identity_expansions
        reads0 = store.read_count
        multi0 = getattr(store, "multi_get_count", 0)
        scans0 = store.scan_row_count
        probes0 = 0
        if bundle is not None:
            s = bundle.stats
            probes0 = (s.authz_hits + s.authz_misses
                       + s.resolution_hits + s.resolution_misses)

        names = query_sets[next(counter) % len(query_sets)]
        service.resolve_for_query(mid, READER, names, engine_trusted=True)

        probes = len(names)  # baseline per-asset bookkeeping in both modes
        if bundle is not None:
            s = bundle.stats
            probes += (s.authz_hits + s.authz_misses
                       + s.resolution_hits + s.resolution_misses) - probes0
        cost = (
            MODEL.network_rtt
            + (auth.evaluations - evals0) * MODEL.auth_check
            + (auth.identity_expansions - expand0) * MODEL.auth_check
            + (auth.grant_rows_examined + auth.policy_rows_examined - rows0)
            * MODEL.cache_probe
            + probes * MODEL.cache_probe
        )
        t = now + cost
        queries = (store.read_count - reads0) + (
            getattr(store, "multi_get_count", 0) - multi0
        )
        scan_rows = store.scan_row_count - scans0
        if queries or scan_rows:
            t = db.submit(t, queries=queries, scan_rows=scan_rows)
        return t

    return request


def _run_mode(fast_path: bool, args, query_sets) -> dict[str, Any]:
    service, mid, _, _ = _build_service(fast_path, args.tables)
    bundle = service.hot_caches(mid)
    db = DbServerModel(
        MODEL, capacity_qps=DB_CAPACITY_QPS, response_floor=MODEL.db_point_read
    )
    result = run_closed_loop(
        args.clients, args.duration,
        _request_fn(service, mid, bundle, query_sets, db),
        warmup=args.duration * 0.2,
    )
    summary = result.latency_summary()
    out = {
        "fast_path": fast_path,
        "completed": result.completed,
        "throughput_qps": result.throughput,
        "p50_ms": summary["p50"] * 1000,
        "p99_ms": summary["p99"] * 1000,
        "mean_ms": summary["mean"] * 1000,
        "db_queries": db.total_queries,
        "authz_hit_rate": None,
        "resolution_hit_rate": None,
    }
    if bundle is not None:
        s = bundle.stats
        out.update(
            authz_hit_rate=s.authz_hit_rate,
            resolution_hit_rate=s.resolution_hit_rate,
            authz_hits=s.authz_hits,
            authz_misses=s.authz_misses,
            resolution_hits=s.resolution_hits,
            resolution_misses=s.resolution_misses,
            invalidations=s.invalidations,
        )
    return out


# ---------------------------------------------------------------------------
# wall-clock phase


def _run_wallclock_mode(fast_path: bool, args, query_sets) -> dict[str, Any]:
    """Measured req/s: real threads hammering ``resolve_for_query``.

    Unlike the simulated phase there is no latency model here at all —
    this is actual Python execution under the GIL, so the numbers are
    machine-dependent and the fast-path speedup reflects CPU work
    genuinely avoided (fewer authorization walks, fewer store reads).
    """
    service, mid, _, _ = _build_service(fast_path, args.tables)
    for names in query_sets:  # warm every query shape once
        service.resolve_for_query(mid, READER, names, engine_trusted=True)

    def request_factory(index: int):
        sequence = itertools.count(index * 7919)

        def request() -> bool:
            names = query_sets[next(sequence) % len(query_sets)]
            try:
                service.resolve_for_query(mid, READER, names,
                                          engine_trusted=True)
            except UnityCatalogError:
                return False
            return True

        return request

    result = run_threaded_loop(args.wallclock_threads,
                               args.wallclock_duration, request_factory)
    result["fast_path"] = fast_path
    return result


def run_wallclock(args, query_sets) -> dict[str, Any]:
    section = {
        "threads": args.wallclock_threads,
        "duration_s": args.wallclock_duration,
        "modes": {
            "fast_path": _run_wallclock_mode(True, args, query_sets),
            "no_fast_path": _run_wallclock_mode(False, args, query_sets),
        },
    }
    slow = section["modes"]["no_fast_path"]["throughput_qps"]
    fast = section["modes"]["fast_path"]["throughput_qps"]
    section["speedup_x"] = fast / slow if slow else float("inf")
    return section


# ---------------------------------------------------------------------------


def run_bench(args) -> dict[str, Any]:
    service, _, table_names, view_names = _build_service(True, args.tables)
    del service
    query_sets = _query_sets(args.seed, table_names, view_names, args.tables_per_query)

    report: dict[str, Any] = {
        "bench": "hotpath",
        "config": {
            "seed": args.seed,
            "tables": args.tables,
            "views": len(view_names),
            "tables_per_query": args.tables_per_query,
            "clients": args.clients,
            "duration_s": args.duration,
            "equivalence_queries": args.queries,
            "noise_grantees": NOISE_USERS,
            "db_capacity_qps": DB_CAPACITY_QPS,
        },
        "modes": {},
    }
    if args.no_fast_path:
        report["modes"]["no_fast_path"] = _run_mode(False, args, query_sets)
        return report

    report["modes"]["fast_path"] = _run_mode(True, args, query_sets)
    report["modes"]["no_fast_path"] = _run_mode(False, args, query_sets)
    fast = report["modes"]["fast_path"]
    slow = report["modes"]["no_fast_path"]
    report["speedup"] = {
        "throughput_x": fast["throughput_qps"] / slow["throughput_qps"]
        if slow["throughput_qps"] else float("inf"),
        "p50_x": slow["p50_ms"] / fast["p50_ms"] if fast["p50_ms"] else float("inf"),
        "p99_x": slow["p99_ms"] / fast["p99_ms"] if fast["p99_ms"] else float("inf"),
    }
    report["equivalence"] = _equivalence(args, query_sets)
    report["checks"] = {
        "warm_authz_hit_rate_ok": (fast["authz_hit_rate"] or 0.0) >= 0.90,
        "identical_results": report["equivalence"]["identical_results"],
        "identical_audits": report["equivalence"]["identical_audits"],
    }
    if getattr(args, "wallclock", False):
        # measured, machine-dependent — reported but never a gate here
        report["wallclock"] = run_wallclock(args, query_sets)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.hotpath", description=__doc__
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--tables", type=int, default=32)
    parser.add_argument("--tables-per-query", type=int, default=8)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=0.4,
                        help="simulated seconds per closed-loop run")
    parser.add_argument("--queries", type=int, default=120,
                        help="equivalence-phase query count")
    parser.add_argument("--out", default="BENCH_hotpath.json")
    parser.add_argument("--no-fast-path", action="store_true",
                        help="run only the fast-path-off mode")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on hit-rate or equivalence failure")
    parser.add_argument("--wallclock", action="store_true",
                        help="also measure real-thread req/s for both "
                             "modes (reported in a 'wallclock' section)")
    parser.add_argument("--wallclock-threads", type=int, default=8)
    parser.add_argument("--wallclock-duration", type=float, default=0.5,
                        help="real seconds per wall-clock measurement")
    args = parser.parse_args(argv)

    report = run_bench(args)
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for mode, stats in report["modes"].items():
        line = (f"{mode:>13}: {stats['throughput_qps']:>10,.0f} req/s"
                f"  p50 {stats['p50_ms']:.3f} ms  p99 {stats['p99_ms']:.3f} ms")
        if stats["authz_hit_rate"] is not None:
            line += (f"  authz hit {stats['authz_hit_rate']:.1%}"
                     f"  resolution hit {stats['resolution_hit_rate']:.1%}")
        print(line)
    if "speedup" in report:
        s = report["speedup"]
        print(f"      speedup: {s['throughput_x']:.1f}x throughput, "
              f"{s['p50_x']:.1f}x p50, {s['p99_x']:.1f}x p99")
        e = report["equivalence"]
        print(f"  equivalence: {e['queries']} queries, "
              f"results identical={e['identical_results']}, "
              f"audits identical={e['identical_audits']}")
    if "wallclock" in report:
        wc = report["wallclock"]
        for mode, stats in wc["modes"].items():
            print(f"wallclock {mode:>13}: "
                  f"{stats['throughput_qps']:>8,.0f} req/s measured "
                  f"({stats['completed']} requests, "
                  f"{stats['errors']} errors)")
        print(f"wallclock speedup: {wc['speedup_x']:.2f}x with "
              f"{wc['threads']} threads")
    print(f"wrote {args.out}")

    if args.check:
        checks = report.get("checks", {})
        failed = [name for name, ok in checks.items() if not ok]
        if failed:
            print(f"CHECK FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
        print("checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
