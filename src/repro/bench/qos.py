"""QoS bench: one abusive tenant vs 9k victims on the shared hot path.

The defining "heavy traffic from millions of users" scenario (ROADMAP):
a heavy-tailed 9,000-tenant trace from :mod:`repro.workloads` runs
against the admission scheduler while one abusive tenant floods the
write path at several times the whole account's baseline load. The gate
asserts three things:

* **QoS on** — every victim class's p99 latency stays inside its SLO,
  no victim request is shed, and the abuser absorbs the shedding;
* **QoS off** (one FIFO server at the same total capacity) — the same
  trace demonstrably violates at least one victim SLO, so the isolation
  is the scheduler's doing, not spare capacity;
* **determinism** — same seed, byte-identical report (``--check`` runs
  everything twice and compares fingerprints).

The bench drives :class:`~repro.core.service.qos.QosScheduler` directly
on a :class:`~repro.clock.SimClock` in open loop: arrivals come from the
trace's timestamps, waits are the scheduler's simulated queueing delays,
and nothing sleeps. A second, service-level scenario
(:func:`run_qos_scenario`) layers QoS over injected faults for the
chaos-determinism suite.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Optional

from repro.bench.report import render_table
from repro.bench.stats import percentile, summarize
from repro.clock import SimClock
from repro.core.auth.privileges import Privilege
from repro.core.model.entity import SecurableKind
from repro.core.service.catalog_service import UnityCatalogService
from repro.core.service.qos import QosConfig, QosScheduler
from repro.errors import TenantThrottledError, UnityCatalogError
from repro.faults import FaultInjector
from repro.obs import Observability
from repro.workloads.tenants import TenantTraceConfig, generate_tenant_trace

#: per-class SLOs the gate enforces (seconds, p99 of victim latency)
SLO = {"interactive": 0.5, "batch": 2.0, "background": 10.0}


def bench_config() -> QosConfig:
    """The scheduler sizing for the 9k-tenant trace.

    Baseline victim load is ~370 cost units/s; the abuser adds ~600
    units/s during its burst. The admitted band absorbs the baseline,
    per-tenant buckets keep victims in budget, and the excess band +
    bounded queues force the abuser's flood into shedding.
    """
    return QosConfig(
        refill_rate=60.0,
        burst=150.0,
        capacity_rate=700.0,
        excess_rate=250.0,
        max_queue_depth=32,
        max_queue_delay=4.0,
        class_slo=dict(SLO),
    )


def run_qos_bench(seed: int = 11, qos_enabled: bool = True,
                  config: Optional[QosConfig] = None,
                  trace_config: Optional[TenantTraceConfig] = None) -> dict:
    """Replay the trace; returns a deterministic report dict."""
    trace_config = trace_config or TenantTraceConfig(seed=seed)
    trace = generate_tenant_trace(trace_config)
    config = config or bench_config()
    abuser = trace_config.abuser

    clock = SimClock()
    latencies: dict[str, list[float]] = {}      # victim latency per class
    abuser_latencies: list[float] = []
    shed = {"abuser": 0, "victim": 0}
    completed = {"abuser": 0, "victim": 0}

    if qos_enabled:
        scheduler = QosScheduler(config, clock)
        for request in trace:
            if request.timestamp > clock.now():
                clock.advance(request.timestamp - clock.now())
            try:
                grant = scheduler.acquire(
                    request.tenant,
                    "write" if request.is_write else "read",
                    mutation=request.is_write,
                    requested_class=request.qos_class,
                    cost=request.cost,
                )
            except TenantThrottledError:
                shed["abuser" if request.tenant == abuser else "victim"] += 1
                continue
            scheduler.settle(grant)
            if request.tenant == abuser:
                completed["abuser"] += 1
                abuser_latencies.append(grant.wait)
            else:
                completed["victim"] += 1
                latencies.setdefault(request.qos_class, []).append(grant.wait)
        counters = scheduler.snapshot()
    else:
        # one undifferentiated FIFO server at the same total capacity:
        # what the pipeline did before this module existed
        rate = config.capacity_rate + config.excess_rate
        server_free = 0.0
        for request in trace:
            if request.timestamp > clock.now():
                clock.advance(request.timestamp - clock.now())
            now = clock.now()
            server_free = max(server_free, now) + request.cost / rate
            wait = server_free - now
            if request.tenant == abuser:
                completed["abuser"] += 1
                abuser_latencies.append(wait)
            else:
                completed["victim"] += 1
                latencies.setdefault(request.qos_class, []).append(wait)
        counters = {"admitted": {}, "queued": {}, "shed": {}}

    per_class = {}
    for cls in sorted(latencies):
        values = latencies[cls]
        summary = summarize(values)
        per_class[cls] = {
            "count": summary["count"],
            "p50": round(summary["p50"], 6),
            "p99": round(summary["p99"], 6),
            "max": round(summary["max"], 6),
            "slo": SLO[cls],
            "within_slo": percentile(values, 99.0) <= SLO[cls],
        }
    total_shed = shed["abuser"] + shed["victim"]
    return {
        "seed": seed,
        "qos_enabled": qos_enabled,
        "tenants": trace_config.tenants,
        "events": len(trace),
        "completed": completed,
        "shed": shed,
        "abuser_shed_share": (
            round(shed["abuser"] / total_shed, 6) if total_shed else None
        ),
        "abuser_p99": round(percentile(abuser_latencies, 99.0), 6)
        if abuser_latencies else None,
        "classes": per_class,
        "counters_total": {
            key: sum(values.values())
            for key, values in sorted(counters.items())
        },
    }


def fingerprint(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


def evaluate_gates(on: dict, off: dict) -> dict[str, bool]:
    """The --check gate conditions (all must hold)."""
    return {
        # with QoS, every victim class meets its p99 SLO
        "victims_within_slo": all(
            entry["within_slo"] for entry in on["classes"].values()
        ),
        # the abuser absorbs the shedding; victims are never shed
        "abuser_absorbs_shedding": (
            on["shed"]["abuser"] > 0 and on["shed"]["victim"] == 0
        ),
        # without QoS the same trace violates at least one victim SLO
        "qos_off_violates_slo": any(
            not entry["within_slo"] for entry in off["classes"].values()
        ),
        # and QoS-off sheds nothing (it has no mechanism to): the SLO
        # damage comes from unbounded queueing, not lost requests
        "qos_off_sheds_nothing": (
            off["shed"]["abuser"] == 0 and off["shed"]["victim"] == 0
        ),
    }


# ---------------------------------------------------------------------------
# service-level scenario (chaos-determinism suite)
# ---------------------------------------------------------------------------


def run_qos_scenario(seed: int = 11, fault_rate: float = 0.10,
                     rounds: int = 40, victims: int = 6) -> dict:
    """QoS + injected faults through the real service pipeline.

    ``victims`` in-budget tenants issue paced reads while one abusive
    tenant bursts mutations far past its budget, all at a 10% storage
    fault rate. In-budget tenants must see **zero** user-visible errors
    (retries absorb the faults, admission never triggers); the abuser
    absorbs every 429. The returned report is byte-stable per seed.
    """
    clock = SimClock()
    obs = Observability(clock=clock)
    injector = FaultInjector(clock, seed=seed, metrics=obs.metrics)
    service = UnityCatalogService(
        clock=clock, obs=obs, faults=injector,
        qos=QosConfig(
            refill_rate=20.0, burst=40.0,
            # depth 0: over-budget => immediate 429 (a sequential driver
            # advances the clock past every queue wait, so only the
            # no-queue configuration sheds deterministically)
            max_queue_depth=0,
        ),
    )
    names = [f"user-{i}" for i in range(victims)]
    for name in names:
        service.directory.add_user(name)
    service.directory.add_user("abuser")
    mid = service.create_metastore("qos", owner="user-0").id
    service.create_securable(mid, "user-0", SecurableKind.CATALOG, "cat")
    service.create_securable(mid, "user-0", SecurableKind.SCHEMA, "cat.sch")
    for name in names[1:]:
        service.grant(mid, "user-0", SecurableKind.CATALOG, "cat",
                      name, Privilege.USE_CATALOG)
    service.grant(mid, "user-0", SecurableKind.CATALOG, "cat",
                  "abuser", Privilege.USE_CATALOG)
    service.grant(mid, "user-0", SecurableKind.SCHEMA, "cat.sch",
                  "abuser", Privilege.USE_SCHEMA)
    service.grant(mid, "user-0", SecurableKind.CATALOG, "cat",
                  "abuser", Privilege.CREATE_SCHEMA)
    clock.advance(5.0)  # refill every setup charge before measuring

    injector.inject("put", fault_rate, kind="throttle")
    injector.inject("get", fault_rate, kind="throttle")
    injector.inject("store.commit", fault_rate / 2, kind="unavailable")

    victim_errors = 0
    victim_ok = 0
    abuser_ok = 0
    abuser_throttled = 0
    abuser_other_errors = 0
    for round_index in range(rounds):
        for name in names:
            try:
                service.get_securable(mid, name, SecurableKind.CATALOG, "cat")
                victim_ok += 1
            except UnityCatalogError:
                victim_errors += 1
        # the abuser bursts mutations with no pacing: its bucket empties
        # after a few rounds and every further burst is shed with 429
        for burst in range(4):
            try:
                service.create_securable(
                    mid, "abuser", SecurableKind.SCHEMA,
                    f"cat.abuse-{round_index}-{burst}",
                )
                abuser_ok += 1
            except TenantThrottledError:
                abuser_throttled += 1
            except UnityCatalogError:
                abuser_other_errors += 1
        clock.advance(0.25)

    audit_denied = sum(1 for record in service.audit if not record.allowed)
    return {
        "seed": seed,
        "fault_rate": fault_rate,
        "rounds": rounds,
        "victim_ok": victim_ok,
        "victim_errors": victim_errors,
        "abuser_ok": abuser_ok,
        "abuser_throttled": abuser_throttled,
        "abuser_other_errors": abuser_other_errors,
        "audit_denied": audit_denied,
        "qos": service.qos.snapshot(),
        "sim_seconds": round(clock.now(), 6),
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def render_report(on: dict, off: dict, gates: dict[str, bool]) -> str:
    rows = []
    for label, report in (("on", on), ("off", off)):
        for cls, entry in sorted(report["classes"].items()):
            rows.append([
                label, cls, entry["count"],
                round(entry["p50"] * 1000, 3),
                round(entry["p99"] * 1000, 3),
                round(entry["slo"] * 1000, 1),
                "yes" if entry["within_slo"] else "NO",
            ])
    table = render_table(
        ["qos", "class", "victim reqs", "p50 ms", "p99 ms", "slo ms",
         "within"],
        rows,
        title=(f"qos bench — abusive tenant vs {on['tenants']} tenants, "
               f"seed {on['seed']}"),
    )
    lines = [table, ""]
    lines.append(
        f"shed (qos on): abuser={on['shed']['abuser']} "
        f"victims={on['shed']['victim']} "
        f"(abuser share {on['abuser_shed_share']})"
    )
    for gate, passed in gates.items():
        lines.append(f"gate {gate}: {'PASS' if passed else 'FAIL'}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (BENCH_qos.json)")
    parser.add_argument("--check", action="store_true",
                        help="enforce the SLO/shedding/determinism gates")
    args = parser.parse_args(argv)

    on = run_qos_bench(args.seed, qos_enabled=True)
    off = run_qos_bench(args.seed, qos_enabled=False)
    gates = evaluate_gates(on, off)

    deterministic = True
    if args.check:
        on_again = run_qos_bench(args.seed, qos_enabled=True)
        off_again = run_qos_bench(args.seed, qos_enabled=False)
        deterministic = (fingerprint(on) == fingerprint(on_again)
                         and fingerprint(off) == fingerprint(off_again))
        gates["same_seed_byte_identical"] = deterministic

    print(render_report(on, off, gates))

    if args.out:
        report = {"qos_on": on, "qos_off": off, "gates": gates}
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.check and not all(gates.values()):
        failed = [gate for gate, ok in gates.items() if not ok]
        print(f"FAIL: gates not met: {failed}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
