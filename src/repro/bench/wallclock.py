"""Wall-clock measurement loop shared by the ``--wallclock`` bench modes.

Unlike :mod:`repro.bench.loadgen` — which simulates a closed loop on a
:class:`~repro.clock.SimClock` for deterministic, seed-stable reports —
this loop runs *real* threads against *real* time and reports measured
req/s. The results are inherently noisy (scheduler, CI neighbors), which
is why wallclock sections are reported alongside, never fingerprinted
with, the simulated numbers.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

#: a factory per load thread: ``factory(index)`` returns a zero-arg
#: callable that issues one request and returns True on success
RequestFactory = Callable[[int], Callable[[], bool]]


def run_threaded_loop(
    threads: int, duration_s: float, request_factory: RequestFactory
) -> dict[str, Any]:
    """Drive ``threads`` closed-loop clients for ``duration_s`` real
    seconds; returns completed/error counts and measured throughput.

    Every thread starts behind a barrier so the measured window never
    includes thread-spawn time; requests in flight when the stop flag
    rises still complete and count (the elapsed clock runs until the
    last thread joins, so throughput is never overstated).
    """
    barrier = threading.Barrier(threads + 1)
    stop = threading.Event()
    completed = [0] * threads
    errors = [0] * threads

    def worker(index: int) -> None:
        request = request_factory(index)
        barrier.wait()
        while not stop.is_set():
            try:
                ok = request()
            except Exception:
                ok = False
            if ok:
                completed[index] += 1
            else:
                errors[index] += 1

    workers = [
        threading.Thread(target=worker, args=(i,), name=f"uc-load-{i}",
                         daemon=True)
        for i in range(threads)
    ]
    for thread in workers:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    time.sleep(duration_s)
    stop.set()
    for thread in workers:
        thread.join()
    elapsed = time.perf_counter() - start
    total = sum(completed)
    return {
        "threads": threads,
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "completed": total,
        "errors": sum(errors),
        "throughput_qps": total / elapsed if elapsed else 0.0,
    }
