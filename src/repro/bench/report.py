"""Text rendering for benchmark reports.

Every bench prints its figure/table as text: a fixed-width table of the
measured series next to the paper's reported values, so a reader can
compare shapes directly in the terminal (and EXPERIMENTS.md records the
same rows).
"""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[i]) for row in cells) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bars (used for distribution figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak else 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {_fmt(value)}")
    return "\n".join(lines)


def paper_row(
    metric: str, paper_value: object, measured_value: object,
    note: str = "",
) -> list[object]:
    """One 'paper vs measured' comparison row."""
    return [metric, paper_value, measured_value, note]


PAPER_HEADERS = ["metric", "paper", "measured", "note"]


def render_metrics(
    registry,
    prefix: str = "",
    title: Optional[str] = None,
) -> str:
    """Render a :class:`~repro.obs.metrics.MetricsRegistry` snapshot as a
    report table, so benchmarks can attach the service-side counters
    (cache hits, commits, credentials minted, ...) behind their numbers.

    ``prefix`` filters the snapshot by metric-name prefix. Histogram
    entries expand to count/sum/p50/p95/p99 columns; counters and gauges
    show a single value.
    """
    snapshot = registry.snapshot()
    rows = []
    for key in sorted(snapshot):
        if prefix and not key.startswith(prefix):
            continue
        value = snapshot[key]
        if isinstance(value, dict):
            rows.append([
                key, value["count"], _fmt(value["sum"]),
                _fmt(value["p50"]), _fmt(value["p95"]), _fmt(value["p99"]),
            ])
        else:
            rows.append([key, "", _fmt(value), "", "", ""])
    return render_table(
        ["metric", "count", "value/sum", "p50", "p95", "p99"], rows,
        title=title,
    )
