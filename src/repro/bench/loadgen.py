"""Closed-loop load generation on simulated time.

``run_closed_loop`` models N clients that each repeatedly issue one
request, wait for its completion, and immediately issue the next — the
standard closed-loop setup behind latency-vs-throughput curves like
Figure 10(b). The caller supplies a ``request_fn(now) -> completion_time``
that charges simulated costs (including DB queueing via
:class:`~repro.bench.latency.DbServerModel`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.stats import summarize


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop run."""

    clients: int
    duration: float
    completed: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def latency_summary(self) -> dict[str, float]:
        return summarize(self.latencies)


def run_closed_loop(
    clients: int,
    duration: float,
    request_fn: Callable[[float], float],
    warmup: float = 0.0,
) -> ClosedLoopResult:
    """Run a closed loop until simulated time ``duration``.

    ``request_fn(now)`` performs one request issued at ``now`` and
    returns its completion time (>= now). Requests completing within the
    warmup window are discarded from the statistics.
    """
    if clients <= 0:
        raise ValueError("need at least one client")
    result = ClosedLoopResult(clients=clients, duration=duration - warmup)
    # event queue of (next issue time, client id), staggered slightly so
    # clients do not phase-lock
    queue: list[tuple[float, int]] = [
        (i * 1e-6, i) for i in range(clients)
    ]
    heapq.heapify(queue)
    while queue:
        now, client = heapq.heappop(queue)
        if now >= duration:
            continue
        completion = request_fn(now)
        if completion < now:
            raise ValueError("request completed before it was issued")
        if completion >= warmup and completion < duration:
            result.completed += 1
            result.latencies.append(completion - now)
        if completion < duration:
            heapq.heappush(queue, (completion, client))
    return result
