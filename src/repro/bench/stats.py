"""Statistics helpers for benchmarks."""

from __future__ import annotations

import math
from typing import Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        raise ValueError("no values")
    if not 0 <= p <= 100:
        raise ValueError("p out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def cdf(values: Sequence[float], points: int = 50) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs at evenly spaced fractions."""
    if not values:
        return []
    ordered = sorted(values)
    out = []
    for i in range(points + 1):
        fraction = i / points
        index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
        out.append((ordered[index], fraction))
    return out


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """CDF evaluated at a threshold."""
    if not values:
        raise ValueError("no values")
    return sum(1 for v in values if v <= threshold) / len(values)


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean and the usual latency percentiles."""
    if not values:
        raise ValueError("no values")
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "max": max(values),
    }


def histogram(
    values: Sequence[float], bins: Sequence[float]
) -> list[tuple[str, int]]:
    """Counts per half-open bin [bins[i], bins[i+1])."""
    counts = [0] * (len(bins) + 1)
    for value in values:
        placed = False
        for i, edge in enumerate(bins):
            if value < edge:
                counts[i] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    labels = []
    previous = None
    for edge in bins:
        labels.append(f"[{previous if previous is not None else '-inf'}, {edge})")
        previous = edge
    labels.append(f"[{previous}, inf)")
    return list(zip(labels, counts))
