"""Time sources.

Every component that needs time (token expiry, TTL caches, audit
timestamps, benchmark latency accounting) takes a ``Clock`` so tests and
benchmarks can use a deterministic :class:`SimClock` while examples may
use :class:`WallClock`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Protocol


class Clock(Protocol):
    """Minimal time-source protocol: seconds since an arbitrary epoch."""

    def now(self) -> float:
        """Current time in seconds."""
        ...  # pragma: no cover


class WallClock:
    """Real time, for interactive/example use."""

    def now(self) -> float:
        return time.time()


class SimClock:
    """A manually-advanced simulated clock.

    Components *charge* time to the clock (``advance``) instead of
    sleeping, which makes latency experiments deterministic and far faster
    than wall-clock execution. The clock also supports scheduled callbacks
    so discrete-event models (e.g., the capacity-limited DB server used in
    the Figure 10(b) bench) can be layered on top.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        # Reentrant: a fired callback may schedule() or advance() again.
        # Thread safety matters because components charge backoff to the
        # clock from real worker threads under the parallel serving tier.
        self._lock = threading.RLock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward, firing any callbacks that come due."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        with self._lock:
            deadline = self._now + seconds
            while self._events and self._events[0][0] <= deadline:
                when, _, callback = heapq.heappop(self._events)
                self._now = when
                callback()
            self._now = deadline
            return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock reaches ``now + delay``."""
        if delay < 0:
            raise ValueError("negative delay")
        with self._lock:
            heapq.heappush(
                self._events, (self._now + delay, next(self._counter), callback)
            )

    def run_until(self, deadline: float) -> None:
        """Advance to an absolute time, firing scheduled callbacks."""
        if deadline < self._now:
            raise ValueError("deadline is in the past")
        self.advance(deadline - self._now)

    def run_all(self) -> None:
        """Drain every scheduled event, advancing time as needed."""
        while self._events:
            when = self._events[0][0]
            self.advance(when - self._now)
