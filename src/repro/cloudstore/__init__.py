"""Cloud object storage substrate.

Simulates an S3/ADLS/GCS-style object store with the properties Unity
Catalog depends on:

* a flat bucket/key namespace addressed by ``scheme://bucket/key`` paths,
* list-by-prefix,
* conditional put (put-if-absent) used by the Delta log for atomic commits,
* STS-style temporary credentials, scoped to a path prefix and access
  level, enforced on every call.

The store itself performs **no** catalog-level authorization — exactly
like real cloud storage, it only checks the token presented with each
request. Consistent governance on top of this is Unity Catalog's job.
"""

from repro.cloudstore.object_store import ObjectStore, ObjectMeta, StoragePath
from repro.cloudstore.sts import (
    AccessLevel,
    StsTokenIssuer,
    TemporaryCredential,
)
from repro.cloudstore.client import StorageClient

__all__ = [
    "AccessLevel",
    "ObjectMeta",
    "ObjectStore",
    "StorageClient",
    "StoragePath",
    "StsTokenIssuer",
    "TemporaryCredential",
]
