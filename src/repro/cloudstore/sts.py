"""STS-style temporary credentials for the object store.

Mirrors the cloud-provider temporary-credential systems (AWS STS, Azure
SAS, GCP downscoped tokens) that Unity Catalog's credential vending builds
on: a *root* credential holder (UC itself) can mint short-lived tokens
scoped to a path prefix and an access level, and the storage layer
enforces those scopes on every request.
"""

from __future__ import annotations

import enum
import secrets
from dataclasses import dataclass

from repro.clock import Clock, WallClock
from repro.cloudstore.object_store import StoragePath
from repro.errors import CredentialError


class AccessLevel(enum.Enum):
    """Access levels a temporary credential can grant.

    ``READ_WRITE`` implies ``READ``; neither implies the ability to mint
    further credentials (only the issuer's root secret can do that).
    """

    READ = "READ"
    READ_WRITE = "READ_WRITE"

    def allows(self, other: "AccessLevel") -> bool:
        if self is AccessLevel.READ_WRITE:
            return True
        return other is AccessLevel.READ


@dataclass(frozen=True)
class TemporaryCredential:
    """A downscoped, expiring storage token.

    Immutable by design; the token string is the bearer secret that the
    storage layer validates. ``scope`` is the path prefix the token can
    touch and ``level`` the maximum operation class.
    """

    token: str
    scope: StoragePath
    level: AccessLevel
    expires_at: float

    def permits(self, path: StoragePath, level: AccessLevel, now: float) -> bool:
        """Check scope, level, and expiry for one storage operation."""
        if now >= self.expires_at:
            return False
        if not self.level.allows(level):
            return False
        return self.scope.contains(path)


class StsTokenIssuer:
    """Mints and validates temporary credentials.

    In the real system this is the cloud provider; UC is configured (via a
    *storage credential* securable) with the root authority to call it.
    Only holders of the issuer's ``root_secret`` may mint tokens — the
    catalog keeps that secret, clients never see it.
    """

    DEFAULT_TTL_SECONDS = 15 * 60  # "valid for tens of minutes" (paper, 4.3.1)

    def __init__(self, clock: Clock | None = None, faults=None, retrier=None):
        """``faults`` (a :class:`~repro.faults.FaultInjector`) makes the
        minting RPC fail like a real cloud STS endpoint; ``retrier`` (a
        :class:`~repro.resilience.Retrier`) makes :meth:`mint` absorb
        those transients with clock-charged backoff."""
        self._clock = clock or WallClock()
        self._root_secret = secrets.token_hex(16)
        self._tokens: dict[str, TemporaryCredential] = {}
        self._faults = faults
        self._retrier = retrier
        self.minted_count = 0
        self.validated_count = 0
        self.denied_count = 0

    @property
    def root_secret(self) -> str:
        return self._root_secret

    def mint(
        self,
        root_secret: str,
        scope: StoragePath,
        level: AccessLevel,
        ttl_seconds: float | None = None,
    ) -> TemporaryCredential:
        """Mint a token scoped to ``scope`` with the given access level.

        Minting is an RPC to the cloud provider in production, so it is
        fault-injectable and (when a retrier is attached) retried."""
        if root_secret != self._root_secret:
            raise CredentialError("invalid root credential")
        ttl = self.DEFAULT_TTL_SECONDS if ttl_seconds is None else ttl_seconds
        if ttl <= 0:
            raise CredentialError("ttl must be positive")
        if self._retrier is not None:
            return self._retrier.call(lambda: self._mint_once(scope, level, ttl))
        return self._mint_once(scope, level, ttl)

    def _mint_once(
        self, scope: StoragePath, level: AccessLevel, ttl: float
    ) -> TemporaryCredential:
        if self._faults is not None:
            self._faults.raise_for("sts.mint", scope)
        credential = TemporaryCredential(
            token=secrets.token_hex(16),
            scope=scope,
            level=level,
            expires_at=self._clock.now() + ttl,
        )
        self._tokens[credential.token] = credential
        self.minted_count += 1
        return credential

    def validate(self, token: str, path: StoragePath, level: AccessLevel) -> None:
        """Raise :class:`CredentialError` unless ``token`` permits the op."""
        self.validated_count += 1
        credential = self._tokens.get(token)
        if credential is None:
            self.denied_count += 1
            raise CredentialError("unknown token")
        if not credential.permits(path, level, self._clock.now()):
            self.denied_count += 1
            raise CredentialError(
                f"token does not permit {level.value} on {path.url()}"
            )

    def revoke(self, token: str) -> None:
        """Drop a token immediately (simulates credential invalidation)."""
        self._tokens.pop(token, None)

    def purge_expired(self) -> int:
        """Remove expired tokens; returns how many were dropped."""
        now = self._clock.now()
        expired = [t for t, c in self._tokens.items() if c.expires_at <= now]
        for token in expired:
            del self._tokens[token]
        return len(expired)
