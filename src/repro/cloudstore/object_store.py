"""An in-process object store with the cloud-storage semantics UC relies on."""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import AlreadyExistsError, InvalidRequestError, NotFoundError


@dataclass(frozen=True)
class StoragePath:
    """A parsed ``scheme://bucket/key`` cloud storage path.

    Paths are normalized (no trailing slash on the key) so that prefix
    containment checks behave like directory containment: ``a/b`` contains
    ``a/b/c`` but not ``a/bc``.
    """

    scheme: str
    bucket: str
    key: str

    @classmethod
    def parse(cls, url: str) -> "StoragePath":
        if "://" not in url:
            raise InvalidRequestError(f"not a storage url: {url!r}")
        scheme, rest = url.split("://", 1)
        if not scheme or not rest:
            raise InvalidRequestError(f"not a storage url: {url!r}")
        bucket, _, key = rest.partition("/")
        if not bucket:
            raise InvalidRequestError(f"missing bucket in storage url: {url!r}")
        return cls(scheme=scheme, bucket=bucket, key=key.strip("/"))

    def url(self) -> str:
        if self.key:
            return f"{self.scheme}://{self.bucket}/{self.key}"
        return f"{self.scheme}://{self.bucket}"

    def child(self, *segments: str) -> "StoragePath":
        """Return a path extended with extra key segments."""
        parts = [self.key] if self.key else []
        for segment in segments:
            segment = segment.strip("/")
            if not segment:
                raise InvalidRequestError("empty path segment")
            parts.append(segment)
        return StoragePath(self.scheme, self.bucket, "/".join(parts))

    def contains(self, other: "StoragePath") -> bool:
        """True if ``other`` equals this path or lives under it."""
        if (self.scheme, self.bucket) != (other.scheme, other.bucket):
            return False
        if not self.key:
            return True
        return other.key == self.key or other.key.startswith(self.key + "/")

    def overlaps(self, other: "StoragePath") -> bool:
        """True if one path contains the other (either direction)."""
        return self.contains(other) or other.contains(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.url()


@dataclass
class ObjectMeta:
    """Metadata for one stored object."""

    path: StoragePath
    size: int
    generation: int


@dataclass
class _Blob:
    data: bytes
    generation: int


@dataclass
class _OpStats:
    """Counters used by benchmarks to attribute simulated storage cost."""

    gets: int = 0
    puts: int = 0
    conditional_puts: int = 0
    lists: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> dict:
        return {
            "gets": self.gets,
            "puts": self.puts,
            "conditional_puts": self.conditional_puts,
            "lists": self.lists,
            "deletes": self.deletes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


class ObjectStore:
    """Thread-safe in-memory object store.

    The store deliberately exposes **raw, ungoverned** access methods; the
    only enforcement point for credentials is :class:`~repro.cloudstore.client.StorageClient`.
    This mirrors the paper's threat model: anyone holding a raw storage
    credential can bypass the catalog, which is why UC keeps raw
    credentials to itself and vends downscoped temporary ones.
    """

    def __init__(self, faults=None):
        """``faults`` is an optional :class:`~repro.faults.FaultInjector`
        consulted before every operation — the hook through which chaos
        scenarios make this store throttle and fail like real cloud
        storage. ``None`` (the default) costs one attribute check."""
        self._lock = threading.RLock()
        self._buckets: dict[tuple[str, str], dict[str, _Blob]] = {}
        self._generation = 0
        self.stats = _OpStats()
        self.faults = faults

    # -- bucket management -------------------------------------------------

    def create_bucket(self, scheme: str, bucket: str) -> None:
        with self._lock:
            key = (scheme, bucket)
            if key in self._buckets:
                raise AlreadyExistsError(f"bucket exists: {scheme}://{bucket}")
            self._buckets[key] = {}

    def ensure_bucket(self, scheme: str, bucket: str) -> None:
        with self._lock:
            self._buckets.setdefault((scheme, bucket), {})

    def _bucket(self, path: StoragePath) -> dict[str, _Blob]:
        try:
            return self._buckets[(path.scheme, path.bucket)]
        except KeyError:
            raise NotFoundError(f"no such bucket: {path.scheme}://{path.bucket}")

    # -- object operations -------------------------------------------------

    def put(self, path: StoragePath, data: bytes, *, if_absent: bool = False) -> ObjectMeta:
        """Write an object. With ``if_absent=True`` this is an atomic
        put-if-absent, the primitive Delta-style logs use for commits."""
        if not path.key:
            raise InvalidRequestError("cannot put an object at a bucket root")
        if self.faults is not None:
            self.faults.raise_for("put", path)
        with self._lock:
            bucket = self._bucket(path)
            if if_absent:
                self.stats.conditional_puts += 1
                if path.key in bucket:
                    raise AlreadyExistsError(f"object exists: {path.url()}")
            self._generation += 1
            bucket[path.key] = _Blob(data=data, generation=self._generation)
            self.stats.puts += 1
            self.stats.bytes_written += len(data)
            return ObjectMeta(path=path, size=len(data), generation=self._generation)

    def get(self, path: StoragePath) -> bytes:
        if self.faults is not None:
            self.faults.raise_for("get", path)
        with self._lock:
            bucket = self._bucket(path)
            blob = bucket.get(path.key)
            if blob is None:
                raise NotFoundError(f"no such object: {path.url()}")
            self.stats.gets += 1
            self.stats.bytes_read += len(blob.data)
            return blob.data

    def head(self, path: StoragePath) -> ObjectMeta:
        if self.faults is not None:
            self.faults.raise_for("head", path)
        with self._lock:
            bucket = self._bucket(path)
            blob = bucket.get(path.key)
            if blob is None:
                raise NotFoundError(f"no such object: {path.url()}")
            return ObjectMeta(path=path, size=len(blob.data), generation=blob.generation)

    def exists(self, path: StoragePath) -> bool:
        with self._lock:
            try:
                bucket = self._bucket(path)
            except NotFoundError:
                return False
            return path.key in bucket

    def delete(self, path: StoragePath) -> None:
        if self.faults is not None:
            self.faults.raise_for("delete", path)
        with self._lock:
            bucket = self._bucket(path)
            if path.key not in bucket:
                raise NotFoundError(f"no such object: {path.url()}")
            del bucket[path.key]
            self.stats.deletes += 1

    def list(self, prefix: StoragePath) -> list[ObjectMeta]:
        """List objects under a prefix, sorted by key (like S3 ListObjectsV2)."""
        if self.faults is not None:
            self.faults.raise_for("list", prefix)
        with self._lock:
            bucket = self._bucket(prefix)
            self.stats.lists += 1
            out = []
            for key in sorted(bucket):
                candidate = StoragePath(prefix.scheme, prefix.bucket, key)
                if prefix.contains(candidate):
                    blob = bucket[key]
                    out.append(ObjectMeta(path=candidate, size=len(blob.data),
                                          generation=blob.generation))
            return out

    def delete_prefix(self, prefix: StoragePath) -> int:
        """Delete every object under a prefix; returns the count removed.

        Used by the catalog's lifecycle GC when a managed asset is purged.
        """
        with self._lock:
            removed = [meta.path.key for meta in self.list(prefix)]
            bucket = self._bucket(prefix)
            for key in removed:
                del bucket[key]
                self.stats.deletes += 1
            return len(removed)

    def total_bytes(self, prefix: StoragePath) -> int:
        """Total stored bytes under a prefix (storage-efficiency metric)."""
        return sum(meta.size for meta in self.list(prefix))
