"""Token-enforcing storage client.

All engine and artifact-repository code in this repository goes through
:class:`StorageClient`, never :class:`~repro.cloudstore.object_store.ObjectStore`
directly. The client presents a temporary credential with every call and
the issuer validates scope, level, and expiry — so a client holding a
token for ``s3://bucket/tables/t1`` cannot read ``s3://bucket/tables/t2``,
which is precisely the downscoping property the paper's credential vending
depends on.
"""

from __future__ import annotations

from repro.cloudstore.object_store import ObjectMeta, ObjectStore, StoragePath
from repro.cloudstore.sts import AccessLevel, StsTokenIssuer, TemporaryCredential


class StorageClient:
    """A cloud-storage client bound to one temporary credential."""

    def __init__(
        self,
        store: ObjectStore,
        issuer: StsTokenIssuer,
        credential: TemporaryCredential,
    ):
        self._store = store
        self._issuer = issuer
        self._credential = credential

    @property
    def credential(self) -> TemporaryCredential:
        return self._credential

    def refresh(self, credential: TemporaryCredential) -> None:
        """Swap in a fresh credential (engines refresh near expiry)."""
        self._credential = credential

    def _check(self, path: StoragePath, level: AccessLevel) -> None:
        self._issuer.validate(self._credential.token, path, level)

    # -- governed operations -----------------------------------------------

    def get(self, path: StoragePath) -> bytes:
        self._check(path, AccessLevel.READ)
        return self._store.get(path)

    def head(self, path: StoragePath) -> ObjectMeta:
        self._check(path, AccessLevel.READ)
        return self._store.head(path)

    def exists(self, path: StoragePath) -> bool:
        self._check(path, AccessLevel.READ)
        return self._store.exists(path)

    def list(self, prefix: StoragePath) -> list[ObjectMeta]:
        self._check(prefix, AccessLevel.READ)
        return self._store.list(prefix)

    def put(self, path: StoragePath, data: bytes, *, if_absent: bool = False) -> ObjectMeta:
        self._check(path, AccessLevel.READ_WRITE)
        return self._store.put(path, data, if_absent=if_absent)

    def delete(self, path: StoragePath) -> None:
        self._check(path, AccessLevel.READ_WRITE)
        self._store.delete(path)
