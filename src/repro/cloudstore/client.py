"""Token-enforcing storage client.

All engine and artifact-repository code in this repository goes through
:class:`StorageClient`, never :class:`~repro.cloudstore.object_store.ObjectStore`
directly. The client presents a temporary credential with every call and
the issuer validates scope, level, and expiry — so a client holding a
token for ``s3://bucket/tables/t1`` cannot read ``s3://bucket/tables/t2``,
which is precisely the downscoping property the paper's credential vending
depends on.

With a :class:`~repro.resilience.Retrier` attached, every operation
retries the transient-error family (throttling, storage unavailability)
with backoff charged to the injected clock. Credential validation runs
**inside** the retry loop: a token that expires mid-operation fails the
next attempt with a non-retryable
:class:`~repro.errors.CredentialError` instead of burning the retry
budget, and a :meth:`refresh` between attempts is picked up immediately.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from repro.cloudstore.object_store import ObjectMeta, ObjectStore, StoragePath
from repro.cloudstore.sts import AccessLevel, StsTokenIssuer, TemporaryCredential
from repro.resilience import Retrier

T = TypeVar("T")


class StorageClient:
    """A cloud-storage client bound to one temporary credential."""

    def __init__(
        self,
        store: ObjectStore,
        issuer: StsTokenIssuer,
        credential: TemporaryCredential,
        retrier: Optional[Retrier] = None,
    ):
        self._store = store
        self._issuer = issuer
        self._credential = credential
        self._retrier = retrier

    @property
    def credential(self) -> TemporaryCredential:
        return self._credential

    def refresh(self, credential: TemporaryCredential) -> None:
        """Swap in a fresh credential (engines refresh near expiry)."""
        self._credential = credential

    def _check(self, path: StoragePath, level: AccessLevel) -> None:
        self._issuer.validate(self._credential.token, path, level)

    def _run(self, path: StoragePath, level: AccessLevel, op: Callable[[], T]) -> T:
        """One governed call: validate, then perform, retrying transients.

        The validation is deliberately part of each attempt — holding a
        credential across backoff sleeps must not outlive its expiry.
        """
        if self._retrier is None:
            self._check(path, level)
            return op()

        def attempt() -> T:
            self._check(path, level)
            return op()

        return self._retrier.call(attempt)

    # -- governed operations -----------------------------------------------

    def get(self, path: StoragePath) -> bytes:
        return self._run(path, AccessLevel.READ, lambda: self._store.get(path))

    def head(self, path: StoragePath) -> ObjectMeta:
        return self._run(path, AccessLevel.READ, lambda: self._store.head(path))

    def exists(self, path: StoragePath) -> bool:
        return self._run(path, AccessLevel.READ, lambda: self._store.exists(path))

    def list(self, prefix: StoragePath) -> list[ObjectMeta]:
        return self._run(prefix, AccessLevel.READ, lambda: self._store.list(prefix))

    def put(self, path: StoragePath, data: bytes, *, if_absent: bool = False) -> ObjectMeta:
        return self._run(
            path,
            AccessLevel.READ_WRITE,
            lambda: self._store.put(path, data, if_absent=if_absent),
        )

    def delete(self, path: StoragePath) -> None:
        return self._run(path, AccessLevel.READ_WRITE, lambda: self._store.delete(path))
